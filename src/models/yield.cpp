#include "models/yield.hpp"

#include <cmath>
#include <set>

#include "microcode/controller.hpp"
#include "sim/bist.hpp"
#include "sim/controller.hpp"
#include "sim/importance.hpp"
#include "sim/infra_faults.hpp"
#include "sim/packed_ram.hpp"
#include "util/checkpoint.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace bisram::models {

double poisson_cell_yield(double lambda) {
  require(lambda >= 0, "poisson_cell_yield: negative lambda");
  return std::exp(-lambda);
}

double stapper_yield(double defect_mean, double alpha) {
  require(defect_mean >= 0, "stapper_yield: negative defect mean");
  require(alpha > 0, "stapper_yield: non-positive alpha");
  return std::pow(1.0 + defect_mean / alpha, -alpha);
}

double negbin_pmf(std::int64_t k, double mean, double alpha) {
  // The pmf itself moved to util/math.hpp so the importance-sampling
  // strata planner (sim/importance.hpp) can reweight with it without a
  // models dependency; this alias keeps the historical entry point.
  return bisram::negbin_pmf(k, mean, alpha);
}

double repair_probability(const sim::RamGeometry& geo, std::int64_t defects) {
  require(defects >= 0, "repair_probability: negative defects");
  if (defects == 0) return 1.0;
  const double ncells =
      static_cast<double>(geo.total_rows()) * static_cast<double>(geo.cols());
  const std::int64_t spare_words = geo.spare_words();
  const double spare_cells =
      static_cast<double>(spare_words) * static_cast<double>(geo.bpw);
  // Factor 1: every defect must miss the spare cells (strict goodness).
  const double spares_ok =
      std::pow(1.0 - spare_cells / ncells, static_cast<double>(defects));
  if (spare_words == 0) {
    // No repair capacity at all: good iff no defect hits a regular word,
    // which is impossible once a defect lands in the array.
    return 0.0;
  }
  // Factor 2: the defects that hit regular cells must cover at most
  // spare_words *distinct* words. Conditioned on missing the spares, the
  // k defects are uniform over the NW words (each word has bpw cells), so
  // the number of distinct faulty words follows the occupancy
  // distribution of k balls in NW boxes. A binomial approximation is
  // badly wrong here (k balls can never occupy more than k boxes), so we
  // run the exact occupancy recurrence, lumping states beyond
  // spare_words into an absorbing "unrepairable" state:
  //   p(k+1, d) = p(k, d) * d/NW + p(k, d-1) * (1 - (d-1)/NW).
  const double nw = static_cast<double>(geo.words);
  const std::size_t cap = static_cast<std::size_t>(spare_words);
  std::vector<double> p(cap + 1, 0.0);
  p[0] = 1.0;
  double dead = 0.0;
  for (std::int64_t b = 0; b < defects; ++b) {
    double carry = 0.0;  // mass flowing from d to d+1
    for (std::size_t d = 0; d <= cap; ++d) {
      const double stay = p[d] * (static_cast<double>(d) / nw);
      const double leave = p[d] - stay;
      p[d] = stay + carry;
      carry = leave;
    }
    dead += carry;  // occupancy exceeded the spare capacity
    if (dead > 1.0 - 1e-15) break;
  }
  double words_ok = 0.0;
  for (double v : p) words_ok += v;
  return words_ok * spares_ok;
}

sim::CampaignResult<double> repair_probability_mc(
    const sim::RamGeometry& geo, std::int64_t defects,
    const sim::CampaignSpec& spec) {
  const std::uint64_t rows = static_cast<std::uint64_t>(geo.total_rows());
  const std::uint64_t cols = static_cast<std::uint64_t>(geo.cols());
  const int spare_words = geo.spare_words();
  require(!spec.checkpoint.enabled() && !spec.checkpoint.resuming(),
          "repair_probability_mc: checkpointing is not supported here");
  sim::CampaignResult<double> out;
  std::int64_t done = 0;
  const int good = sim::run_campaign<int>(
      spec, /*chunk=*/64, 0,
      [&](Rng& rng, std::int64_t, sim::KernelTally&) {
        std::set<std::uint32_t> faulty_words;
        bool spare_hit = false;
        for (std::int64_t d = 0; d < defects; ++d) {
          const int row = static_cast<int>(rng.below(rows));
          const int col = static_cast<int>(rng.below(cols));
          if (row >= geo.rows()) {
            spare_hit = true;
            break;
          }
          // Invert the cell mapping: column = bit * bpc + colgroup.
          const int colgroup = col % geo.bpc;
          const std::uint32_t addr =
              static_cast<std::uint32_t>(row) *
                  static_cast<std::uint32_t>(geo.bpc) +
              static_cast<std::uint32_t>(colgroup);
          faulty_words.insert(addr);
        }
        return !spare_hit &&
                       static_cast<int>(faulty_words.size()) <= spare_words
                   ? 1
                   : 0;
      },
      [](int a, int b) { return a + b; }, &out.provenance,
      /*stream_offset=*/0, &done);
  out.value = done ? static_cast<double>(good) / static_cast<double>(done)
                   : 0.0;
  out.termination =
      sim::resolve_termination(done, spec.trials, spec.cancel, false);
  return out;
}

double bisr_yield(const sim::RamGeometry& geo, double defect_mean,
                  double alpha, double growth) {
  require(growth >= 1.0, "bisr_yield: growth factor must be >= 1");
  const double m = defect_mean * growth;
  if (m == 0.0) return 1.0;
  // Truncate the negative-binomial sum when the residual tail cannot
  // change the result at double precision.
  double yield = 0.0;
  double tail = 1.0;
  const std::int64_t kmax =
      static_cast<std::int64_t>(m + 12.0 * std::sqrt(m * (1.0 + m / alpha))) +
      64;
  for (std::int64_t k = 0; k <= kmax && tail > 1e-12; ++k) {
    const double pk = negbin_pmf(k, m, alpha);
    tail -= pk;
    if (pk <= 0.0) continue;
    yield += pk * repair_probability(geo, k);
  }
  return yield;
}

int min_spare_rows_for_yield(sim::RamGeometry geo, double defect_mean,
                             double alpha, double target_yield,
                             double growth4, double growth8, double growth16) {
  require(target_yield > 0 && target_yield <= 1,
          "min_spare_rows_for_yield: target must be in (0, 1]");
  const std::pair<int, double> options[] = {
      {4, growth4}, {8, growth8}, {16, growth16}};
  for (const auto& [spares, growth] : options) {
    geo.spare_rows = spares;
    if (bisr_yield(geo, defect_mean, alpha, growth) >= target_yield)
      return spares;
  }
  return -1;
}

std::vector<YieldPoint> yield_curve(sim::RamGeometry geo, int spare_rows,
                                    double alpha, double growth,
                                    double max_defects, int points) {
  require(points >= 2, "yield_curve: needs >= 2 points");
  geo.spare_rows = spare_rows;
  geo.validate();
  std::vector<YieldPoint> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double m = max_defects * i / (points - 1);
    const double y = spare_rows == 0 ? stapper_yield(m, alpha)
                                     : bisr_yield(geo, m, alpha, growth);
    out.push_back({m, y});
  }
  return out;
}

namespace {

/// Standard error of a Bernoulli mean from its success count: the
/// unbiased sample variance n/(n-1) p(1-p) over n, i.e. p(1-p)/(n-1).
double bernoulli_se(std::int64_t successes, std::int64_t n) {
  if (n < 2) return 0.0;
  const double p = static_cast<double>(successes) / static_cast<double>(n);
  return std::sqrt(p * (1.0 - p) / static_cast<double>(n - 1));
}

/// One trial's fault list for the array-only yield MC. `fixed_k < 0`
/// draws K ~ NegBin(m, alpha) from the trial stream (the plain
/// estimator's historical RNG sequence: gamma, poisson, then per fault
/// kind / row / col); `fixed_k >= 0` pins the count — the conditional
/// placement of k defects is uniform iid regardless of the mixed Gamma
/// rate, so a stratum trial draws no rate at all.
std::vector<sim::Fault> draw_die_faults(Rng& rng, const sim::RamGeometry& geo,
                                        double m, double alpha,
                                        std::int64_t fixed_k,
                                        bool* spare_hit) {
  std::int64_t k = fixed_k;
  if (k < 0) {
    const double rate = gamma_sample(rng, alpha, m / alpha);
    k = poisson_sample(rng, rate);
  }
  std::vector<sim::Fault> faults;
  faults.reserve(static_cast<std::size_t>(k));
  *spare_hit = false;
  for (std::int64_t d = 0; d < k; ++d) {
    sim::Fault f;
    f.kind = rng.chance(0.5) ? sim::FaultKind::StuckAt0
                             : sim::FaultKind::StuckAt1;
    f.victim = {static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(geo.total_rows()))),
                static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(geo.cols())))};
    if (f.victim.row >= geo.rows()) *spare_hit = true;
    faults.push_back(f);
  }
  return faults;
}

struct YieldCounts {
  std::int64_t repaired = 0;
  std::int64_t strict = 0;
};

/// Runs BIST/BISR trials [lo, hi) of one stream (the plain campaign's,
/// or one stratum's), continuing the fold from `initial` and adding the
/// trials actually folded to *seg_done. All tallies are integer counts,
/// so the fold is exactly associative and the range is bit-identical for
/// any thread count, any SIMD batch width, and any split of a stream
/// into ranges — the property the checkpoint/resume path rides on.
YieldCounts run_yield_range(const sim::RamGeometry& geo, double m,
                            double alpha, std::int64_t fixed_k,
                            const sim::CampaignSpec& spec,
                            std::int64_t lo, std::int64_t hi,
                            std::uint64_t base_offset,
                            const YieldCounts& initial,
                            std::int64_t* seg_done,
                            sim::CampaignProvenance* provenance) {
  // Note on detection fidelity: a StuckAt0 fault in a cell every
  // background drives to 0 is benign but still *detected* by IFA-9's
  // complement writes, so the BIST verdict matches the analytic "any hit
  // cell is faulty" accounting. All faults are stuck-ats, so Auto
  // resolves to the packed bit-plane kernel for every trial.
  if (spec.batch <= 1) {
    sim::CampaignSpec sub = spec;
    sub.trials = static_cast<int>(hi - lo);
    return sim::run_campaign<YieldCounts>(
        sub, /*chunk=*/8, YieldCounts{},
        [&](Rng& rng, std::int64_t, sim::KernelTally& tally) {
          bool spare_hit = false;
          const std::vector<sim::Fault> faults =
              draw_die_faults(rng, geo, m, alpha, fixed_k, &spare_hit);
          sim::SimKernel used = sim::SimKernel::Scalar;
          const sim::BistResult r =
              sim::run_bist(geo, faults, sim::BistConfig{}, spec.kernel, &used);
          tally.note(used);
          YieldCounts c;
          if (r.repair_successful) {
            c.repaired = 1;
            if (!spare_hit) c.strict = 1;
          }
          return c;
        },
        [](YieldCounts a, YieldCounts b) {
          return YieldCounts{a.repaired + b.repaired, a.strict + b.strict};
        },
        provenance, base_offset + static_cast<std::uint64_t>(lo), seg_done,
        &initial);
  }

  // SIMD-batched path: groups of `batch` dies run lockstep through
  // run_bist_batch, sharing one pattern table and streaming their bulk
  // march ops back to back through the SIMD lanes. Each trial draws from
  // the same per-trial sub-stream as the unbatched path, so the per-die
  // fault lists — and therefore the counts — are identical. The batched
  // engine only ever sees a whole stream (checkpoint/pause segmentation
  // is rejected for batch > 1), but it honors spec.cancel: a stopped run
  // folds exactly the groups that finished, and Acc carries its own
  // trial count so the partial estimate normalizes correctly.
  require(lo == 0, "run_yield_range: batched path takes whole streams");
  struct Acc {
    YieldCounts counts;
    std::int64_t trials = 0;
    std::int64_t packed = 0;
    std::int64_t scalar = 0;
  };
  const std::int64_t n = hi;
  const std::int64_t batch = spec.batch;
  const std::int64_t groups = (n + batch - 1) / batch;
  const Acc folded = parallel_reduce<Acc>(
      groups, /*chunk=*/1, Acc{},
      [&](std::int64_t g) {
        const std::int64_t begin = g * batch;
        const std::int64_t end = begin + batch < n ? begin + batch : n;
        std::vector<std::vector<sim::Fault>> lists;
        std::vector<char> spare_hits;
        lists.reserve(static_cast<std::size_t>(end - begin));
        for (std::int64_t i = begin; i < end; ++i) {
          Rng rng(stream_seed(spec.seed,
                              base_offset + static_cast<std::uint64_t>(i)));
          bool spare_hit = false;
          lists.push_back(
              draw_die_faults(rng, geo, m, alpha, fixed_k, &spare_hit));
          spare_hits.push_back(spare_hit ? 1 : 0);
        }
        std::vector<sim::SimKernel> used;
        const std::vector<sim::BistResult> results = sim::run_bist_batch(
            geo, lists, sim::BistConfig{}, spec.kernel, &used);
        Acc a;
        a.trials = end - begin;
        for (std::size_t i = 0; i < results.size(); ++i) {
          if (used[i] == sim::SimKernel::Packed)
            ++a.packed;
          else
            ++a.scalar;
          if (results[i].repair_successful) {
            ++a.counts.repaired;
            if (!spare_hits[i]) ++a.counts.strict;
          }
        }
        return a;
      },
      [](Acc a, Acc b) {
        return Acc{{a.counts.repaired + b.counts.repaired,
                    a.counts.strict + b.counts.strict},
                   a.trials + b.trials, a.packed + b.packed,
                   a.scalar + b.scalar};
      },
      spec.threads > 0 ? spec.threads : 0, spec.cancel);
  if (seg_done) *seg_done += folded.trials;
  if (provenance) {
    provenance->seed = spec.seed;
    provenance->threads = sim::resolve_campaign_threads(spec);
    provenance->kernel = spec.kernel;
    provenance->trials += n;
    provenance->packed_trials += folded.packed;
    provenance->scalar_trials += folded.scalar;
    provenance->sampling = spec.sampling.mode;
    provenance->batch = spec.batch;
    provenance->batched_trials += folded.trials;
    provenance->trials_done += folded.trials;
  }
  return YieldCounts{initial.repaired + folded.counts.repaired,
                     initial.strict + folded.counts.strict};
}

/// Fingerprint of everything a BIST-yield campaign's bit-exact result
/// depends on (threads, kernel, batch and cadence are invariants and
/// deliberately excluded — see tests/test_simd_equivalence.cpp).
std::uint64_t yield_fingerprint(const sim::RamGeometry& geo,
                                double defect_mean, double alpha,
                                double growth,
                                const sim::CampaignSpec& spec) {
  Fingerprint fp;
  fp.mix_str("bisr_yield_mc_with_bist");
  fp.mix(geo.words).mix_i64(geo.bpw).mix_i64(geo.bpc);
  fp.mix_i64(geo.spare_rows);
  fp.mix_f64(defect_mean).mix_f64(alpha).mix_f64(growth);
  fp.mix(spec.seed).mix_i64(spec.trials);
  fp.mix_i64(static_cast<std::int64_t>(spec.sampling.mode));
  fp.mix_f64(spec.sampling.tail_mass);
  fp.mix_i64(spec.sampling.min_stratum_trials);
  return fp.value();
}

}  // namespace

sim::CampaignResult<BisrYieldMc> bisr_yield_mc_with_bist(
    const sim::RamGeometry& geo, double defect_mean, double alpha,
    double growth, const sim::CampaignSpec& spec) {
  const double m = defect_mean * growth;
  sim::CampaignResult<BisrYieldMc> out;
  out.provenance.seed = spec.seed;
  out.provenance.threads = sim::resolve_campaign_threads(spec);
  out.provenance.kernel = spec.kernel;
  out.provenance.sampling = spec.sampling.mode;
  out.provenance.batch = spec.batch;

  const sim::CheckpointSpec& ck = spec.checkpoint;
  require(spec.batch <= 1 ||
              (!ck.enabled() && !ck.resuming() && ck.pause_after <= 0),
          "bisr_yield_mc_with_bist: checkpoint/resume/pause requires batch "
          "<= 1 (the batched engine has no chunk-aligned fold boundaries)");
  const bool resumed = ck.resuming();
  const std::uint64_t fprint =
      yield_fingerprint(geo, defect_mean, alpha, growth, spec);
  sim::CheckpointCadence cadence;
  std::int64_t run_done = 0;  // trials processed by *this* process

  if (spec.sampling.mode == sim::SamplingMode::Plain) {
    const std::int64_t total = spec.trials;
    const std::int64_t chunk = 8;  // the campaign's historical fold chunk
    const std::int64_t seg = sim::checkpoint_segment_trials(ck, chunk, total);

    YieldCounts master;
    std::int64_t done = 0;
    if (resumed) {
      CheckpointReader r(ck.resume, fprint);
      require(r.u64() == 2,
              strfmt("checkpoint: '%s' was not written by a plain BIST "
                     "yield campaign",
                     ck.resume.c_str()));
      done = r.i64();
      master.repaired = r.i64();
      master.strict = r.i64();
      require(done >= 0 && done <= total && master.repaired >= 0 &&
                  master.strict >= 0 && master.repaired <= done &&
                  master.strict <= master.repaired,
              strfmt("checkpoint: '%s' carries inconsistent counts",
                     ck.resume.c_str()));
    }

    auto write_ckpt = [&] {
      CheckpointWriter w(fprint);
      w.u64(2).i64(done).i64(master.repaired).i64(master.strict);
      w.save(ck.path);
      cadence.note_write();
      ++out.provenance.checkpoints_written;
    };

    Termination term = Termination::Completed;
    while (done < total) {
      if (spec.cancel && spec.cancel->stop_requested()) {
        term = spec.cancel->stop_reason();
        break;
      }
      if (ck.pause_after > 0 && run_done >= ck.pause_after) {
        if (cadence.due(ck, true)) write_ckpt();
        term = Termination::Cancelled;
        break;
      }
      const std::int64_t hi = std::min(total, done + seg);
      const std::int64_t want = hi - done;
      std::int64_t seg_done = 0;
      master = run_yield_range(geo, m, alpha, /*fixed_k=*/-1, spec, done, hi,
                               /*base_offset=*/0, master, &seg_done,
                               &out.provenance);
      done += seg_done;
      run_done += seg_done;
      if (seg_done < want) {
        term = spec.cancel ? spec.cancel->stop_reason()
                           : Termination::Cancelled;
        break;
      }
      if (cadence.due(ck, done == total)) write_ckpt();
    }
    if (done >= total)
      term = resumed ? Termination::Resumed : Termination::Completed;

    const std::int64_t n = done;
    out.value.bist_repaired =
        n ? static_cast<double>(master.repaired) / static_cast<double>(n)
          : 0.0;
    out.value.strict_good =
        n ? static_cast<double>(master.strict) / static_cast<double>(n) : 0.0;
    out.value.bist_repaired_se = bernoulli_se(master.repaired, n);
    out.value.strict_good_se = bernoulli_se(master.strict, n);
    out.value.die_sims = n;
    out.provenance.trials = total;
    out.provenance.trials_done = n;
    out.termination = term;
    return out;
  }

  // Stratified importance sampling (sim/importance.hpp): the zero-defect
  // stratum is analytic (a defect-free die always repairs and is
  // strictly good), each k >= 1 stratum simulates conditionally on its
  // own seed-stream window, and the truncated tail counts as
  // unrepairable. Checkpoints land on stratum boundaries (a finished
  // stratum's counts are final), which also serve as the pause_after
  // boundaries; integer tallies make any resume split bit-identical.
  const sim::StrataPlan plan =
      sim::plan_strata(m, alpha, spec.trials, spec.sampling);
  std::vector<sim::StratumCount> repaired(plan.strata.size(),
                                          sim::StratumCount{0, 0});
  std::vector<sim::StratumCount> strict(plan.strata.size(),
                                        sim::StratumCount{0, 0});

  std::size_t s0 = 0;
  if (resumed) {
    CheckpointReader r(ck.resume, fprint);
    require(r.u64() == 3,
            strfmt("checkpoint: '%s' was not written by a stratified BIST "
                   "yield campaign",
                   ck.resume.c_str()));
    s0 = static_cast<std::size_t>(r.i64());
    require(s0 <= plan.strata.size(),
            strfmt("checkpoint: '%s' names a stratum past the plan",
                   ck.resume.c_str()));
    for (std::size_t i = 0; i < s0; ++i) {
      repaired[i] = {r.i64(), plan.strata[i].trials};
      strict[i] = {r.i64(), plan.strata[i].trials};
    }
  }

  std::int64_t total_done = 0;
  for (std::size_t i = 0; i < s0; ++i) total_done += plan.strata[i].trials;

  std::size_t s = s0;
  auto write_ckpt = [&] {
    CheckpointWriter w(fprint);
    w.u64(3).i64(static_cast<std::int64_t>(s));
    for (std::size_t i = 0; i < s; ++i)
      w.i64(repaired[i].successes).i64(strict[i].successes);
    w.save(ck.path);
    cadence.note_write();
    ++out.provenance.checkpoints_written;
  };

  Termination term = Termination::Completed;
  bool stopped = false;
  for (; s < plan.strata.size() && !stopped; ) {
    if (spec.cancel && spec.cancel->stop_requested()) {
      term = spec.cancel->stop_reason();
      break;
    }
    if (ck.pause_after > 0 && run_done >= ck.pause_after) {
      if (cadence.due(ck, true)) write_ckpt();
      term = Termination::Cancelled;
      break;
    }
    const sim::Stratum& st = plan.strata[s];
    std::int64_t st_done = 0;
    const YieldCounts counts = run_yield_range(
        geo, m, alpha, st.defects, spec, 0, st.trials,
        sim::stratum_stream_offset(s), YieldCounts{}, &st_done,
        &out.provenance);
    repaired[s] = {counts.repaired, st_done};
    strict[s] = {counts.strict, st_done};
    total_done += st_done;
    run_done += st_done;
    if (st_done < st.trials) {  // token fired inside the stratum
      term = spec.cancel ? spec.cancel->stop_reason()
                         : Termination::Cancelled;
      stopped = true;
      break;
    }
    ++s;
    if (cadence.due(ck, s == plan.strata.size())) write_ckpt();
  }
  if (!stopped && s == plan.strata.size())
    term = resumed ? Termination::Resumed : Termination::Completed;

  const sim::WeightedEstimate rep = sim::combine_strata_bernoulli(
      plan, repaired, /*zero_value=*/1.0, /*tail_value=*/0.0);
  const sim::WeightedEstimate str = sim::combine_strata_bernoulli(
      plan, strict, /*zero_value=*/1.0, /*tail_value=*/0.0);
  out.value.bist_repaired = rep.value;
  out.value.bist_repaired_se = rep.std_error;
  out.value.strict_good = str.value;
  out.value.strict_good_se = str.std_error;
  out.value.die_sims = total_done;
  out.provenance.strata = static_cast<std::int64_t>(plan.strata.size());
  out.provenance.trials = plan.total_trials();
  out.provenance.trials_done = total_done;
  out.termination = term;
  return out;
}

double repair_logic_yield(double defect_mean, double alpha, double growth,
                          double logic_area_fraction) {
  require(growth >= 1.0, "repair_logic_yield: growth factor must be >= 1");
  require(logic_area_fraction >= 0.0 && logic_area_fraction <= 1.0,
          "repair_logic_yield: area fraction must be in [0, 1]");
  return stapper_yield(defect_mean * growth * logic_area_fraction, alpha);
}

namespace {

struct InfraCounts {
  std::int64_t reported = 0, effective = 0, escape = 0, safe_fail = 0,
               hung = 0;
};

InfraCounts infra_combine(InfraCounts a, InfraCounts b) {
  return InfraCounts{a.reported + b.reported, a.effective + b.effective,
                     a.escape + b.escape, a.safe_fail + b.safe_fail,
                     a.hung + b.hung};
}

}  // namespace

sim::CampaignResult<BisrYieldMcInfra> bisr_yield_mc_with_infra(
    const sim::RamGeometry& geo, double defect_mean, double alpha,
    double growth, double logic_area_fraction, const sim::CampaignSpec& spec) {
  require(growth >= 1.0, "bisr_yield_mc_with_infra: growth must be >= 1");
  require(logic_area_fraction >= 0.0 && logic_area_fraction <= 1.0,
          "bisr_yield_mc_with_infra: area fraction must be in [0, 1]");
  require(spec.kernel != sim::SimKernel::Packed,
          "bisr_yield_mc_with_infra: the microprogrammed machine has no "
          "packed path — use Auto or Scalar");
  geo.validate();
  require(geo.spare_words() >= 1,
          "bisr_yield_mc_with_infra: geometry needs >= 1 spare word");

  // Shared read-only controller + watchdog budget, built once.
  const sim::BistConfig bist;
  const auto ctrl = microcode::build_trpla(*bist.test, bist.max_passes);
  sim::InfraTrialConfig trial_cfg;
  trial_cfg.bist = bist;
  const std::uint64_t watchdog =
      sim::auto_watchdog_cycles(geo, ctrl, trial_cfg);

  const double m = defect_mean * growth;
  // Infra defects scale the total: K ~ Poisson(rate) array defects plus
  // L ~ Poisson(rate * fraction) infra defects over the same mixed rate
  // sum to NegBin(mean = m * (1 + fraction), alpha), and conditioned on
  // the total each defect is infra with probability fraction / (1 +
  // fraction) independently of the rate — the basis of the stratified
  // estimator below.
  const double infra_share =
      logic_area_fraction / (1.0 + logic_area_fraction);

  // One microprogrammed trial: `total < 0` draws K and L from the trial
  // stream (the plain estimator's historical RNG sequence), `total >= 0`
  // pins K + L and splits it binomially.
  const auto run_trial = [&](Rng& rng, std::int64_t total) {
    std::int64_t k = 0, l = 0;
    if (total < 0) {
      const double rate = m > 0 ? gamma_sample(rng, alpha, m / alpha) : 0.0;
      k = poisson_sample(rng, rate);
      l = poisson_sample(rng, rate * logic_area_fraction);
    } else {
      for (std::int64_t d = 0; d < total; ++d)
        if (rng.chance(infra_share))
          ++l;
        else
          ++k;
    }

    sim::RamModel ram(geo);
    for (std::int64_t d = 0; d < k; ++d) {
      sim::Fault f;
      f.kind = rng.chance(0.5) ? sim::FaultKind::StuckAt0
                               : sim::FaultKind::StuckAt1;
      f.victim = {static_cast<int>(rng.below(
                      static_cast<std::uint64_t>(geo.total_rows()))),
                  static_cast<int>(rng.below(
                      static_cast<std::uint64_t>(geo.cols())))};
      ram.array().inject(f);
    }
    sim::PlaBistMachine machine(ram, ctrl, bist.retention_wait_s,
                                bist.johnson_backgrounds);
    for (std::int64_t d = 0; d < l; ++d)
      machine.inject(sim::random_infra_fault(geo, ctrl, rng));

    const sim::BistResult r = machine.run(watchdog);
    InfraCounts c;
    if (r.hung) {
      c.hung = 1;
    } else if (!r.repair_successful) {
      c.safe_fail = 1;
    } else {
      c.reported = 1;
      if (sim::normal_mode_readback_clean(ram))
        c.effective = 1;
      else
        c.escape = 1;
    }
    return c;
  };

  require(!spec.checkpoint.enabled() && !spec.checkpoint.resuming(),
          "bisr_yield_mc_with_infra: checkpointing is not supported here — "
          "use cancel/deadline for bounded runs");

  const auto run_segment = [&](std::int64_t total, int trials,
                               std::uint64_t stream_offset,
                               sim::CampaignProvenance* provenance,
                               std::int64_t* done) {
    sim::CampaignSpec sub = spec;
    sub.trials = trials;
    return sim::run_campaign<InfraCounts>(
        sub, /*chunk=*/8, InfraCounts{},
        [&](Rng& rng, std::int64_t, sim::KernelTally& tally) {
          tally.note(sim::SimKernel::Scalar);
          return run_trial(rng, total);
        },
        infra_combine, provenance, stream_offset, done);
  };

  sim::CampaignResult<BisrYieldMcInfra> out;
  out.provenance.seed = spec.seed;
  out.provenance.threads = sim::resolve_campaign_threads(spec);
  out.provenance.kernel = spec.kernel;
  out.provenance.sampling = spec.sampling.mode;
  out.provenance.batch = spec.batch;

  if (spec.sampling.mode == sim::SamplingMode::Plain) {
    std::int64_t done = 0;
    const InfraCounts c =
        run_segment(/*total=*/-1, spec.trials, /*stream_offset=*/0,
                    &out.provenance, &done);
    const double n = done ? static_cast<double>(done) : 1.0;
    out.value.bist_reported_good = static_cast<double>(c.reported) / n;
    out.value.effective_good = static_cast<double>(c.effective) / n;
    out.value.escape = static_cast<double>(c.escape) / n;
    out.value.safe_fail = static_cast<double>(c.safe_fail) / n;
    out.value.hung = static_cast<double>(c.hung) / n;
    out.value.bist_reported_good_se = bernoulli_se(c.reported, done);
    out.value.effective_good_se = bernoulli_se(c.effective, done);
    out.value.die_sims = done;
    out.termination =
        sim::resolve_termination(done, spec.trials, spec.cancel, false);
    return out;
  }

  // Stratified over the *total* defect count. A zero-defect die runs the
  // flow on a perfect array with a perfect machine: DONE_OK with a clean
  // readback, deterministically. The truncated tail counts as safe_fail
  // so the five outcome fractions still sum to one. Strata a cancelled
  // run never reached carry zero trials and are counted pessimistically
  // by the combiners below.
  const sim::StrataPlan plan = sim::plan_strata(
      m * (1.0 + logic_area_fraction), alpha, spec.trials, spec.sampling);
  std::vector<sim::StratumCount> reported(plan.strata.size()),
      effective(plan.strata.size()), escape(plan.strata.size()),
      safe_fail(plan.strata.size()), hung(plan.strata.size());
  std::int64_t total_done = 0;
  bool stopped = false;
  for (std::size_t s = 0; s < plan.strata.size() && !stopped; ++s) {
    if (spec.cancel && spec.cancel->stop_requested()) break;
    const sim::Stratum& st = plan.strata[s];
    std::int64_t done = 0;
    const InfraCounts c = run_segment(st.defects, st.trials,
                                      sim::stratum_stream_offset(s),
                                      &out.provenance, &done);
    reported[s] = {c.reported, done};
    effective[s] = {c.effective, done};
    escape[s] = {c.escape, done};
    safe_fail[s] = {c.safe_fail, done};
    hung[s] = {c.hung, done};
    total_done += done;
    if (done < st.trials) stopped = true;
  }
  const sim::WeightedEstimate rep =
      sim::combine_strata_bernoulli(plan, reported, 1.0, 0.0);
  const sim::WeightedEstimate eff =
      sim::combine_strata_bernoulli(plan, effective, 1.0, 0.0);
  out.value.bist_reported_good = rep.value;
  out.value.bist_reported_good_se = rep.std_error;
  out.value.effective_good = eff.value;
  out.value.effective_good_se = eff.std_error;
  out.value.escape =
      sim::combine_strata_bernoulli(plan, escape, 0.0, 0.0).value;
  out.value.safe_fail =
      sim::combine_strata_bernoulli(plan, safe_fail, 0.0, 1.0).value;
  out.value.hung = sim::combine_strata_bernoulli(plan, hung, 0.0, 0.0).value;
  out.value.die_sims = total_done;
  out.provenance.strata = static_cast<std::int64_t>(plan.strata.size());
  out.provenance.trials = plan.total_trials();
  out.provenance.trials_done = total_done;
  out.termination = sim::resolve_termination(total_done, plan.total_trials(),
                                             spec.cancel, false);
  return out;
}

}  // namespace bisram::models
