#include "models/yield.hpp"

#include <cmath>
#include <set>

#include "microcode/controller.hpp"
#include "sim/bist.hpp"
#include "sim/controller.hpp"
#include "sim/infra_faults.hpp"
#include "sim/packed_ram.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace bisram::models {

double poisson_cell_yield(double lambda) {
  require(lambda >= 0, "poisson_cell_yield: negative lambda");
  return std::exp(-lambda);
}

double stapper_yield(double defect_mean, double alpha) {
  require(defect_mean >= 0, "stapper_yield: negative defect mean");
  require(alpha > 0, "stapper_yield: non-positive alpha");
  return std::pow(1.0 + defect_mean / alpha, -alpha);
}

double negbin_pmf(std::int64_t k, double mean, double alpha) {
  if (k < 0) return 0.0;
  require(alpha > 0, "negbin_pmf: non-positive alpha");
  if (mean <= 0.0) return k == 0 ? 1.0 : 0.0;
  const double p = mean / (mean + alpha);  // "success" probability
  const double ln = std::lgamma(alpha + static_cast<double>(k)) -
                    ln_factorial(k) - std::lgamma(alpha) +
                    static_cast<double>(k) * std::log(p) +
                    alpha * std::log1p(-p);
  return std::exp(ln);
}

double repair_probability(const sim::RamGeometry& geo, std::int64_t defects) {
  require(defects >= 0, "repair_probability: negative defects");
  if (defects == 0) return 1.0;
  const double ncells =
      static_cast<double>(geo.total_rows()) * static_cast<double>(geo.cols());
  const std::int64_t spare_words = geo.spare_words();
  const double spare_cells =
      static_cast<double>(spare_words) * static_cast<double>(geo.bpw);
  // Factor 1: every defect must miss the spare cells (strict goodness).
  const double spares_ok =
      std::pow(1.0 - spare_cells / ncells, static_cast<double>(defects));
  if (spare_words == 0) {
    // No repair capacity at all: good iff no defect hits a regular word,
    // which is impossible once a defect lands in the array.
    return 0.0;
  }
  // Factor 2: the defects that hit regular cells must cover at most
  // spare_words *distinct* words. Conditioned on missing the spares, the
  // k defects are uniform over the NW words (each word has bpw cells), so
  // the number of distinct faulty words follows the occupancy
  // distribution of k balls in NW boxes. A binomial approximation is
  // badly wrong here (k balls can never occupy more than k boxes), so we
  // run the exact occupancy recurrence, lumping states beyond
  // spare_words into an absorbing "unrepairable" state:
  //   p(k+1, d) = p(k, d) * d/NW + p(k, d-1) * (1 - (d-1)/NW).
  const double nw = static_cast<double>(geo.words);
  const std::size_t cap = static_cast<std::size_t>(spare_words);
  std::vector<double> p(cap + 1, 0.0);
  p[0] = 1.0;
  double dead = 0.0;
  for (std::int64_t b = 0; b < defects; ++b) {
    double carry = 0.0;  // mass flowing from d to d+1
    for (std::size_t d = 0; d <= cap; ++d) {
      const double stay = p[d] * (static_cast<double>(d) / nw);
      const double leave = p[d] - stay;
      p[d] = stay + carry;
      carry = leave;
    }
    dead += carry;  // occupancy exceeded the spare capacity
    if (dead > 1.0 - 1e-15) break;
  }
  double words_ok = 0.0;
  for (double v : p) words_ok += v;
  return words_ok * spares_ok;
}

sim::CampaignResult<double> repair_probability_mc(
    const sim::RamGeometry& geo, std::int64_t defects,
    const sim::CampaignSpec& spec) {
  const std::uint64_t rows = static_cast<std::uint64_t>(geo.total_rows());
  const std::uint64_t cols = static_cast<std::uint64_t>(geo.cols());
  const int spare_words = geo.spare_words();
  sim::CampaignResult<double> out;
  const int good = sim::run_campaign<int>(
      spec, /*chunk=*/64, 0,
      [&](Rng& rng, std::int64_t, sim::KernelTally&) {
        std::set<std::uint32_t> faulty_words;
        bool spare_hit = false;
        for (std::int64_t d = 0; d < defects; ++d) {
          const int row = static_cast<int>(rng.below(rows));
          const int col = static_cast<int>(rng.below(cols));
          if (row >= geo.rows()) {
            spare_hit = true;
            break;
          }
          // Invert the cell mapping: column = bit * bpc + colgroup.
          const int colgroup = col % geo.bpc;
          const std::uint32_t addr =
              static_cast<std::uint32_t>(row) *
                  static_cast<std::uint32_t>(geo.bpc) +
              static_cast<std::uint32_t>(colgroup);
          faulty_words.insert(addr);
        }
        return !spare_hit &&
                       static_cast<int>(faulty_words.size()) <= spare_words
                   ? 1
                   : 0;
      },
      [](int a, int b) { return a + b; }, &out.provenance);
  out.value = static_cast<double>(good) / spec.trials;
  return out;
}

double bisr_yield(const sim::RamGeometry& geo, double defect_mean,
                  double alpha, double growth) {
  require(growth >= 1.0, "bisr_yield: growth factor must be >= 1");
  const double m = defect_mean * growth;
  if (m == 0.0) return 1.0;
  // Truncate the negative-binomial sum when the residual tail cannot
  // change the result at double precision.
  double yield = 0.0;
  double tail = 1.0;
  const std::int64_t kmax =
      static_cast<std::int64_t>(m + 12.0 * std::sqrt(m * (1.0 + m / alpha))) +
      64;
  for (std::int64_t k = 0; k <= kmax && tail > 1e-12; ++k) {
    const double pk = negbin_pmf(k, m, alpha);
    tail -= pk;
    if (pk <= 0.0) continue;
    yield += pk * repair_probability(geo, k);
  }
  return yield;
}

int min_spare_rows_for_yield(sim::RamGeometry geo, double defect_mean,
                             double alpha, double target_yield,
                             double growth4, double growth8, double growth16) {
  require(target_yield > 0 && target_yield <= 1,
          "min_spare_rows_for_yield: target must be in (0, 1]");
  const std::pair<int, double> options[] = {
      {4, growth4}, {8, growth8}, {16, growth16}};
  for (const auto& [spares, growth] : options) {
    geo.spare_rows = spares;
    if (bisr_yield(geo, defect_mean, alpha, growth) >= target_yield)
      return spares;
  }
  return -1;
}

std::vector<YieldPoint> yield_curve(sim::RamGeometry geo, int spare_rows,
                                    double alpha, double growth,
                                    double max_defects, int points) {
  require(points >= 2, "yield_curve: needs >= 2 points");
  geo.spare_rows = spare_rows;
  geo.validate();
  std::vector<YieldPoint> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double m = max_defects * i / (points - 1);
    const double y = spare_rows == 0 ? stapper_yield(m, alpha)
                                     : bisr_yield(geo, m, alpha, growth);
    out.push_back({m, y});
  }
  return out;
}

sim::CampaignResult<BisrYieldMc> bisr_yield_mc_with_bist(
    const sim::RamGeometry& geo, double defect_mean, double alpha,
    double growth, const sim::CampaignSpec& spec) {
  struct Counts {
    int repaired = 0;
    int strict = 0;
  };
  sim::CampaignResult<BisrYieldMc> out;
  const Counts counts = sim::run_campaign<Counts>(
      spec, /*chunk=*/8, Counts{},
      [&](Rng& rng, std::int64_t, sim::KernelTally& tally) {
        // K ~ NegBin(mean = m*growth, alpha) via the Gamma-Poisson
        // mixture.
        const double m = defect_mean * growth;
        const double rate = gamma_sample(rng, alpha, m / alpha);
        const std::int64_t k = poisson_sample(rng, rate);

        // Drawing the whole fault list before simulating matches the old
        // inject-as-you-go RNG sequence exactly: FaultyArray::inject
        // consumes no randomness.
        std::vector<sim::Fault> faults;
        faults.reserve(static_cast<std::size_t>(k));
        bool spare_hit = false;
        for (std::int64_t d = 0; d < k; ++d) {
          sim::Fault f;
          f.kind = rng.chance(0.5) ? sim::FaultKind::StuckAt0
                                   : sim::FaultKind::StuckAt1;
          f.victim = {static_cast<int>(rng.below(
                          static_cast<std::uint64_t>(geo.total_rows()))),
                      static_cast<int>(rng.below(
                          static_cast<std::uint64_t>(geo.cols())))};
          if (f.victim.row >= geo.rows()) spare_hit = true;
          faults.push_back(f);
        }
        // Run the real two-pass BIST/BISR machinery. Note a StuckAt0
        // fault in a cell that every background pattern drives to 0 is
        // benign but is still *detected* by IFA-9's complement writes, so
        // this matches the analytic "any hit cell is faulty" accounting.
        // All faults are stuck-ats, so Auto resolves to the packed
        // bit-plane kernel for every trial.
        sim::SimKernel used = sim::SimKernel::Scalar;
        const sim::BistResult r =
            sim::run_bist(geo, faults, sim::BistConfig{}, spec.kernel, &used);
        tally.note(used);
        Counts c;
        if (r.repair_successful) {
          c.repaired = 1;
          if (!spare_hit) c.strict = 1;
        }
        return c;
      },
      [](Counts a, Counts b) {
        return Counts{a.repaired + b.repaired, a.strict + b.strict};
      },
      &out.provenance);
  out.value.bist_repaired = static_cast<double>(counts.repaired) / spec.trials;
  out.value.strict_good = static_cast<double>(counts.strict) / spec.trials;
  return out;
}

double repair_logic_yield(double defect_mean, double alpha, double growth,
                          double logic_area_fraction) {
  require(growth >= 1.0, "repair_logic_yield: growth factor must be >= 1");
  require(logic_area_fraction >= 0.0 && logic_area_fraction <= 1.0,
          "repair_logic_yield: area fraction must be in [0, 1]");
  return stapper_yield(defect_mean * growth * logic_area_fraction, alpha);
}

BisrYieldMcInfra bisr_yield_mc_with_infra(const sim::RamGeometry& geo,
                                          double defect_mean, double alpha,
                                          double growth,
                                          double logic_area_fraction,
                                          int trials, std::uint64_t seed) {
  require(trials >= 1, "bisr_yield_mc_with_infra: needs >= 1 trial");
  require(growth >= 1.0, "bisr_yield_mc_with_infra: growth must be >= 1");
  require(logic_area_fraction >= 0.0 && logic_area_fraction <= 1.0,
          "bisr_yield_mc_with_infra: area fraction must be in [0, 1]");
  geo.validate();
  require(geo.spare_words() >= 1,
          "bisr_yield_mc_with_infra: geometry needs >= 1 spare word");

  // Shared read-only controller + watchdog budget, built once.
  const sim::BistConfig bist;
  const auto ctrl = microcode::build_trpla(*bist.test, bist.max_passes);
  sim::InfraTrialConfig trial_cfg;
  trial_cfg.bist = bist;
  const std::uint64_t watchdog =
      sim::auto_watchdog_cycles(geo, ctrl, trial_cfg);

  struct Counts {
    std::int64_t reported = 0, effective = 0, escape = 0, safe_fail = 0,
                 hung = 0;
  };
  const Counts counts = parallel_reduce<Counts>(
      trials, /*chunk=*/8, Counts{},
      [&](std::int64_t t) {
        Rng rng(stream_seed(seed, static_cast<std::uint64_t>(t)));
        // One clustered defect rate per die (Gamma mixture), split
        // between array and repair logic by area.
        const double m = defect_mean * growth;
        const double rate =
            m > 0 ? gamma_sample(rng, alpha, m / alpha) : 0.0;
        const std::int64_t k = poisson_sample(rng, rate);
        const std::int64_t l =
            poisson_sample(rng, rate * logic_area_fraction);

        sim::RamModel ram(geo);
        for (std::int64_t d = 0; d < k; ++d) {
          sim::Fault f;
          f.kind = rng.chance(0.5) ? sim::FaultKind::StuckAt0
                                   : sim::FaultKind::StuckAt1;
          f.victim = {static_cast<int>(rng.below(
                          static_cast<std::uint64_t>(geo.total_rows()))),
                      static_cast<int>(rng.below(
                          static_cast<std::uint64_t>(geo.cols())))};
          ram.array().inject(f);
        }
        sim::PlaBistMachine machine(ram, ctrl, bist.retention_wait_s,
                                    bist.johnson_backgrounds);
        for (std::int64_t d = 0; d < l; ++d)
          machine.inject(sim::random_infra_fault(geo, ctrl, rng));

        const sim::BistResult r = machine.run(watchdog);
        Counts c;
        if (r.hung) {
          c.hung = 1;
        } else if (!r.repair_successful) {
          c.safe_fail = 1;
        } else {
          c.reported = 1;
          if (sim::normal_mode_readback_clean(ram))
            c.effective = 1;
          else
            c.escape = 1;
        }
        return c;
      },
      [](Counts a, Counts b) {
        return Counts{a.reported + b.reported, a.effective + b.effective,
                      a.escape + b.escape, a.safe_fail + b.safe_fail,
                      a.hung + b.hung};
      });
  BisrYieldMcInfra out;
  const double n = static_cast<double>(trials);
  out.bist_reported_good = static_cast<double>(counts.reported) / n;
  out.effective_good = static_cast<double>(counts.effective) / n;
  out.escape = static_cast<double>(counts.escape) / n;
  out.safe_fail = static_cast<double>(counts.safe_fail) / n;
  out.hung = static_cast<double>(counts.hung) / n;
  return out;
}

}  // namespace bisram::models
