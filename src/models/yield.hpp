#pragma once
// Yield model (paper Section VII, Fig. 4).
//
// Defect statistics follow Stapper: the number of defects K falling on an
// area with mean defect count m = D*A is negative-binomial with
// clustering parameter alpha, so that P(K = 0) = (1 + m/alpha)^-alpha is
// exactly Stapper's yield formula. Given K = k defects placed uniformly
// over the cell array, a BISR'ed RAM is "good" (the paper's strict
// manufacturing definition) iff
//   (a) the number of faulty regular words is at most the number of
//       spare words (s * bpc), and
//   (b) every spare word is fault-free.
// The yield with BISR is E_K[ P(pattern of K defects is repairable) ],
// where the defect mean is grown by the BISR area growth factor.

#include <cstdint>
#include <vector>

#include "sim/campaign.hpp"
#include "sim/ram_model.hpp"

namespace bisram::models {

/// Poisson single-cell yield e^-lambda (lambda = mean faults per cell).
double poisson_cell_yield(double lambda);

/// Stapper's clustered yield (1 + m/alpha)^-alpha for defect mean m.
double stapper_yield(double defect_mean, double alpha);

/// Negative-binomial pmf P(K = k) with mean m and clustering alpha.
double negbin_pmf(std::int64_t k, double mean, double alpha);

/// P(a pattern of exactly `defects` uniformly placed cell defects is
/// repairable) under the strict goodness criterion, using the
/// independent-words approximation:
///   q = 1 - (1 - bpw/Ncells)^defects,
///   P = BinCdf(NW, spare_words, q) * (1 - spare_cells/Ncells)^defects.
double repair_probability(const sim::RamGeometry& geo, std::int64_t defects);

/// Monte-Carlo estimate of the same probability (exact pattern
/// semantics, no independence approximation), run under the unified
/// campaign API (sim/campaign.hpp). The trial body is pure set
/// arithmetic — no RAM simulation — so the spec's kernel choice is
/// recorded in the provenance but does not affect the result, and the
/// per-kernel trial counters stay zero.
sim::CampaignResult<double> repair_probability_mc(
    const sim::RamGeometry& geo, std::int64_t defects,
    const sim::CampaignSpec& spec);

/// Yield of a RAM *without* spares at defect mean m: Stapper.
/// Yield *with* spares and BISR at the same nonredundant defect mean m:
/// E_K[repair_probability(K)] with K ~ NegBin(mean = m * growth, alpha).
/// `growth` is the BISR'ed-over-plain area ratio (>= 1).
double bisr_yield(const sim::RamGeometry& geo, double defect_mean,
                  double alpha, double growth);

/// Spare-allocation helper: the smallest paper-supported spare-row count
/// (4, 8, 16) whose BISR yield meets `target_yield` at the given defect
/// mean, or -1 when even 16 rows fall short. Growth factors are supplied
/// per spare count (index by 4/8/16 via the map argument order 4,8,16).
int min_spare_rows_for_yield(sim::RamGeometry geo, double defect_mean,
                             double alpha, double target_yield,
                             double growth4 = 1.05, double growth8 = 1.06,
                             double growth16 = 1.08);

/// One Fig. 4 curve: yield vs defect mean for the given spare-row count.
struct YieldPoint {
  double defects;  ///< nonredundant defect mean (the paper's x axis)
  double yield;
};
std::vector<YieldPoint> yield_curve(sim::RamGeometry geo, int spare_rows,
                                    double alpha, double growth,
                                    double max_defects, int points);

/// End-to-end Monte-Carlo check: samples K ~ NegBin, injects K random
/// stuck-at cell faults into a real RamModel and runs the actual
/// BIST/BISR engine. `bist_repaired` is the fraction the two-pass flow
/// repaired; `strict_good` additionally demands every spare cell be
/// fault-free — the paper's manufacturing criterion and the quantity the
/// analytic bisr_yield() models (BIST alone is more permissive: a faulty
/// spare that is never used does not fail the module).
struct BisrYieldMc {
  double bist_repaired = 0;
  double strict_good = 0;
  double bist_repaired_se = 0;  ///< standard error of bist_repaired
  double strict_good_se = 0;    ///< standard error of strict_good
  /// BIST/BISR die simulations actually executed. Plain sampling spends
  /// one per trial; stratified sampling spends none on the zero-defect
  /// stratum, which at production defect densities is a >= 10x saving
  /// for the same trial budget (tests/test_yield_statistics.cpp).
  std::int64_t die_sims = 0;
};

/// Unified-campaign form: trials, seed, threads, simulation kernel,
/// SIMD die-batch width and defect-count sampling mode all come from
/// `spec`. Every sampled fault is a stuck-at cell fault, so under
/// SimKernel::Auto all trials run on the bit-plane packed kernel
/// (sim/packed_ram.hpp); results are bit-identical to the scalar path
/// for every kernel, thread count and batch width.
///
/// Sampling modes (sim/importance.hpp): Plain draws K ~ NegBin per trial
/// and simulates every die; Stratified resolves the K = 0 stratum
/// analytically, simulates each K = k stratum conditionally and
/// reweights with the exact pmf — an unbiased estimator of the same
/// yields with far fewer die simulations and lower variance.
sim::CampaignResult<BisrYieldMc> bisr_yield_mc_with_bist(
    const sim::RamGeometry& geo, double defect_mean, double alpha,
    double growth, const sim::CampaignSpec& spec);

// --- repair-logic defects (sim/infra_faults.hpp) ----------------------------
//
// The analytic bisr_yield() and the MC above treat the repair machinery
// as defect-free, but the TLB/ADDGEN/DATAGEN/TRPLA occupy the BISR area
// overhead (growth - 1, plus a share of the periphery) and collect
// defects at the same density as the array.

/// Probability the repair logic itself is defect-free: Stapper yield of
/// the repair-logic area. `logic_area_fraction` is the repair logic's
/// share of the grown die area (so its defect mean is
/// defect_mean * growth * logic_area_fraction). Multiply bisr_yield() by
/// this for a first-order "working die AND working BISR" estimate that
/// counts every repair-logic defect as fatal — pessimistic, since the MC
/// below shows a large share of such defects are benign or safe-fail.
double repair_logic_yield(double defect_mean, double alpha, double growth,
                          double logic_area_fraction);

/// Monte-Carlo yield with defects in *both* the array and the repair
/// machinery. Each trial draws one clustered defect rate (Gamma-Poisson,
/// shared by both regions — defects cluster across the die, not per
/// block), injects K array faults and L ~ Poisson(rate * fraction) infra
/// faults, runs the microprogrammed BIST/BISR flow under a watchdog and
/// classifies the outcome with the golden normal-mode readback.
struct BisrYieldMcInfra {
  double bist_reported_good = 0;  ///< DONE_OK fraction (what the tester sees)
  double effective_good = 0;      ///< DONE_OK and the readback is clean
  double escape = 0;              ///< DONE_OK but the RAM is bad — shipped defect
  double safe_fail = 0;           ///< DONE_FAIL fraction
  double hung = 0;                ///< watchdog-tripped fraction
  double bist_reported_good_se = 0;  ///< standard error of bist_reported_good
  double effective_good_se = 0;      ///< standard error of effective_good
  std::int64_t die_sims = 0;  ///< microprogrammed die simulations executed
};

/// Unified-campaign form. The total defect count (array + infra) is
/// NegBin(mean = m * growth * (1 + fraction), alpha); conditioned on the
/// total, each defect lands in the repair logic with probability
/// fraction / (1 + fraction) independently of the mixed rate, which is
/// what makes the stratified estimator exact here too. The zero stratum
/// is a defect-free die (DONE_OK, clean readback) and the truncated tail
/// is counted as safe_fail. Forced SimKernel::Packed is rejected — the
/// microprogrammed machine has no packed path.
sim::CampaignResult<BisrYieldMcInfra> bisr_yield_mc_with_infra(
    const sim::RamGeometry& geo, double defect_mean, double alpha,
    double growth, double logic_area_fraction, const sim::CampaignSpec& spec);

}  // namespace bisram::models
