// Reconstructed microprocessor database for Tables II and III.
//
// The paper computed its tables from Microprocessor Report (MPR) data,
// September 1994 / August 1993, which the paper text does not reproduce.
// The rows below are rebuilt from public-domain sources: die areas and
// processes from vendor datasheets and the MPR-era trade press; wafer
// costs, test times and defect densities are period-typical values in the
// ranges the paper itself quotes ($50-$500/h testers, 30 s - 5 min test
// time, die cost 30-70% of total). Each cache geometry is a
// representative column-multiplexed organization of the documented cache
// capacity (bpw = 64, bpc = 8). Chips fabricated with only two metal
// layers keep cache data but are flagged unsupported, reproducing the
// blank rows of Table II ("BISR RAMs built by BISRAMGEN require three
// metal layers").

#include "models/cost.hpp"
#include "util/error.hpp"

namespace bisram::models {

namespace {

// Representative cache organization for a capacity in kilobytes.
sim::RamGeometry cache_geometry(double kbytes) {
  sim::RamGeometry g;
  g.bpw = 64;
  g.bpc = 8;
  g.words = static_cast<std::uint32_t>(kbytes * 1024.0 * 8.0 / g.bpw);
  g.spare_rows = 4;
  g.validate();
  return g;
}

CpuSpec cpu(std::string name, std::string process, double feature_um,
            int metals, double die_mm2, int wafer_mm, double wafer_usd,
            double d_cm2, double cache_kb, double cache_fraction, int pins,
            std::string package, double test_s) {
  CpuSpec c;
  c.name = std::move(name);
  c.process = std::move(process);
  c.feature_um = feature_um;
  c.metal_layers = metals;
  c.die_area_mm2 = die_mm2;
  c.wafer_mm = wafer_mm;
  c.wafer_cost_usd = wafer_usd;
  c.defects_per_cm2 = d_cm2;
  c.cluster_alpha = 2.0;
  c.cache_fraction = cache_fraction;
  c.cache_geo = cache_geometry(cache_kb);
  c.pins = pins;
  c.package = std::move(package);
  c.test_time_s = test_s;
  return c;
}

}  // namespace

const std::vector<CpuSpec>& cpu_database() {
  static const std::vector<CpuSpec> db = {
      // name, process, um, metals, die mm2, wafer, $wafer, D/cm2,
      //   cache KB, cache frac, pins, pkg, test s
      cpu("Intel486DX2", "0.8u CMOS", 0.8, 3, 81, 150, 1300, 0.9,
          8, 0.08, 168, "PGA", 30),
      cpu("Intel486DX4", "0.6u CMOS", 0.6, 3, 76, 200, 2200, 1.0,
          16, 0.14, 168, "PGA", 45),
      cpu("Pentium", "0.8u BiCMOS", 0.8, 3, 294, 200, 2400, 1.2,
          16, 0.10, 273, "PGA", 300),
      cpu("Pentium-P54C", "0.6u BiCMOS", 0.6, 4, 148, 200, 2600, 1.2,
          16, 0.12, 296, "PGA", 300),
      cpu("TI-SuperSPARC", "0.8u CMOS", 0.8, 3, 256, 150, 1600, 1.5,
          36, 0.30, 293, "PGA", 300),
      cpu("HyperSPARC", "0.5u CMOS", 0.5, 3, 90, 200, 2800, 1.1,
          8, 0.25, 144, "PGA", 120),
      cpu("MIPS-R4400", "0.6u CMOS", 0.6, 3, 186, 200, 2400, 1.1,
          32, 0.22, 447, "PGA", 120),
      cpu("MIPS-R4600", "0.64u CMOS", 0.64, 3, 77, 200, 2300, 1.0,
          32, 0.35, 179, "PQFP", 60),
      cpu("PowerPC601", "0.6u CMOS", 0.6, 4, 121, 200, 2500, 1.0,
          32, 0.20, 304, "PGA", 120),
      cpu("PowerPC604", "0.5u CMOS", 0.5, 4, 196, 200, 2800, 1.2,
          32, 0.17, 304, "PGA", 180),
      cpu("Alpha21064A", "0.5u CMOS", 0.5, 4, 164, 200, 3000, 1.2,
          32, 0.25, 431, "PGA", 240),
      cpu("MC68060", "0.5u CMOS", 0.5, 3, 198, 200, 2600, 1.2,
          16, 0.12, 223, "PGA", 90),
      cpu("NexGen-Nx586", "0.5u CMOS", 0.5, 3, 118, 200, 2800, 1.2,
          32, 0.28, 207, "PGA", 90),
      // Two-metal parts: blank rows in Table II (no BISR possible).
      cpu("Intel386DX", "1.0u CMOS", 1.0, 2, 43, 150, 900, 0.8,
          8, 0.0, 132, "PQFP", 30),
      cpu("MC68040", "0.8u CMOS", 0.8, 2, 126, 150, 1200, 1.0,
          8, 0.13, 179, "PGA", 60),
  };
  return db;
}

std::optional<CpuSpec> find_cpu(const std::string& name) {
  for (const auto& c : cpu_database())
    if (c.name == name) return c;
  return std::nullopt;
}

}  // namespace bisram::models
