#include "models/cost.hpp"

#include <cmath>

#include "models/yield.hpp"
#include "util/error.hpp"

namespace bisram::models {

double dies_per_wafer(double wafer_mm, double die_area_mm2) {
  require(wafer_mm > 0 && die_area_mm2 > 0, "dies_per_wafer: bad inputs");
  const double r = wafer_mm / 2.0;
  const double gross = M_PI * r * r / die_area_mm2;
  const double edge = M_PI * wafer_mm / std::sqrt(2.0 * die_area_mm2);
  const double dpw = gross - edge;
  require(dpw > 1.0, "dies_per_wafer: die too large for wafer");
  return dpw;
}

CostResult analyze_cpu(const CpuSpec& cpu, const CostModelParams& params) {
  require(cpu.die_area_mm2 > 0 && cpu.wafer_cost_usd > 0,
          "analyze_cpu: incomplete spec");
  CostResult r;
  r.name = cpu.name;
  r.bisr_supported = cpu.metal_layers >= 3 && cpu.cache_fraction > 0;

  // --- yields ---------------------------------------------------------
  const double die_cm2 = cpu.die_area_mm2 / 100.0;
  const double m_die = cpu.defects_per_cm2 * die_cm2;
  r.die_yield = stapper_yield(m_die, cpu.cluster_alpha);
  // Paper: embedded RAM yield = (die yield)^cache_fraction.
  r.ram_yield = std::pow(r.die_yield, cpu.cache_fraction);

  if (r.bisr_supported) {
    // Defect mean attributable to the cache (inverse Stapper on Y_ram).
    const double m_ram =
        cpu.cluster_alpha *
        (std::pow(r.ram_yield, -1.0 / cpu.cluster_alpha) - 1.0);
    const double growth = 1.0 + params.bisr_area_overhead;
    sim::RamGeometry geo = cpu.cache_geo;
    geo.spare_rows = params.spare_rows;
    geo.validate();
    r.ram_yield_bisr = bisr_yield(geo, m_ram, cpu.cluster_alpha, growth);
    // Fold the cache improvement back into the whole-die yield: all other
    // macrocells keep their yield, so the die improves by the same factor
    // as the cache.
    r.die_yield_bisr = r.die_yield * (r.ram_yield_bisr / r.ram_yield);
  } else {
    r.ram_yield_bisr = r.ram_yield;
    r.die_yield_bisr = r.die_yield;
  }

  // --- dies per wafer --------------------------------------------------
  r.dies_per_wafer = dies_per_wafer(cpu.wafer_mm, cpu.die_area_mm2);
  const double area_bisr =
      cpu.die_area_mm2 *
      (1.0 + (r.bisr_supported
                  ? params.bisr_area_overhead * cpu.cache_fraction
                  : 0.0));
  r.dies_per_wafer_bisr = dies_per_wafer(cpu.wafer_mm, area_bisr);

  // --- die cost ---------------------------------------------------------
  r.die_cost = cpu.wafer_cost_usd / (r.dies_per_wafer * r.die_yield);
  r.die_cost_bisr =
      cpu.wafer_cost_usd / (r.dies_per_wafer_bisr * r.die_yield_bisr);

  // --- wafer test & assembly, amortized over good dies ------------------
  auto test_cost_per_good = [&](double dpw, double yield) {
    const double good = dpw * yield;
    const double bad = dpw * (1.0 - yield);
    const double seconds = good * cpu.test_time_s + bad * params.bad_die_test_s;
    const double wafer_test_usd = seconds / 60.0 * params.wafer_test_usd_per_min;
    return wafer_test_usd / good;
  };
  const double test_cost = test_cost_per_good(r.dies_per_wafer, r.die_yield);
  const double test_cost_bisr =
      test_cost_per_good(r.dies_per_wafer_bisr, r.die_yield_bisr);

  // --- package & final test --------------------------------------------
  const double package_usd = cpu.pins * params.package_usd_per_pin;
  const double final_yield =
      cpu.package == "PGA" ? params.final_yield_pga : params.final_yield_pqfp;

  r.total_cost = (r.die_cost + test_cost + package_usd) / final_yield;
  r.total_cost_bisr =
      (r.die_cost_bisr + test_cost_bisr + package_usd) / final_yield;
  return r;
}

double breakeven_defect_density(const CpuSpec& cpu,
                                const CostModelParams& params,
                                double max_d_cm2) {
  require(max_d_cm2 > 0, "breakeven_defect_density: bad probe limit");
  CpuSpec probe = cpu;
  auto pays = [&](double d) {
    probe.defects_per_cm2 = d;
    const CostResult r = analyze_cpu(probe, params);
    return r.bisr_supported && r.total_cost_bisr < r.total_cost;
  };
  const double lo_probe = 0.01;
  if (pays(lo_probe)) return 0.0;
  if (!pays(max_d_cm2)) return -1.0;
  double lo = lo_probe, hi = max_d_cm2;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    (pays(mid) ? hi : lo) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace bisram::models
