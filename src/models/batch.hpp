#pragma once
// Batch design-point evaluation: the one entry point the DSE engine
// (src/dse) calls per lattice point to turn a compiled module into the
// four figures of merit the Pareto frontier trades off — silicon area,
// manufacturing yield, mean time to failure, and cost per good die.
// Each is computed by the existing per-model code (models/yield.hpp,
// models/reliability.hpp, models/cost.hpp's dies-per-wafer estimate);
// this header only fixes the composition so every caller (DSE engine,
// bisram_dse CLI, tests) prices a design the same way.
//
// Everything here is closed-form and deterministic — no Monte Carlo, no
// RNG — so a design point's metrics are a pure function of
// (EvalInputs, EvalParams), which is what makes the DSE result cache
// sound: equal fingerprints imply bit-identical metrics.

#include <vector>

#include "sim/ram_model.hpp"
#include "util/cancel.hpp"

namespace bisram::models {

/// Sweep-level evaluation constants, shared by every point of a sweep
/// (and mixed into every point's cache fingerprint).
struct EvalParams {
  double defects_per_cm2 = 0.5;   ///< process defect density
  double cluster_alpha = 2.0;     ///< Stapper clustering parameter
  double lambda_per_hour = 1e-9;  ///< hard cell-failure rate (reliability)
  double wafer_mm = 200;          ///< wafer diameter for the cost model
  double wafer_cost_usd = 1300;   ///< processed wafer cost
};

/// What one compiled design point hands the models: its geometry and
/// the datasheet quantities the metrics derive from.
struct EvalInputs {
  sim::RamGeometry geo;
  double area_mm2 = 0;       ///< full module area (with BIST+BISR+spares)
  double base_area_mm2 = 0;  ///< array + decoders + periphery only
  double access_s = 0;       ///< read access time
  double overhead_pct = 0;   ///< Table-I BIST+BISR overhead
};

/// The DSE objective vector (plus the echoed datasheet quantities the
/// frontier report carries).
struct DesignMetrics {
  double area_mm2 = 0;        ///< minimize
  double yield = 0;           ///< maximize: BISR yield at EvalParams density
  double mttf_hours = 0;      ///< maximize
  double cost_usd = 0;        ///< minimize: wafer cost per good module
  double access_ns = 0;       ///< reported (not a frontier objective)
  double overhead_pct = 0;    ///< reported
};

/// Evaluates one point: Stapper/BISR yield at the sweep's defect
/// density (defect mean = density x base cell-array area, grown by the
/// module's measured BISR growth factor), closed-form MTTF, and wafer
/// cost amortized over good modules (dies_per_wafer x yield).
DesignMetrics evaluate_design(const EvalInputs& in, const EvalParams& p);

/// Batch form over the campaign pool: metrics[i] corresponds to
/// inputs[i]; bit-identical for any thread count. A cancelled run
/// leaves un-evaluated entries value-initialized (yield == 0) — the
/// caller tracks which indices completed (the DSE engine keeps its own
/// per-point evaluated flags).
std::vector<DesignMetrics> evaluate_designs(
    const std::vector<EvalInputs>& inputs, const EvalParams& p,
    int threads = 0, const CancelToken* cancel = nullptr);

}  // namespace bisram::models
