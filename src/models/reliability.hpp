#pragma once
// Reliability model (paper Section VIII, Fig. 5).
//
// Hard (permanent) cell failures arrive at rate lambda per cell per hour.
// A bpw-bit word is faulty at time t with probability
//   q(t) = 1 - exp(-bpw * lambda * t).
// The BISR'ed module survives to time t iff at most spare_words regular
// words have failed AND the spare words themselves are all fault-free:
//   R(t) = [ sum_{i=0}^{S} C(NW, i) q^i (1-q)^(NW-i) ] * (1-q)^S
// and MTTF = integral_0^inf R(t) dt.
//
// The paper's observation reproduced by bench_reliability: more spares
// help only after a device age threshold; before it, the extra spare
// cells are just more ways to die (the (1-q)^S factor), so R with 4
// spares exceeds R with 8 until the crossover.

#include <cstdint>
#include <vector>

#include "sim/campaign.hpp"
#include "sim/ram_model.hpp"

namespace bisram::models {

/// q(t): probability that one bpw-bit word has failed by time t_hours.
double word_failure_prob(int bpw, double lambda_per_hour, double t_hours);

/// R(t) for the BISR'ed RAM.
double reliability(const sim::RamGeometry& geo, double lambda_per_hour,
                   double t_hours);

/// Monte-Carlo estimate of R(t): samples which words have failed by
/// t_hours (geometric-gap Bernoulli sampling over the word array) and
/// applies the same survival criterion as the analytic formula — at most
/// spare_words failed regular words and every spare word alive. Runs
/// under the unified campaign API (sim/campaign.hpp): bit-identical for
/// any thread count under a fixed seed. The trial body never touches the
/// RAM model, so forcing SimKernel::Packed is rejected with SpecError;
/// Auto and Scalar behave identically. Cross-validates reliability()
/// with exact pattern semantics.
sim::CampaignResult<double> reliability_mc(const sim::RamGeometry& geo,
                                           double lambda_per_hour,
                                           double t_hours,
                                           const sim::CampaignSpec& spec);

/// Mean time to failure in hours (numeric integration of R).
double mttf_hours(const sim::RamGeometry& geo, double lambda_per_hour);

/// One Fig. 5 curve: R(t) sampled at `points` times up to max_hours.
struct ReliabilityPoint {
  double t_hours;
  double reliability;
};
std::vector<ReliabilityPoint> reliability_curve(sim::RamGeometry geo,
                                                int spare_rows,
                                                double lambda_per_hour,
                                                double max_hours, int points);

/// Device age at which the s2-spare module first becomes more reliable
/// than the s1-spare module (s2 > s1), or a negative value when no
/// crossover occurs before `max_hours`.
double reliability_crossover_hours(sim::RamGeometry geo, int s1, int s2,
                                   double lambda_per_hour, double max_hours);

}  // namespace bisram::models
