#pragma once
// Wafer-map Monte-Carlo: a spatial defect simulation behind the yield
// model. Stapper's negative-binomial statistics arise physically from
// defect *clustering* across the wafer; this module samples per-die
// defect rates from a Gamma mixture, scatters defect coordinates over
// each die, splits them between the embedded RAM region and the rest of
// the chip, and asks the repairability model whether each die survives
// — with and without BISR. It both cross-validates the analytic Fig. 4
// model and produces the classic wafer-map picture.

#include <string>
#include <vector>

#include "sim/campaign.hpp"
#include "sim/ram_model.hpp"

namespace bisram::models {

struct WaferSpec {
  double wafer_mm = 200;
  double die_w_mm = 10;
  double die_h_mm = 10;
  double defects_per_cm2 = 1.0;
  double cluster_alpha = 2.0;   ///< Stapper clustering
  double ram_fraction = 0.2;    ///< die area occupied by the RAM macro
  sim::RamGeometry ram_geo;     ///< geometry of the embedded RAM
};

enum class DieState : std::uint8_t {
  OffWafer,   ///< outside the usable circle
  Good,       ///< zero defects anywhere
  Repaired,   ///< defects only in the RAM, repairable by BISR
  Bad,        ///< logic defects, or unrepairable RAM defects
};

struct WaferResult {
  int dies_total = 0;          ///< complete dies on the wafer
  int good = 0;                ///< perfect dies
  int repaired = 0;            ///< saved by BISR
  int bad = 0;
  std::vector<std::vector<DieState>> map;  ///< [row][col]

  double yield_without_bisr() const {
    return dies_total ? static_cast<double>(good) / dies_total : 0.0;
  }
  double yield_with_bisr() const {
    return dies_total ? static_cast<double>(good + repaired) / dies_total
                      : 0.0;
  }
};

/// Simulates one wafer.
WaferResult simulate_wafer(const WaferSpec& spec, std::uint64_t seed);

/// Aggregate statistics of a wafer-scale streaming campaign: the same
/// per-die defect model as simulate_wafer, run over `spec.trials` dies
/// (10^6+ is routine) without materializing a map. Memory stays bounded
/// no matter how many dies stream through: yields fold as exact integer
/// counts and the defect-count moments fold through mergeable Welford
/// accumulators (util/math.hpp), one per worker chunk.
struct WaferCampaignStats {
  std::int64_t dies = 0;  ///< dies represented by the estimate
  double yield_without_bisr = 0;     ///< P(zero defects anywhere on the die)
  double yield_without_bisr_se = 0;  ///< 0 under stratified sampling: the
                                     ///< zero strat resolves analytically
  double yield_with_bisr = 0;        ///< P(good or BISR-repaired)
  double yield_with_bisr_se = 0;
  double mean_defects_per_die = 0;  ///< sample (plain) / reweighted (IS) mean
  double mean_defects_per_die_se = 0;
  std::int64_t die_sims = 0;  ///< per-die simulations actually executed
  int dies_per_wafer = 0;     ///< usable dies per physical wafer (geometry)
};

/// Streaming wafer-scale yield campaign. Plain sampling draws every
/// die's clustered defect count; Stratified sampling (sim/importance.hpp)
/// resolves the zero-defect stratum — the overwhelming majority at
/// production densities — analytically, pins the count in each simulated
/// stratum and reweights with the exact negative-binomial pmf. Under
/// stratified sampling yield_without_bisr is *exact* (it is P(K = 0)
/// itself) and mean_defects_per_die is a deterministic reweighted sum.
/// Die trials are position-independent (defect statistics do not depend
/// on where a usable die sits), so the campaign streams dies, not
/// wafers; dies_per_wafer reports the physical wafer capacity for
/// converting die counts to wafer counts.
///
/// Robustness: honors campaign.cancel (cooperative cancel/deadline — a
/// stopped run returns a valid partial estimate over
/// provenance.trials_done dies, labelled by the result's termination)
/// and campaign.checkpoint (crash-safe checkpoint/resume; a resumed run
/// is bit-identical to an uninterrupted one for every cadence and
/// thread count — tests/test_checkpoint_resume.cpp).
sim::CampaignResult<WaferCampaignStats> wafer_yield_campaign(
    const WaferSpec& spec, const sim::CampaignSpec& campaign);

/// ASCII rendering of the map ('.' off-wafer, 'O' good, 'R' repaired,
/// 'X' bad) — the picture a fab yield report shows.
std::string render_wafer(const WaferResult& result);

}  // namespace bisram::models
