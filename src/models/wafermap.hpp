#pragma once
// Wafer-map Monte-Carlo: a spatial defect simulation behind the yield
// model. Stapper's negative-binomial statistics arise physically from
// defect *clustering* across the wafer; this module samples per-die
// defect rates from a Gamma mixture, scatters defect coordinates over
// each die, splits them between the embedded RAM region and the rest of
// the chip, and asks the repairability model whether each die survives
// — with and without BISR. It both cross-validates the analytic Fig. 4
// model and produces the classic wafer-map picture.

#include <string>
#include <vector>

#include "sim/ram_model.hpp"

namespace bisram::models {

struct WaferSpec {
  double wafer_mm = 200;
  double die_w_mm = 10;
  double die_h_mm = 10;
  double defects_per_cm2 = 1.0;
  double cluster_alpha = 2.0;   ///< Stapper clustering
  double ram_fraction = 0.2;    ///< die area occupied by the RAM macro
  sim::RamGeometry ram_geo;     ///< geometry of the embedded RAM
};

enum class DieState : std::uint8_t {
  OffWafer,   ///< outside the usable circle
  Good,       ///< zero defects anywhere
  Repaired,   ///< defects only in the RAM, repairable by BISR
  Bad,        ///< logic defects, or unrepairable RAM defects
};

struct WaferResult {
  int dies_total = 0;          ///< complete dies on the wafer
  int good = 0;                ///< perfect dies
  int repaired = 0;            ///< saved by BISR
  int bad = 0;
  std::vector<std::vector<DieState>> map;  ///< [row][col]

  double yield_without_bisr() const {
    return dies_total ? static_cast<double>(good) / dies_total : 0.0;
  }
  double yield_with_bisr() const {
    return dies_total ? static_cast<double>(good + repaired) / dies_total
                      : 0.0;
  }
};

/// Simulates one wafer.
WaferResult simulate_wafer(const WaferSpec& spec, std::uint64_t seed);

/// ASCII rendering of the map ('.' off-wafer, 'O' good, 'R' repaired,
/// 'X' bad) — the picture a fab yield report shows.
std::string render_wafer(const WaferResult& result);

}  // namespace bisram::models
