#include "models/batch.hpp"

#include <algorithm>

#include "models/cost.hpp"
#include "models/reliability.hpp"
#include "models/yield.hpp"
#include "util/parallel.hpp"

namespace bisram::models {

DesignMetrics evaluate_design(const EvalInputs& in, const EvalParams& p) {
  DesignMetrics m;
  m.area_mm2 = in.area_mm2;
  m.access_ns = in.access_s * 1e9;
  m.overhead_pct = in.overhead_pct;

  // Yield: the nonredundant defect mean is density x base area (the
  // paper's Fig. 4 x-axis); the BISR growth factor is the module's own
  // measured area ratio, floored at 1 (a degenerate tiny module whose
  // periphery dwarfs its array still has growth >= 1 by construction).
  const double base_cm2 = std::max(in.base_area_mm2, 1e-9) * 1e-2;
  const double defect_mean = p.defects_per_cm2 * base_cm2;
  const double growth =
      std::max(1.0, in.area_mm2 / std::max(in.base_area_mm2, 1e-9));
  m.yield = bisr_yield(in.geo, defect_mean, p.cluster_alpha, growth);

  m.mttf_hours = mttf_hours(in.geo, p.lambda_per_hour);

  // Cost per good module: classic dies-per-wafer against the full
  // module area, discounted by the yield just computed.
  const double dpw = dies_per_wafer(p.wafer_mm, std::max(in.area_mm2, 1e-9));
  m.cost_usd = dpw > 0 && m.yield > 0
                   ? p.wafer_cost_usd / (dpw * m.yield)
                   : 0.0;
  return m;
}

std::vector<DesignMetrics> evaluate_designs(
    const std::vector<EvalInputs>& inputs, const EvalParams& p, int threads,
    const CancelToken* cancel) {
  std::vector<DesignMetrics> out(inputs.size());
  parallel_for(
      static_cast<std::int64_t>(inputs.size()), /*chunk=*/8,
      [&](std::int64_t i) {
        out[static_cast<std::size_t>(i)] =
            evaluate_design(inputs[static_cast<std::size_t>(i)], p);
      },
      threads, cancel);
  return out;
}

}  // namespace bisram::models
