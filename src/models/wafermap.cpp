#include "models/wafermap.hpp"

#include <cmath>
#include <set>

#include "sim/importance.hpp"
#include "util/checkpoint.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace bisram::models {

WaferResult simulate_wafer(const WaferSpec& spec, std::uint64_t seed) {
  require(spec.wafer_mm > 0 && spec.die_w_mm > 0 && spec.die_h_mm > 0,
          "simulate_wafer: bad dimensions");
  require(spec.ram_fraction > 0 && spec.ram_fraction < 1,
          "simulate_wafer: ram_fraction must be in (0,1)");
  spec.ram_geo.validate();

  const double radius = spec.wafer_mm / 2.0;
  const int cols = static_cast<int>(spec.wafer_mm / spec.die_w_mm);
  const int rows = static_cast<int>(spec.wafer_mm / spec.die_h_mm);
  const double die_cm2 = spec.die_w_mm * spec.die_h_mm / 100.0;
  const double mean_defects = spec.defects_per_cm2 * die_cm2;

  WaferResult result;
  result.map.assign(static_cast<std::size_t>(rows),
                    std::vector<DieState>(static_cast<std::size_t>(cols),
                                          DieState::OffWafer));

  const int spare_words = spec.ram_geo.spare_words();
  const std::uint64_t ram_rows =
      static_cast<std::uint64_t>(spec.ram_geo.total_rows());
  const std::uint64_t ram_cols = static_cast<std::uint64_t>(spec.ram_geo.cols());

  // Each die draws from its own grid-indexed seed sub-stream and writes
  // only its own map cell, so dies simulate concurrently with the same
  // outcome as the serial scan.
  struct Counts {
    int total = 0, good = 0, repaired = 0, bad = 0;
  };
  const Counts counts = parallel_reduce<Counts>(
      static_cast<std::int64_t>(rows) * cols, /*chunk=*/8, Counts{},
      [&](std::int64_t die) {
        const int r = static_cast<int>(die / cols);
        const int c = static_cast<int>(die % cols);
        // Die corner coordinates relative to wafer centre.
        const double x0 = c * spec.die_w_mm - radius;
        const double y0 = r * spec.die_h_mm - radius;
        // A die is usable when all four corners are inside the circle.
        bool inside = true;
        for (double dx : {0.0, spec.die_w_mm})
          for (double dy : {0.0, spec.die_h_mm})
            if (std::hypot(x0 + dx, y0 + dy) > radius) inside = false;
        if (!inside) return Counts{};
        Counts out;
        out.total = 1;

        Rng rng(stream_seed(seed, static_cast<std::uint64_t>(die)));
        // Clustered statistics: this die's defect rate is Gamma-mixed, so
        // the count is negative-binomial with the Stapper alpha.
        const std::int64_t k =
            mean_defects <= 0.0
                ? 0
                : poisson_sample(
                      rng, gamma_sample(rng, spec.cluster_alpha,
                                        mean_defects / spec.cluster_alpha));

        // Scatter defects between RAM and logic; within the RAM, place
        // them on uniformly random cells and test repairability.
        bool logic_hit = false;
        bool spare_hit = false;
        std::set<std::uint32_t> faulty_words;
        for (std::int64_t d = 0; d < k; ++d) {
          if (!rng.chance(spec.ram_fraction)) {
            logic_hit = true;
            continue;
          }
          const int cell_row = static_cast<int>(rng.below(ram_rows));
          const int cell_col = static_cast<int>(rng.below(ram_cols));
          if (cell_row >= spec.ram_geo.rows()) {
            spare_hit = true;
            continue;
          }
          const std::uint32_t addr =
              static_cast<std::uint32_t>(cell_row) *
                  static_cast<std::uint32_t>(spec.ram_geo.bpc) +
              static_cast<std::uint32_t>(cell_col % spec.ram_geo.bpc);
          faulty_words.insert(addr);
        }

        DieState state;
        if (k == 0) {
          state = DieState::Good;
          out.good = 1;
        } else if (logic_hit || spare_hit ||
                   static_cast<int>(faulty_words.size()) > spare_words) {
          state = DieState::Bad;
          out.bad = 1;
        } else {
          state = DieState::Repaired;
          out.repaired = 1;
        }
        result.map[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
            state;
        return out;
      },
      [](Counts a, Counts b) {
        return Counts{a.total + b.total, a.good + b.good,
                      a.repaired + b.repaired, a.bad + b.bad};
      });
  result.dies_total = counts.total;
  result.good = counts.good;
  result.repaired = counts.repaired;
  result.bad = counts.bad;
  return result;
}

namespace {

/// One die's defect trial: scatters `k` defects (drawn when k < 0, as in
/// simulate_wafer's per-die body) between the embedded RAM and the rest
/// of the chip, and classifies the die. Returns the classification plus
/// the count actually drawn.
struct DieTrial {
  DieState state = DieState::Good;
  std::int64_t defects = 0;
};

DieTrial run_die_trial(Rng& rng, const WaferSpec& spec, double mean_defects,
                       std::int64_t fixed_k) {
  const int spare_words = spec.ram_geo.spare_words();
  const std::uint64_t ram_rows =
      static_cast<std::uint64_t>(spec.ram_geo.total_rows());
  const std::uint64_t ram_cols =
      static_cast<std::uint64_t>(spec.ram_geo.cols());

  DieTrial trial;
  trial.defects =
      fixed_k >= 0
          ? fixed_k
          : (mean_defects <= 0.0
                 ? 0
                 : poisson_sample(
                       rng, gamma_sample(rng, spec.cluster_alpha,
                                         mean_defects / spec.cluster_alpha)));

  bool logic_hit = false;
  bool spare_hit = false;
  std::set<std::uint32_t> faulty_words;
  for (std::int64_t d = 0; d < trial.defects; ++d) {
    if (!rng.chance(spec.ram_fraction)) {
      logic_hit = true;
      continue;
    }
    const int cell_row = static_cast<int>(rng.below(ram_rows));
    const int cell_col = static_cast<int>(rng.below(ram_cols));
    if (cell_row >= spec.ram_geo.rows()) {
      spare_hit = true;
      continue;
    }
    const std::uint32_t addr =
        static_cast<std::uint32_t>(cell_row) *
            static_cast<std::uint32_t>(spec.ram_geo.bpc) +
        static_cast<std::uint32_t>(cell_col % spec.ram_geo.bpc);
    faulty_words.insert(addr);
  }

  if (trial.defects == 0) {
    trial.state = DieState::Good;
  } else if (logic_hit || spare_hit ||
             static_cast<int>(faulty_words.size()) > spare_words) {
    trial.state = DieState::Bad;
  } else {
    trial.state = DieState::Repaired;
  }
  return trial;
}

/// Usable (fully inside the circle) dies on one physical wafer.
int usable_dies(const WaferSpec& spec) {
  const double radius = spec.wafer_mm / 2.0;
  const int cols = static_cast<int>(spec.wafer_mm / spec.die_w_mm);
  const int rows = static_cast<int>(spec.wafer_mm / spec.die_h_mm);
  int usable = 0;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double x0 = c * spec.die_w_mm - radius;
      const double y0 = r * spec.die_h_mm - radius;
      bool inside = true;
      for (double dx : {0.0, spec.die_w_mm})
        for (double dy : {0.0, spec.die_h_mm})
          if (std::hypot(x0 + dx, y0 + dy) > radius) inside = false;
      if (inside) ++usable;
    }
  }
  return usable;
}

struct StreamCounts {
  std::int64_t good = 0;
  std::int64_t saved = 0;  ///< good or repaired
  WelfordAccumulator defects;
};

/// Chunk size for a stream of `trials` die trials: grows with the trial
/// count (but never depends on the thread count, keeping the fold — and
/// so the Welford rounding — bit-identical for any BISRAM_THREADS), so
/// the engine holds at most ~4096 chunk partials regardless of how many
/// million dies stream through. Checkpoint segments MUST compute this
/// from the *full* stream length, never a segment's, or the fold
/// association (and the bits) would depend on where the checkpoints
/// landed.
std::int64_t die_chunk(std::int64_t trials) {
  return trials / 4096 > 1024 ? trials / 4096 : 1024;
}

/// Folds die trials [lo, hi) of a `chunk`-chunked stream based at
/// `base_offset`, continuing the left fold from `initial`. As long as
/// `lo` is a chunk multiple and `chunk` came from die_chunk(full
/// length), splitting a stream into segments at arbitrary boundaries
/// reproduces the uninterrupted fold bit for bit — each trial keeps its
/// absolute seed sub-stream, each chunk keeps its absolute extent, and
/// `initial` keeps the caller-side association.
StreamCounts run_die_range(const WaferSpec& spec, double mean_defects,
                           std::int64_t fixed_k,
                           const sim::CampaignSpec& campaign,
                           std::int64_t lo, std::int64_t hi,
                           std::int64_t chunk, std::uint64_t base_offset,
                           const StreamCounts& initial,
                           std::int64_t* seg_done,
                           sim::CampaignProvenance* provenance) {
  sim::CampaignSpec sub = campaign;
  sub.trials = static_cast<int>(hi - lo);
  return sim::run_campaign<StreamCounts>(
      sub, chunk, StreamCounts{},
      [&](Rng& rng, std::int64_t, sim::KernelTally&) {
        const DieTrial t = run_die_trial(rng, spec, mean_defects, fixed_k);
        StreamCounts c;
        if (t.state == DieState::Good) ++c.good;
        if (t.state != DieState::Bad) ++c.saved;
        c.defects.add(static_cast<double>(t.defects));
        return c;
      },
      [](StreamCounts a, StreamCounts b) {
        a.good += b.good;
        a.saved += b.saved;
        a.defects.merge(b.defects);
        return a;
      },
      provenance, base_offset + static_cast<std::uint64_t>(lo), seg_done,
      &initial);
}

/// Serialized form of one StreamCounts accumulator (5 payload words).
void put_counts(CheckpointWriter& w, const StreamCounts& c) {
  w.i64(c.good).i64(c.saved).i64(c.defects.count());
  w.f64(c.defects.mean()).f64(c.defects.raw_m2());
}

StreamCounts get_counts(CheckpointReader& r) {
  StreamCounts c;
  c.good = r.i64();
  c.saved = r.i64();
  const std::int64_t n = r.i64();
  const double mean = r.f64();
  const double m2 = r.f64();
  c.defects = WelfordAccumulator::restore(n, mean, m2);
  return c;
}

/// Everything the wafer campaign's bit-exact result depends on. Thread
/// count, kernel/batch (unused by die trials) and checkpoint cadence are
/// deliberately excluded: results are invariant to all of them, so a
/// checkpoint written at one cadence/thread count resumes under another.
std::uint64_t wafer_fingerprint(const WaferSpec& spec,
                                const sim::CampaignSpec& campaign) {
  Fingerprint fp;
  fp.mix_str("wafer_yield_campaign");
  fp.mix_f64(spec.wafer_mm).mix_f64(spec.die_w_mm).mix_f64(spec.die_h_mm);
  fp.mix_f64(spec.defects_per_cm2).mix_f64(spec.cluster_alpha);
  fp.mix_f64(spec.ram_fraction);
  fp.mix(spec.ram_geo.words).mix_i64(spec.ram_geo.bpw);
  fp.mix_i64(spec.ram_geo.bpc).mix_i64(spec.ram_geo.spare_rows);
  fp.mix(campaign.seed).mix_i64(campaign.trials);
  fp.mix_i64(static_cast<std::int64_t>(campaign.sampling.mode));
  fp.mix_f64(campaign.sampling.tail_mass);
  fp.mix_i64(campaign.sampling.min_stratum_trials);
  return fp.value();
}

/// Standard error of a Bernoulli mean from its success count.
double wafer_bernoulli_se(std::int64_t successes, std::int64_t n) {
  if (n < 2) return 0.0;
  const double p = static_cast<double>(successes) / static_cast<double>(n);
  return std::sqrt(p * (1.0 - p) / static_cast<double>(n - 1));
}

}  // namespace

sim::CampaignResult<WaferCampaignStats> wafer_yield_campaign(
    const WaferSpec& spec, const sim::CampaignSpec& campaign) {
  require(spec.wafer_mm > 0 && spec.die_w_mm > 0 && spec.die_h_mm > 0,
          "wafer_yield_campaign: bad dimensions");
  require(spec.ram_fraction > 0 && spec.ram_fraction < 1,
          "wafer_yield_campaign: ram_fraction must be in (0,1)");
  spec.ram_geo.validate();

  const double die_cm2 = spec.die_w_mm * spec.die_h_mm / 100.0;
  const double mean_defects = spec.defects_per_cm2 * die_cm2;

  sim::CampaignResult<WaferCampaignStats> out;
  out.provenance.seed = campaign.seed;
  out.provenance.threads = sim::resolve_campaign_threads(campaign);
  out.provenance.kernel = campaign.kernel;
  out.provenance.sampling = campaign.sampling.mode;
  out.provenance.batch = campaign.batch;
  out.value.dies = campaign.trials;
  out.value.dies_per_wafer = usable_dies(spec);

  const sim::CheckpointSpec& ck = campaign.checkpoint;
  const bool resumed = ck.resuming();
  const std::uint64_t fprint = wafer_fingerprint(spec, campaign);
  sim::CheckpointCadence cadence;
  std::int64_t run_done = 0;  // trials processed by *this* process
  auto due = [&](bool force) { return cadence.due(ck, force); };

  if (campaign.sampling.mode == sim::SamplingMode::Plain) {
    const std::int64_t total = campaign.trials;
    const std::int64_t chunk = die_chunk(total);
    const std::int64_t seg = sim::checkpoint_segment_trials(ck, chunk, total);

    StreamCounts master;
    std::int64_t done = 0;
    if (resumed) {
      CheckpointReader r(ck.resume, fprint);
      require(r.u64() == 0,
              strfmt("checkpoint: '%s' was written by a stratified "
                     "campaign; this one samples plain",
                     ck.resume.c_str()));
      done = r.i64();
      master = get_counts(r);
      require(done >= 0 && done <= total && master.defects.count() == done,
              strfmt("checkpoint: '%s' carries an inconsistent trial count",
                     ck.resume.c_str()));
    }

    auto write_ckpt = [&] {
      CheckpointWriter w(fprint);
      w.u64(0).i64(done);
      put_counts(w, master);
      w.save(ck.path);
      cadence.note_write();
      ++out.provenance.checkpoints_written;
    };

    Termination term = Termination::Completed;
    while (done < total) {
      if (campaign.cancel && campaign.cancel->stop_requested()) {
        term = campaign.cancel->stop_reason();
        break;
      }
      if (ck.pause_after > 0 && run_done >= ck.pause_after) {
        if (due(true)) write_ckpt();
        term = Termination::Cancelled;
        break;
      }
      const std::int64_t hi = std::min(total, done + seg);
      const std::int64_t want = hi - done;
      std::int64_t seg_done = 0;
      master = run_die_range(spec, mean_defects, /*fixed_k=*/-1, campaign,
                             done, hi, chunk, /*base_offset=*/0, master,
                             &seg_done, &out.provenance);
      done += seg_done;
      run_done += seg_done;
      if (seg_done < want) {  // token fired mid-segment: partial fold only
        term = campaign.cancel ? campaign.cancel->stop_reason()
                               : Termination::Cancelled;
        break;
      }
      if (due(done == total)) write_ckpt();
    }
    if (done >= total)
      term = resumed ? Termination::Resumed : Termination::Completed;

    const std::int64_t n = master.defects.count();
    out.value.yield_without_bisr =
        n ? static_cast<double>(master.good) / static_cast<double>(n) : 0.0;
    out.value.yield_without_bisr_se = wafer_bernoulli_se(master.good, n);
    out.value.yield_with_bisr =
        n ? static_cast<double>(master.saved) / static_cast<double>(n) : 0.0;
    out.value.yield_with_bisr_se = wafer_bernoulli_se(master.saved, n);
    out.value.mean_defects_per_die = master.defects.mean();
    out.value.mean_defects_per_die_se = master.defects.std_error();
    out.value.die_sims = n;
    out.provenance.trials = total;
    out.provenance.trials_done = n;
    out.termination = term;
    return out;
  }

  // Stratified importance sampling over the die defect count. The zero
  // stratum is the entire without-BISR yield (a die is Good iff it has
  // zero defects), so that estimate is exact; only the with-BISR rescue
  // probability needs conditional simulation. Each stratum's defect
  // count is pinned, so the reweighted mean-defects estimate is a
  // deterministic sum with zero standard error; the truncated tail
  // counts as Bad and contributes zero defect mass (bias bounded by
  // tail_mass * k_max, far below visibility at the default).
  //
  // Checkpoints record (current stratum, trials into it, its partial
  // accumulator, the saved-count of every finished stratum). The plan
  // itself is a deterministic function of fingerprinted inputs, so it is
  // recomputed, never stored.
  const sim::StrataPlan plan = sim::plan_strata(
      mean_defects, spec.cluster_alpha, campaign.trials, campaign.sampling);
  std::vector<sim::StratumCount> saved(plan.strata.size(),
                                       sim::StratumCount{0, 0});
  std::vector<sim::StratumMoments> defects;
  for (const sim::Stratum& st : plan.strata)
    defects.push_back({static_cast<double>(st.defects), 0.0, st.trials});

  std::size_t s0 = 0;
  std::int64_t done0 = 0;  // trials into stratum s0 at resume
  StreamCounts cur0;
  if (resumed) {
    CheckpointReader r(ck.resume, fprint);
    require(r.u64() == 1,
            strfmt("checkpoint: '%s' was written by a plain campaign; "
                   "this one samples stratified",
                   ck.resume.c_str()));
    s0 = static_cast<std::size_t>(r.i64());
    done0 = r.i64();
    cur0 = get_counts(r);
    require(s0 <= plan.strata.size(),
            strfmt("checkpoint: '%s' names a stratum past the plan",
                   ck.resume.c_str()));
    require(done0 >= 0 && cur0.defects.count() == done0 &&
                (s0 == plan.strata.size()
                     ? done0 == 0
                     : done0 <= plan.strata[s0].trials),
            strfmt("checkpoint: '%s' carries an inconsistent trial count",
                   ck.resume.c_str()));
    for (std::size_t i = 0; i < s0; ++i)
      saved[i] = {r.i64(), plan.strata[i].trials};
  }

  std::int64_t total_done = done0;
  for (std::size_t i = 0; i < s0; ++i) total_done += plan.strata[i].trials;

  Termination term = Termination::Completed;
  std::size_t s = s0;
  std::int64_t done = done0;
  StreamCounts master = cur0;

  auto write_ckpt = [&] {
    CheckpointWriter w(fprint);
    w.u64(1).i64(static_cast<std::int64_t>(s)).i64(done);
    put_counts(w, master);
    for (std::size_t i = 0; i < s; ++i) w.i64(saved[i].successes);
    w.save(ck.path);
    cadence.note_write();
    ++out.provenance.checkpoints_written;
  };

  bool stopped = false;
  while (s < plan.strata.size() && !stopped) {
    const sim::Stratum& st = plan.strata[s];
    const std::int64_t chunk = die_chunk(st.trials);
    const std::int64_t seg =
        sim::checkpoint_segment_trials(ck, chunk, st.trials);
    while (done < st.trials) {
      if (campaign.cancel && campaign.cancel->stop_requested()) {
        term = campaign.cancel->stop_reason();
        stopped = true;
        break;
      }
      if (ck.pause_after > 0 && run_done >= ck.pause_after) {
        if (due(true)) write_ckpt();
        term = Termination::Cancelled;
        stopped = true;
        break;
      }
      const std::int64_t hi = std::min<std::int64_t>(st.trials, done + seg);
      const std::int64_t want = hi - done;
      std::int64_t seg_done = 0;
      master = run_die_range(spec, mean_defects, st.defects, campaign, done,
                             hi, chunk, sim::stratum_stream_offset(s), master,
                             &seg_done, &out.provenance);
      done += seg_done;
      run_done += seg_done;
      total_done += seg_done;
      if (seg_done < want) {
        term = campaign.cancel ? campaign.cancel->stop_reason()
                               : Termination::Cancelled;
        stopped = true;
        break;
      }
      if (done < st.trials && due(false)) write_ckpt();
    }
    saved[s] = {master.saved, done};  // partial counts stay valid
    if (!stopped) {
      ++s;
      done = 0;
      master = StreamCounts{};
      // Boundary between strata is also a resumable boundary.
      if (due(s == plan.strata.size())) write_ckpt();
    }
  }
  if (!stopped) term = resumed ? Termination::Resumed : Termination::Completed;

  out.value.yield_without_bisr = plan.zero_probability;
  out.value.yield_without_bisr_se = 0.0;
  const sim::WeightedEstimate with_bisr = sim::combine_strata_bernoulli(
      plan, saved, /*zero_value=*/1.0, /*tail_value=*/0.0);
  out.value.yield_with_bisr = with_bisr.value;
  out.value.yield_with_bisr_se = with_bisr.std_error;
  const sim::WeightedEstimate mean_k =
      sim::combine_strata(plan, defects, 0.0, 0.0);
  out.value.mean_defects_per_die = mean_k.value;
  out.value.mean_defects_per_die_se = mean_k.std_error;
  out.value.die_sims = total_done;
  out.provenance.strata = static_cast<std::int64_t>(plan.strata.size());
  out.provenance.trials = plan.total_trials();
  out.provenance.trials_done = total_done;
  out.termination = term;
  return out;
}

std::string render_wafer(const WaferResult& result) {
  std::string out;
  for (const auto& row : result.map) {
    for (DieState s : row) {
      switch (s) {
        case DieState::OffWafer: out += ' '; break;
        case DieState::Good: out += 'O'; break;
        case DieState::Repaired: out += 'R'; break;
        case DieState::Bad: out += 'X'; break;
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace bisram::models
