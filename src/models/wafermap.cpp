#include "models/wafermap.hpp"

#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace bisram::models {

WaferResult simulate_wafer(const WaferSpec& spec, std::uint64_t seed) {
  require(spec.wafer_mm > 0 && spec.die_w_mm > 0 && spec.die_h_mm > 0,
          "simulate_wafer: bad dimensions");
  require(spec.ram_fraction > 0 && spec.ram_fraction < 1,
          "simulate_wafer: ram_fraction must be in (0,1)");
  spec.ram_geo.validate();

  const double radius = spec.wafer_mm / 2.0;
  const int cols = static_cast<int>(spec.wafer_mm / spec.die_w_mm);
  const int rows = static_cast<int>(spec.wafer_mm / spec.die_h_mm);
  const double die_cm2 = spec.die_w_mm * spec.die_h_mm / 100.0;
  const double mean_defects = spec.defects_per_cm2 * die_cm2;

  WaferResult result;
  result.map.assign(static_cast<std::size_t>(rows),
                    std::vector<DieState>(static_cast<std::size_t>(cols),
                                          DieState::OffWafer));

  const int spare_words = spec.ram_geo.spare_words();
  const std::uint64_t ram_rows =
      static_cast<std::uint64_t>(spec.ram_geo.total_rows());
  const std::uint64_t ram_cols = static_cast<std::uint64_t>(spec.ram_geo.cols());

  // Each die draws from its own grid-indexed seed sub-stream and writes
  // only its own map cell, so dies simulate concurrently with the same
  // outcome as the serial scan.
  struct Counts {
    int total = 0, good = 0, repaired = 0, bad = 0;
  };
  const Counts counts = parallel_reduce<Counts>(
      static_cast<std::int64_t>(rows) * cols, /*chunk=*/8, Counts{},
      [&](std::int64_t die) {
        const int r = static_cast<int>(die / cols);
        const int c = static_cast<int>(die % cols);
        // Die corner coordinates relative to wafer centre.
        const double x0 = c * spec.die_w_mm - radius;
        const double y0 = r * spec.die_h_mm - radius;
        // A die is usable when all four corners are inside the circle.
        bool inside = true;
        for (double dx : {0.0, spec.die_w_mm})
          for (double dy : {0.0, spec.die_h_mm})
            if (std::hypot(x0 + dx, y0 + dy) > radius) inside = false;
        if (!inside) return Counts{};
        Counts out;
        out.total = 1;

        Rng rng(stream_seed(seed, static_cast<std::uint64_t>(die)));
        // Clustered statistics: this die's defect rate is Gamma-mixed, so
        // the count is negative-binomial with the Stapper alpha.
        const std::int64_t k =
            mean_defects <= 0.0
                ? 0
                : poisson_sample(
                      rng, gamma_sample(rng, spec.cluster_alpha,
                                        mean_defects / spec.cluster_alpha));

        // Scatter defects between RAM and logic; within the RAM, place
        // them on uniformly random cells and test repairability.
        bool logic_hit = false;
        bool spare_hit = false;
        std::set<std::uint32_t> faulty_words;
        for (std::int64_t d = 0; d < k; ++d) {
          if (!rng.chance(spec.ram_fraction)) {
            logic_hit = true;
            continue;
          }
          const int cell_row = static_cast<int>(rng.below(ram_rows));
          const int cell_col = static_cast<int>(rng.below(ram_cols));
          if (cell_row >= spec.ram_geo.rows()) {
            spare_hit = true;
            continue;
          }
          const std::uint32_t addr =
              static_cast<std::uint32_t>(cell_row) *
                  static_cast<std::uint32_t>(spec.ram_geo.bpc) +
              static_cast<std::uint32_t>(cell_col % spec.ram_geo.bpc);
          faulty_words.insert(addr);
        }

        DieState state;
        if (k == 0) {
          state = DieState::Good;
          out.good = 1;
        } else if (logic_hit || spare_hit ||
                   static_cast<int>(faulty_words.size()) > spare_words) {
          state = DieState::Bad;
          out.bad = 1;
        } else {
          state = DieState::Repaired;
          out.repaired = 1;
        }
        result.map[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
            state;
        return out;
      },
      [](Counts a, Counts b) {
        return Counts{a.total + b.total, a.good + b.good,
                      a.repaired + b.repaired, a.bad + b.bad};
      });
  result.dies_total = counts.total;
  result.good = counts.good;
  result.repaired = counts.repaired;
  result.bad = counts.bad;
  return result;
}

std::string render_wafer(const WaferResult& result) {
  std::string out;
  for (const auto& row : result.map) {
    for (DieState s : row) {
      switch (s) {
        case DieState::OffWafer: out += ' '; break;
        case DieState::Good: out += 'O'; break;
        case DieState::Repaired: out += 'R'; break;
        case DieState::Bad: out += 'X'; break;
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace bisram::models
