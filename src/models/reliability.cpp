#include "models/reliability.hpp"

#include <cmath>

#include "util/math.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace bisram::models {

namespace {
/// Number of successes in `n` Bernoulli(q) draws, sampled with geometric
/// gaps between successes: O(successes) expected work instead of O(n),
/// which matters because realistic word-failure probabilities are tiny.
std::int64_t binomial_count(Rng& rng, std::int64_t n, double q) {
  if (q <= 0.0 || n <= 0) return 0;
  if (q >= 1.0) return n;
  const double log1mq = std::log1p(-q);
  std::int64_t count = 0;
  std::int64_t pos = 0;
  for (;;) {
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    // Gap to the next success: floor(log(u) / log(1-q)).
    const double gap = std::floor(std::log(u) / log1mq);
    if (gap >= static_cast<double>(n - pos)) return count;
    pos += static_cast<std::int64_t>(gap) + 1;
    ++count;
    if (pos >= n) return count;
  }
}
}  // namespace

double word_failure_prob(int bpw, double lambda_per_hour, double t_hours) {
  require(bpw >= 1, "word_failure_prob: bpw must be >= 1");
  require(lambda_per_hour >= 0 && t_hours >= 0,
          "word_failure_prob: negative rate or time");
  return 1.0 - std::exp(-static_cast<double>(bpw) * lambda_per_hour * t_hours);
}

double reliability(const sim::RamGeometry& geo, double lambda_per_hour,
                   double t_hours) {
  const double q = word_failure_prob(geo.bpw, lambda_per_hour, t_hours);
  const std::int64_t nw = static_cast<std::int64_t>(geo.words);
  const std::int64_t s = geo.spare_words();
  const double words_ok = binomial_cdf(nw, s, q);
  const double spares_ok =
      std::pow(1.0 - q, static_cast<double>(s));
  return words_ok * spares_ok;
}

sim::CampaignResult<double> reliability_mc(const sim::RamGeometry& geo,
                                           double lambda_per_hour,
                                           double t_hours,
                                           const sim::CampaignSpec& spec) {
  require(spec.kernel != sim::SimKernel::Packed,
          "reliability_mc: trial body has no RAM simulation to pack; use "
          "kernel=auto or kernel=scalar");
  const double q = word_failure_prob(geo.bpw, lambda_per_hour, t_hours);
  const std::int64_t nw = static_cast<std::int64_t>(geo.words);
  const std::int64_t s = geo.spare_words();
  require(!spec.checkpoint.enabled() && !spec.checkpoint.resuming(),
          "reliability_mc: checkpointing is not supported here — use "
          "cancel/deadline for bounded runs");
  sim::CampaignResult<double> out;
  std::int64_t done = 0;
  const int alive = sim::run_campaign<int>(
      spec, /*chunk=*/64, 0,
      [&](Rng& rng, std::int64_t, sim::KernelTally&) {
        const std::int64_t failed_regular = binomial_count(rng, nw, q);
        if (failed_regular > s) return 0;
        const std::int64_t failed_spares = binomial_count(rng, s, q);
        return failed_spares == 0 ? 1 : 0;
      },
      [](int a, int b) { return a + b; }, &out.provenance,
      /*stream_offset=*/0, &done);
  out.value =
      done ? static_cast<double>(alive) / static_cast<double>(done) : 0.0;
  out.termination =
      sim::resolve_termination(done, spec.trials, spec.cancel, false);
  return out;
}

double mttf_hours(const sim::RamGeometry& geo, double lambda_per_hour) {
  require(lambda_per_hour > 0, "mttf_hours: rate must be positive");
  // R(t) decays on the scale where E[failed words] ~ spares. Find a
  // horizon where R is negligible by doubling, then integrate the
  // bounded interval (a naive improper quadrature wastes millions of
  // evaluations hunting for the knee).
  auto r = [&](double t) { return reliability(geo, lambda_per_hour, t); };
  double horizon = 1.0 / (static_cast<double>(geo.bpw) * lambda_per_hour *
                          std::max<double>(geo.words, 1));
  while (r(horizon) > 1e-9) horizon *= 2.0;
  return integrate(r, 0.0, horizon, 1e-6 * horizon);
}

std::vector<ReliabilityPoint> reliability_curve(sim::RamGeometry geo,
                                                int spare_rows,
                                                double lambda_per_hour,
                                                double max_hours, int points) {
  require(points >= 2, "reliability_curve: needs >= 2 points");
  geo.spare_rows = spare_rows;
  geo.validate();
  std::vector<ReliabilityPoint> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double t = max_hours * i / (points - 1);
    out.push_back({t, reliability(geo, lambda_per_hour, t)});
  }
  return out;
}

double reliability_crossover_hours(sim::RamGeometry geo, int s1, int s2,
                                   double lambda_per_hour, double max_hours) {
  require(s2 > s1, "reliability_crossover_hours: s2 must exceed s1");
  sim::RamGeometry g1 = geo, g2 = geo;
  g1.spare_rows = s1;
  g2.spare_rows = s2;
  auto diff = [&](double t) {
    return reliability(g2, lambda_per_hour, t) -
           reliability(g1, lambda_per_hour, t);
  };
  // At t = 0+ the larger-spare module is *less* reliable (more spare
  // cells to keep alive); scan for the sign change then bisect.
  const int scan = 2048;
  double lo = 0.0;
  double prev = diff(max_hours / scan);
  for (int i = 2; i <= scan; ++i) {
    const double t = max_hours * i / scan;
    const double d = diff(t);
    if (prev < 0.0 && d >= 0.0) {
      lo = max_hours * (i - 1) / scan;
      double hi = t;
      for (int it = 0; it < 60; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (diff(mid) < 0.0)
          lo = mid;
        else
          hi = mid;
      }
      return 0.5 * (lo + hi);
    }
    prev = d;
  }
  return -1.0;
}

}  // namespace bisram::models
