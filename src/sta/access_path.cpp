#include "sta/access_path.hpp"

#include <algorithm>
#include <cmath>

#include "cells/leaf_cells.hpp"
#include "util/math.hpp"
#include "util/strings.hpp"

namespace bisram::sta {

namespace {

constexpr double kLn2 = 0.6931471805599453;
/// 10% swing crossing of an RC discharge: t = -ln(0.9) * tau. This is
/// where current-mode sensing gets its speed — the read bit line only
/// has to move a tenth of the rail.
constexpr double kSwing = 0.10536051565782628;

/// Coarsening caps: the ladders stay Elmore-exact for total delay when
/// segments are merged (first moment is preserved), so these bound graph
/// size without biasing the numbers.
constexpr int kMaxWlSegments = 64;
constexpr int kMaxBlSegments = 32;

}  // namespace

TimingGraph build_access_graph(const tech::Tech& t,
                               const sim::RamGeometry& geo,
                               double gate_size) {
  const int row_bits =
      std::max(1, log2_ceil(static_cast<std::uint64_t>(geo.rows())));
  return build_access_graph(t, geo, gate_size,
                            characterize(t, gate_size, row_bits));
}

TimingGraph build_access_graph(const tech::Tech& t,
                               const sim::RamGeometry& geo, double gate_size,
                               const LeafTiming& lt) {
  const int row_bits =
      std::max(1, log2_ceil(static_cast<std::uint64_t>(geo.rows())));
  const double lam = t.lambda_um;
  const double pitch_um = cells::kCellPitchLambda * lam;
  const auto& m1 = t.elec.wire[static_cast<std::size_t>(geom::Layer::Metal1)];
  const auto& m2 = t.elec.wire[static_cast<std::size_t>(geom::Layer::Metal2)];
  // Word line: poly strapped in metal1 (4 lambda wide), one strap pitch
  // per cell. Bit line: metal2, 3 lambda wide, full column height.
  const double r_wl_per_cell = m1.sheet_ohm * pitch_um / (4.0 * lam);
  const double r_bl_per_cell = m2.sheet_ohm * pitch_um / (3.0 * lam);
  const double c_wl_per_cell = wordline_cap_per_cell_f(t);
  const double c_bl_per_cell = bitline_cap_per_cell_f(t);

  const int cols = geo.cols();
  const int rows = geo.total_rows();
  const int bpw = geo.bpw;
  const int bpc = geo.bpc;

  TimingGraph g;
  const int addr = g.add_source("addr");
  const int din = g.add_source("din");

  // Decoder: the leaf-characterized row-decoder slice (NAND tree plus
  // word-line driver), one fixed-delay stage.
  const int dec = g.add_node("wldrv_in");
  g.add_delay(addr, dec, lt.decoder_s,
              strfmt("decoder/row_decoder[%d]", row_bits));

  // Word line: driver resistance against the distributed line, coarsened
  // to at most kMaxWlSegments RC segments.
  const int wl_segs = std::min(kMaxWlSegments, cols);
  const double cells_per_wseg = static_cast<double>(cols) / wl_segs;
  std::vector<int> wl_node(static_cast<std::size_t>(wl_segs));
  for (int s = 0; s < wl_segs; ++s)
    wl_node[static_cast<std::size_t>(s)] = g.add_node(
        strfmt("wl_seg%d", s), cells_per_wseg * c_wl_per_cell);
  g.add_gate(dec, wl_node[0], kLn2 * lt.wl_driver_r_ohm, "wordline/driver");
  for (int s = 1; s < wl_segs; ++s)
    g.add_wire(wl_node[static_cast<std::size_t>(s - 1)],
               wl_node[static_cast<std::size_t>(s)],
               kLn2 * cells_per_wseg * r_wl_per_cell,
               strfmt("wordline/seg[%d]", s));

  // Per data bit: the worst column of the bit's bpc-column group (the
  // one farthest along the word line), its bit-line ladder, column mux,
  // and sense amp; plus the write path into the same column's cell.
  const int bl_segs = std::min(kMaxBlSegments, rows);
  const double cells_per_bseg = static_cast<double>(rows) / bl_segs;
  for (int b = 0; b < bpw; ++b) {
    const int col = (b + 1) * bpc - 1;  // worst column of this bit
    const int tap = std::min(wl_segs - 1, static_cast<int>(
        (static_cast<double>(col) + 0.5) * wl_segs / cols));

    // Read: the selected cell discharges the bit line through its
    // pull-down and pass device; current-mode sensing needs only a 10%
    // swing, so every resistance on the discharge path carries the
    // -ln(0.9) crossing factor.
    std::vector<int> bl(static_cast<std::size_t>(bl_segs));
    for (int s = 0; s < bl_segs; ++s)
      bl[static_cast<std::size_t>(s)] = g.add_node(
          strfmt("b%d_bl%d", b, s), cells_per_bseg * c_bl_per_cell);
    g.add_gate(wl_node[static_cast<std::size_t>(tap)], bl[0],
               kSwing * lt.cell_r_ohm, strfmt("col[%d]/cell", col));
    for (int s = 1; s < bl_segs; ++s)
      g.add_wire(bl[static_cast<std::size_t>(s - 1)],
                 bl[static_cast<std::size_t>(s)],
                 kSwing * cells_per_bseg * r_bl_per_cell,
                 strfmt("col[%d]/bitline/seg[%d]", col, s));
    // Column mux pass device into the sense-amp input bus (the bus stub
    // spans the bit's bpc columns in metal1).
    const int sa_in = g.add_node(strfmt("b%d_sain", b),
                                 bpc * pitch_um * (3.0 * lam) *
                                         m1.cap_area_f_um2 +
                                     2.0 * bpc * pitch_um * m1.cap_fringe_f_um);
    g.add_wire(bl[static_cast<std::size_t>(bl_segs - 1)], sa_in,
               kSwing * lt.mux_r_ohm, strfmt("col[%d]/mux", col));
    const int dout = g.add_endpoint(strfmt("dout[%d]", b));
    g.add_delay(sa_in, dout, lt.senseamp_s, strfmt("dout[%d]/senseamp", b));

    // Write: the write driver forces a full swing through the mux and
    // down the bit line; the cell accepts the data once the word line
    // has also arrived — the arrival max at cell[b] models exactly that.
    const int wdrv = g.add_node(strfmt("b%d_wdrv", b));
    g.add_delay(din, wdrv, lt.write_driver_s,
                strfmt("dout[%d]/write_driver", b));
    std::vector<int> wbl(static_cast<std::size_t>(bl_segs));
    for (int s = 0; s < bl_segs; ++s)
      wbl[static_cast<std::size_t>(s)] = g.add_node(
          strfmt("b%d_wbl%d", b, s), cells_per_bseg * c_bl_per_cell);
    g.add_gate(wdrv, wbl[0], kLn2 * (lt.write_r_ohm + lt.mux_r_ohm),
               strfmt("col[%d]/write_path", col));
    for (int s = 1; s < bl_segs; ++s)
      g.add_wire(wbl[static_cast<std::size_t>(s - 1)],
                 wbl[static_cast<std::size_t>(s)],
                 kLn2 * cells_per_bseg * r_bl_per_cell,
                 strfmt("col[%d]/wbitline/seg[%d]", col, s));
    const int cell = g.add_endpoint(strfmt("cell[%d]", b));
    g.add_wire(wbl[static_cast<std::size_t>(bl_segs - 1)], cell, 0.0,
               strfmt("col[%d]/wbitline/far", col));
    g.add_delay(wl_node[static_cast<std::size_t>(tap)], cell, 0.0,
                strfmt("col[%d]/wordline_select", col));
  }
  return g;
}

AccessTiming analyze_access_path(const tech::Tech& t,
                                 const sim::RamGeometry& geo,
                                 double gate_size,
                                 const AnalyzeOptions& options) {
  const int row_bits =
      std::max(1, log2_ceil(static_cast<std::uint64_t>(geo.rows())));
  return analyze_access_path(t, geo, gate_size,
                             characterize(t, gate_size, row_bits), options);
}

AccessTiming analyze_access_path(const tech::Tech& t,
                                 const sim::RamGeometry& geo, double gate_size,
                                 const LeafTiming& lt,
                                 const AnalyzeOptions& options) {
  const TimingGraph g = build_access_graph(t, geo, gate_size, lt);
  AnalyzeOptions opt = options;
  if (opt.k_paths < 1) opt.k_paths = 1;
  AccessTiming at;
  at.report = g.analyze(opt);
  at.tau_s = lt.tau_s;

  // Worst endpoint arrivals by kind.
  for (const EndpointSlack& e : at.report.endpoints) {
    if (e.name.rfind("dout[", 0) == 0)
      at.access_s = std::max(at.access_s, e.arrival_s);
    else
      at.write_s = std::max(at.write_s, e.arrival_s);
  }

  // Split the worst read path into the classic datasheet breakdown by
  // arc tag. The worst path over dout endpoints is the first worst_paths
  // entry whose endpoint is a dout (paths are sorted by slack, and read
  // and write share the clock, so it is usually the first entry).
  const CriticalPath* read_path = nullptr;
  for (const CriticalPath& p : at.report.worst_paths)
    if (p.endpoint.rfind("dout[", 0) == 0) {
      read_path = &p;
      break;
    }
  StaReport full;
  if (!read_path) {
    // The carried worst paths are all write endpoints; trace everything
    // once (cheap on this graph) to find the worst read path.
    AnalyzeOptions all = opt;
    all.k_paths = static_cast<int>(at.report.endpoint_count);
    full = g.analyze(all);
    for (const CriticalPath& p : full.worst_paths)
      if (p.endpoint.rfind("dout[", 0) == 0) {
        read_path = &p;
        break;
      }
  }
  if (read_path) {
    for (const PathStep& s : read_path->steps) {
      if (s.tag.rfind("decoder", 0) == 0)
        at.decoder_s += s.incr_s;
      else if (s.tag.rfind("wordline", 0) == 0)
        at.wordline_s += s.incr_s;
      else if (s.tag.find("senseamp") != std::string::npos)
        at.senseamp_s += s.incr_s;
      else
        at.bitline_s += s.incr_s;  // cell, bitline segments, mux
    }
  } else {
    at.decoder_s = lt.decoder_s;
    at.senseamp_s = lt.senseamp_s;
  }
  return at;
}

}  // namespace bisram::sta
