#include "sta/netlist.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <set>

#include "extract/simulate.hpp"
#include "spice/sizing.hpp"

namespace bisram::sta {

namespace {

constexpr double kLn2 = 0.6931471805599453;

// Matches the stability floor extract::to_circuit adds per net, so the
// STA loads exactly the circuit the transient engine integrates.
constexpr double kCapFloorF = 0.2e-15;

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(int n) : parent(static_cast<std::size_t>(n)) {
    for (int i = 0; i < n; ++i) parent[static_cast<std::size_t>(i)] = i;
  }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
  }
};

/// Minimum-resistance channel path from `from` to any net in `targets`,
/// over the device set `devs` (indices into ex.devices). Returns the
/// Elmore sum along that path walked supply-to-`from` (upstream
/// resistance times node cap at every non-supply net), or a negative
/// value when no target is reachable. Deterministic: the priority queue
/// breaks resistance ties on net id.
double elmore_to_supply(const extract::Extracted& ex, const tech::Tech& tech,
                        const std::vector<double>& node_cap,
                        const std::vector<char>& is_supply,
                        const std::vector<int>& devs, int from,
                        const std::vector<char>& target) {
  std::map<int, double> dist;
  std::map<int, int> prev_dev;  // net -> device index used to reach it
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  dist[from] = 0;
  pq.push({0.0, from});
  int hit = -1;
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    auto it = dist.find(u);
    if (it == dist.end() || d > it->second) continue;
    if (target[static_cast<std::size_t>(u)]) {
      hit = u;
      break;
    }
    for (int di : devs) {
      const extract::Device& dev = ex.devices[static_cast<std::size_t>(di)];
      int v = -1;
      if (dev.source == u)
        v = dev.drain;
      else if (dev.drain == u)
        v = dev.source;
      else
        continue;
      const double r =
          spice::device_on_resistance(tech, dev.type, dev.w_um);
      const double nd = d + r;
      auto dv = dist.find(v);
      if (dv == dist.end() || nd < dv->second) {
        dist[v] = nd;
        prev_dev[v] = di;
        pq.push({nd, v});
      }
    }
  }
  if (hit < 0) return -1.0;

  // Reconstruct the path supply -> from and accumulate the Elmore sum:
  // at each net, the total channel resistance between it and the supply
  // times the capacitance hanging on it.
  std::vector<int> path;  // nets from `hit` (supply) back to `from`
  for (int u = hit; u != from;) {
    path.push_back(u);
    const extract::Device& dev =
        ex.devices[static_cast<std::size_t>(prev_dev.at(u))];
    u = dev.source == u ? dev.drain : dev.source;
  }
  path.push_back(from);
  // path = [supply, ..., from]; walk it accumulating resistance.
  double acc_r = 0;
  double elmore = 0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    const int u = path[i];
    const int pu = path[i - 1];
    // Resistance of the device between path[i-1] and path[i]: it is the
    // one recorded as reaching path[i-1] from path[i] during the search.
    const extract::Device& dev =
        ex.devices[static_cast<std::size_t>(prev_dev.at(pu))];
    acc_r += spice::device_on_resistance(tech, dev.type, dev.w_um);
    if (!is_supply[static_cast<std::size_t>(u)])
      elmore += acc_r * node_cap[static_cast<std::size_t>(u)];
  }
  return elmore;
}

}  // namespace

NetlistGraph from_extracted(const extract::Extracted& ex,
                            const tech::Tech& tech,
                            const std::vector<std::string>& inputs,
                            const std::vector<std::string>& outputs) {
  NetlistGraph result;
  const int n = ex.net_count;

  // Supply nets: the vdd/gnd ports and everything wired to them.
  std::vector<char> is_vdd(static_cast<std::size_t>(n), 0);
  std::vector<char> is_gnd(static_cast<std::size_t>(n), 0);
  for (const auto& [name, net] : ex.port_net) {
    if (name == "vdd") is_vdd[static_cast<std::size_t>(net)] = 1;
    if (name == "gnd") is_gnd[static_cast<std::size_t>(net)] = 1;
  }
  std::vector<char> is_supply(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i)
    is_supply[static_cast<std::size_t>(i)] =
        is_vdd[static_cast<std::size_t>(i)] | is_gnd[static_cast<std::size_t>(i)];

  // Node capacitance per net: the circuit the transient engine sees.
  std::vector<double> node_cap(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i)
    node_cap[static_cast<std::size_t>(i)] =
        ex.net_cap_f[static_cast<std::size_t>(i)] + kCapFloorF;

  // Channel-connected components over non-supply nets.
  UnionFind uf(n);
  for (const extract::Device& d : ex.devices)
    if (!is_supply[static_cast<std::size_t>(d.source)] &&
        !is_supply[static_cast<std::size_t>(d.drain)])
      uf.unite(d.source, d.drain);

  // Group devices by the CCC they belong to (the CCC of their non-supply
  // channel terminal; a device bridging two supplies carries no timing).
  std::map<int, std::vector<int>> stage_devs;  // CCC root -> device indices
  for (std::size_t di = 0; di < ex.devices.size(); ++di) {
    const extract::Device& d = ex.devices[di];
    int member = -1;
    if (!is_supply[static_cast<std::size_t>(d.source)])
      member = d.source;
    else if (!is_supply[static_cast<std::size_t>(d.drain)])
      member = d.drain;
    if (member >= 0)
      stage_devs[uf.find(member)].push_back(static_cast<int>(di));
  }
  result.stage_count = static_cast<int>(stage_devs.size());

  // One graph node per non-supply net.
  result.net_node.assign(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    if (is_supply[static_cast<std::size_t>(i)]) continue;
    result.net_node[static_cast<std::size_t>(i)] = result.graph.add_node(
        extract::node_name(ex, i), node_cap[static_cast<std::size_t>(i)]);
  }

  // Nets that gate at least one device: stage outputs that drive logic.
  std::vector<char> gates_something(static_cast<std::size_t>(n), 0);
  for (const extract::Device& d : ex.devices)
    gates_something[static_cast<std::size_t>(d.gate)] = 1;
  std::vector<char> is_output_port(static_cast<std::size_t>(n), 0);
  for (const std::string& name : outputs) {
    auto it = ex.port_net.find(name);
    require(it != ex.port_net.end(),
            "sta: output port '" + name + "' not found in extracted cell");
    is_output_port[static_cast<std::size_t>(it->second)] = 1;
  }

  // Per CCC (in canonical root order): every gate-input drives every
  // stage output with the worst-path Elmore delay. The arc order is a
  // pure function of the netlist, which makes loop breaking
  // deterministic.
  for (const auto& [root, devs] : stage_devs) {
    // Member nets of this CCC, sorted.
    std::set<int> members;
    for (int di : devs) {
      const extract::Device& d = ex.devices[static_cast<std::size_t>(di)];
      if (!is_supply[static_cast<std::size_t>(d.source)] &&
          uf.find(d.source) == root)
        members.insert(d.source);
      if (!is_supply[static_cast<std::size_t>(d.drain)] &&
          uf.find(d.drain) == root)
        members.insert(d.drain);
    }
    // Stage inputs: gate nets of member devices (supply-tied gates are
    // static biases, not timing inputs).
    std::set<int> stage_inputs;
    for (int di : devs) {
      const extract::Device& d = ex.devices[static_cast<std::size_t>(di)];
      if (!is_supply[static_cast<std::size_t>(d.gate)])
        stage_inputs.insert(d.gate);
    }
    // Stage outputs: member nets that gate logic elsewhere or are
    // requested output ports.
    std::vector<int> stage_outputs;
    for (int m : members)
      if (gates_something[static_cast<std::size_t>(m)] ||
          is_output_port[static_cast<std::size_t>(m)])
        stage_outputs.push_back(m);

    for (int o : stage_outputs) {
      // Worst of the pull-up and pull-down Elmore paths to a supply.
      const double up =
          elmore_to_supply(ex, tech, node_cap, is_supply, devs, o, is_vdd);
      const double down =
          elmore_to_supply(ex, tech, node_cap, is_supply, devs, o, is_gnd);
      const double elmore = std::max(up, down);
      if (elmore < 0) continue;  // floating structure (e.g. isolated pass)
      const double delay = kLn2 * elmore;
      // r chosen so the Gate arc reproduces `delay` against the node's
      // cap and carries the matching slew estimate.
      const double cap = result.graph.subtree_cap_f(
          result.net_node[static_cast<std::size_t>(o)]);
      const double r = delay / cap;
      for (int i : stage_inputs) {
        if (i == o) continue;
        const int from = result.net_node[static_cast<std::size_t>(i)];
        const int to = result.net_node[static_cast<std::size_t>(o)];
        // Provenance: the first member device this input gates.
        std::string tag;
        for (int di : devs) {
          const extract::Device& d = ex.devices[static_cast<std::size_t>(di)];
          if (d.gate == i) {
            tag = d.path.empty() ? "<top>" : d.path;
            break;
          }
        }
        if (result.graph.would_cycle(from, to)) {
          result.broken_loops.push_back(tag + ": " +
                                        result.graph.node(from).name + " -> " +
                                        result.graph.node(to).name);
          continue;
        }
        result.graph.add_gate(from, to, r, std::move(tag));
      }
    }
  }

  // Sources and endpoints.
  for (const std::string& name : inputs) {
    auto it = ex.port_net.find(name);
    require(it != ex.port_net.end(),
            "sta: input port '" + name + "' not found in extracted cell");
    const int node = result.net_node[static_cast<std::size_t>(it->second)];
    require(node >= 0, "sta: input port '" + name + "' is a supply net");
    result.graph.set_source(node);
  }
  for (const std::string& name : outputs) {
    const int node =
        result.net_node[static_cast<std::size_t>(ex.port_net.at(name))];
    require(node >= 0, "sta: output port '" + name + "' is a supply net");
    result.graph.set_endpoint(node);
  }
  return result;
}

}  // namespace bisram::sta
