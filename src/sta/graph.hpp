#pragma once
// Static timing analysis over an explicit RC timing graph.
//
// The paper sizes its critical gates with "built-in access to SPICE
// utilities" and quotes datasheet access times, but a lumped-RC formula
// (the historical core/timing.cpp model) can only produce one number —
// it cannot say *which* instance on *which* path sets it, and it cannot
// check a clock constraint per endpoint. This module is the repo's
// signoff timing engine: a levelized DAG of electrical nodes and timing
// arcs, Elmore delay propagation for arrival times and slews, a backward
// required-time pass, per-endpoint slack, and the K worst critical paths
// with full provenance (the same instance-path scheme DRC offenders
// carry).
//
// Arc semantics (first-order switch-level model, exactly the physics the
// lumped model used, made path-explicit):
//   * Gate  — a switching stage: the driver resistance `r_ohm` charges
//     the RC tree rooted at the arc's head. delay = delay_s + r * C_net
//     where C_net is the total downstream capacitance of the head's
//     wire tree (computed once per analysis).
//   * Wire  — one segment of an RC interconnect tree: delay = r * C_sub
//     where C_sub is the capacitance at and below the head. Summing the
//     Gate term and the Wire terms along a path reproduces the Elmore
//     delay of the distributed line exactly.
//   * Delay — a fixed, pre-characterized delay (e.g. a logic stage whose
//     tau was calibrated by the SPICE engine, or a leaf-cell stage delay
//     measured on the extracted netlist).
//
// Slew is propagated alongside arrival as a first-order 10-90% estimate
// (2.2 tau for the driving stage, root-sum-square accumulation through
// wire segments); it is reported, not fed back into delay — that is the
// documented fidelity limit of the level-1 model, and the STA-vs-SPICE
// tests in tests/test_sta.cpp pin the resulting envelope.
//
// Determinism contract: analyze() results — including the rendered and
// JSON reports — are bit-identical for any thread count. Per-endpoint
// work (slack rows, path traces) is parallelized over util/parallel with
// each endpoint writing its own pre-allocated slot, and every ordering
// in the report is canonical (slack, then name).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace bisram::sta {

enum class ArcKind : std::uint8_t { Gate, Wire, Delay };

/// One electrical node (a pin or a tap of a distributed net).
struct Node {
  std::string name;
  double cap_f = 0;          ///< capacitance at this node
  bool is_source = false;    ///< arrival pinned to the launch time (0)
  bool is_endpoint = false;  ///< slack is reported here
};

/// One timing arc. `tag` is the provenance string shown in path reports
/// (an instance path for extracted devices, a block/structure label for
/// the access-path graph).
struct Arc {
  int from = -1;
  int to = -1;
  ArcKind kind = ArcKind::Delay;
  double r_ohm = 0;    ///< Gate/Wire resistance
  double delay_s = 0;  ///< fixed delay component (Delay arcs; Gate intrinsic)
  std::string tag;
};

/// One step of a critical path, head node of the arc taken.
struct PathStep {
  std::string node;   ///< node name at this step
  std::string tag;    ///< provenance of the arc into it ("" for the source)
  double incr_s = 0;  ///< delay of that arc
  double arrival_s = 0;
};

/// Slack row for one endpoint.
struct EndpointSlack {
  std::string name;
  double arrival_s = 0;
  double slew_s = 0;
  double required_s = 0;
  double slack_s = 0;
};

/// A worst path, source to endpoint.
struct CriticalPath {
  std::string endpoint;
  double arrival_s = 0;
  double required_s = 0;
  double slack_s = 0;
  std::vector<PathStep> steps;
};

struct AnalyzeOptions {
  /// Setup constraint: required time at every endpoint. <= 0 selects the
  /// unconstrained mode where the required time is the latest endpoint
  /// arrival (the critical endpoint then reports slack exactly 0 and
  /// every other endpoint its margin to it).
  double clock_period_s = 0;
  /// Worst paths carried with full step-by-step traces.
  int k_paths = 4;
  /// Worker threads for the per-endpoint pass; <= 0 means the
  /// BISRAM_THREADS / campaign_threads() default. Reports are
  /// bit-identical for every value.
  int threads = 0;
  /// Slew of the launch edge at source nodes.
  double input_slew_s = 0;
};

struct StaReport {
  double clock_period_s = 0;  ///< the constraint actually applied
  bool constrained = false;   ///< false: unconstrained (relative slack) mode
  std::size_t node_count = 0;
  std::size_t arc_count = 0;
  std::size_t endpoint_count = 0;

  double wns_s = 0;  ///< worst (most negative) endpoint slack
  double tns_s = 0;  ///< total negative slack
  double max_arrival_s = 0;  ///< latest endpoint arrival (the access time)

  /// Every endpoint, ordered by (slack ascending, name ascending).
  std::vector<EndpointSlack> endpoints;
  /// The k_paths worst endpoints' full paths, same order.
  std::vector<CriticalPath> worst_paths;

  bool setup_clean() const { return wns_s >= 0; }

  /// Multi-line human rendering (endpoint table capped at `max_rows`).
  std::string render(std::size_t max_rows = 10) const;
};

/// The timing graph. Build with add_node/add_arc; analyze() levelizes
/// and propagates. The graph must be a DAG (analyze throws
/// bisram::SpecError naming a node on a cycle otherwise); wire arcs must
/// form trees (at most one incoming wire arc per node).
class TimingGraph {
 public:
  /// Adds a node and returns its id (dense, starting at 0).
  int add_node(std::string name, double cap_f = 0);
  int add_source(std::string name, double cap_f = 0);
  int add_endpoint(std::string name, double cap_f = 0);

  void set_endpoint(int node, bool on = true);
  void set_source(int node, bool on = true);
  void add_cap(int node, double cap_f);

  /// Adds an arc; returns its id.
  int add_arc(int from, int to, ArcKind kind, double r_ohm, double delay_s,
              std::string tag);
  int add_gate(int from, int to, double r_ohm, std::string tag,
               double intrinsic_s = 0) {
    return add_arc(from, to, ArcKind::Gate, r_ohm, intrinsic_s,
                   std::move(tag));
  }
  int add_wire(int from, int to, double r_ohm, std::string tag) {
    return add_arc(from, to, ArcKind::Wire, r_ohm, 0.0, std::move(tag));
  }
  int add_delay(int from, int to, double delay_s, std::string tag) {
    return add_arc(from, to, ArcKind::Delay, 0.0, delay_s, std::move(tag));
  }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t arc_count() const { return arcs_.size(); }
  const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  const Arc& arc(int id) const { return arcs_[static_cast<std::size_t>(id)]; }

  /// True when adding from->to would close a directed cycle (used by the
  /// netlist builder to break transistor-level feedback loops the way a
  /// production STA breaks timing loops).
  bool would_cycle(int from, int to) const;

  /// Total capacitance of the wire tree rooted at `node` (the C_net a
  /// Gate arc into `node` drives). Exposed for tests and leaf
  /// characterization.
  double subtree_cap_f(int node) const;

  /// Runs the full analysis. Throws bisram::SpecError on a cyclic graph
  /// or a node with two incoming wire arcs.
  StaReport analyze(const AnalyzeOptions& options = {}) const;

 private:
  std::vector<int> topo_order() const;  ///< throws on cycles

  std::vector<Node> nodes_;
  std::vector<Arc> arcs_;
  std::vector<std::vector<int>> out_;  ///< arc ids by tail node
  std::vector<std::vector<int>> in_;   ///< arc ids by head node
};

}  // namespace bisram::sta
