#include "sta/graph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace bisram::sta {

namespace {

// 10-90% rise time of a single-pole RC response: t = RC * ln(9).
constexpr double kSlewPerTau = 2.1972245773362196;  // ln(9)

}  // namespace

int TimingGraph::add_node(std::string name, double cap_f) {
  const int id = static_cast<int>(nodes_.size());
  Node n;
  n.name = std::move(name);
  n.cap_f = cap_f;
  nodes_.push_back(std::move(n));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

int TimingGraph::add_source(std::string name, double cap_f) {
  const int id = add_node(std::move(name), cap_f);
  nodes_[static_cast<std::size_t>(id)].is_source = true;
  return id;
}

int TimingGraph::add_endpoint(std::string name, double cap_f) {
  const int id = add_node(std::move(name), cap_f);
  nodes_[static_cast<std::size_t>(id)].is_endpoint = true;
  return id;
}

void TimingGraph::set_endpoint(int node, bool on) {
  nodes_[static_cast<std::size_t>(node)].is_endpoint = on;
}

void TimingGraph::set_source(int node, bool on) {
  nodes_[static_cast<std::size_t>(node)].is_source = on;
}

void TimingGraph::add_cap(int node, double cap_f) {
  nodes_[static_cast<std::size_t>(node)].cap_f += cap_f;
}

int TimingGraph::add_arc(int from, int to, ArcKind kind, double r_ohm,
                         double delay_s, std::string tag) {
  ensure(from >= 0 && static_cast<std::size_t>(from) < nodes_.size() &&
             to >= 0 && static_cast<std::size_t>(to) < nodes_.size(),
         "sta: arc endpoints must be existing nodes");
  require(from != to, "sta: self-loop arc on node '" +
                          nodes_[static_cast<std::size_t>(from)].name + "'");
  const int id = static_cast<int>(arcs_.size());
  Arc a;
  a.from = from;
  a.to = to;
  a.kind = kind;
  a.r_ohm = r_ohm;
  a.delay_s = delay_s;
  a.tag = std::move(tag);
  arcs_.push_back(std::move(a));
  out_[static_cast<std::size_t>(from)].push_back(id);
  in_[static_cast<std::size_t>(to)].push_back(id);
  return id;
}

bool TimingGraph::would_cycle(int from, int to) const {
  if (from == to) return true;
  // DFS from `to` over existing arcs looking for `from`.
  std::vector<char> seen(nodes_.size(), 0);
  std::vector<int> stack = {to};
  seen[static_cast<std::size_t>(to)] = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    if (u == from) return true;
    for (int aid : out_[static_cast<std::size_t>(u)]) {
      const int v = arcs_[static_cast<std::size_t>(aid)].to;
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        stack.push_back(v);
      }
    }
  }
  return false;
}

std::vector<int> TimingGraph::topo_order() const {
  // Kahn's algorithm with a FIFO worklist seeded in node-id order: the
  // order is a pure function of the graph, never of thread count.
  const std::size_t n = nodes_.size();
  std::vector<int> indeg(n, 0);
  for (const Arc& a : arcs_) ++indeg[static_cast<std::size_t>(a.to)];
  std::vector<int> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    if (indeg[i] == 0) order.push_back(static_cast<int>(i));
  for (std::size_t head = 0; head < order.size(); ++head) {
    const int u = order[head];
    for (int aid : out_[static_cast<std::size_t>(u)]) {
      const int v = arcs_[static_cast<std::size_t>(aid)].to;
      if (--indeg[static_cast<std::size_t>(v)] == 0) order.push_back(v);
    }
  }
  if (order.size() != n) {
    // Name one node still on a cycle for the error message.
    for (std::size_t i = 0; i < n; ++i)
      if (indeg[i] > 0)
        throw SpecError("sta: timing graph has a cycle through node '" +
                        nodes_[i].name + "' (break the loop before analyze)");
  }
  return order;
}

double TimingGraph::subtree_cap_f(int node) const {
  // Sum node caps over the wire tree reachable from `node` via Wire arcs.
  double total = 0;
  std::vector<char> seen(nodes_.size(), 0);
  std::vector<int> stack = {node};
  seen[static_cast<std::size_t>(node)] = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    total += nodes_[static_cast<std::size_t>(u)].cap_f;
    for (int aid : out_[static_cast<std::size_t>(u)]) {
      const Arc& a = arcs_[static_cast<std::size_t>(aid)];
      if (a.kind != ArcKind::Wire) continue;
      if (!seen[static_cast<std::size_t>(a.to)]) {
        seen[static_cast<std::size_t>(a.to)] = 1;
        stack.push_back(a.to);
      }
    }
  }
  return total;
}

StaReport TimingGraph::analyze(const AnalyzeOptions& options) const {
  const std::size_t n = nodes_.size();
  const std::vector<int> order = topo_order();

  // Wire trees: at most one incoming wire arc per node, so the Elmore
  // C_sub recursion below is well defined.
  {
    std::vector<int> wire_in(n, 0);
    for (const Arc& a : arcs_)
      if (a.kind == ArcKind::Wire &&
          ++wire_in[static_cast<std::size_t>(a.to)] > 1)
        throw SpecError("sta: node '" + nodes_[static_cast<std::size_t>(a.to)].name +
                        "' has two incoming wire arcs (wire arcs must form "
                        "trees)");
  }

  // C_sub: capacitance at and below each node over its wire subtree.
  // Reverse topological accumulation — a node's wire children are later
  // in `order`, so walking `order` backwards sees them first.
  std::vector<double> c_sub(n, 0);
  for (std::size_t i = n; i-- > 0;) {
    const int u = order[i];
    double c = nodes_[static_cast<std::size_t>(u)].cap_f;
    for (int aid : out_[static_cast<std::size_t>(u)]) {
      const Arc& a = arcs_[static_cast<std::size_t>(aid)];
      if (a.kind == ArcKind::Wire) c += c_sub[static_cast<std::size_t>(a.to)];
    }
    c_sub[static_cast<std::size_t>(u)] = c;
  }

  // Per-arc delay, fixed by the graph alone (used by both passes).
  std::vector<double> arc_delay(arcs_.size(), 0);
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    const Arc& a = arcs_[i];
    switch (a.kind) {
      case ArcKind::Gate:
        arc_delay[i] = a.delay_s + a.r_ohm * c_sub[static_cast<std::size_t>(a.to)];
        break;
      case ArcKind::Wire:
        arc_delay[i] = a.r_ohm * c_sub[static_cast<std::size_t>(a.to)];
        break;
      case ArcKind::Delay:
        arc_delay[i] = a.delay_s;
        break;
    }
  }

  // Forward pass: arrival, slew, and the predecessor arc that set the
  // arrival. Nodes with no incoming arcs launch at t = 0 (sources by
  // definition; orphans behave as free-running inputs). Ties keep the
  // earliest arc id — insertion order, thread-independent.
  std::vector<double> arrival(n, 0);
  std::vector<double> slew(n, options.input_slew_s);
  std::vector<int> pred(n, -1);
  for (const int u : order) {
    const std::size_t su = static_cast<std::size_t>(u);
    for (int aid : in_[su]) {
      const Arc& a = arcs_[static_cast<std::size_t>(aid)];
      const double t = arrival[static_cast<std::size_t>(a.from)] +
                       arc_delay[static_cast<std::size_t>(aid)];
      if (pred[su] < 0 || t > arrival[su]) {
        arrival[su] = t;
        pred[su] = aid;
      }
    }
    if (pred[su] >= 0) {
      const Arc& a = arcs_[static_cast<std::size_t>(pred[su])];
      const double in_slew = slew[static_cast<std::size_t>(a.from)];
      const double tau =
          a.r_ohm * c_sub[su];  // zero for Delay arcs by construction
      switch (a.kind) {
        case ArcKind::Gate:
          // A switching stage re-launches the edge: its output slew is
          // set by its own RC, not the input edge.
          slew[su] = kSlewPerTau * tau;
          break;
        case ArcKind::Wire:
          // First-order degradation through a passive segment.
          slew[su] = std::sqrt(in_slew * in_slew +
                               kSlewPerTau * tau * (kSlewPerTau * tau));
          break;
        case ArcKind::Delay:
          slew[su] = in_slew;
          break;
      }
    }
  }

  // Endpoint set: flagged nodes, else every sink with at least one
  // incoming arc. Deterministic: node-id order.
  std::vector<int> endpoints;
  for (std::size_t i = 0; i < n; ++i)
    if (nodes_[i].is_endpoint) endpoints.push_back(static_cast<int>(i));
  if (endpoints.empty())
    for (std::size_t i = 0; i < n; ++i)
      if (out_[i].empty() && !in_[i].empty())
        endpoints.push_back(static_cast<int>(i));
  require(!endpoints.empty(), "sta: graph has no endpoints");

  double max_arrival = -std::numeric_limits<double>::infinity();
  for (int e : endpoints)
    max_arrival = std::max(max_arrival, arrival[static_cast<std::size_t>(e)]);

  const bool constrained = options.clock_period_s > 0;
  const double req_at_endpoint =
      constrained ? options.clock_period_s : max_arrival;

  // Backward pass: required time. Endpoints get the constraint; interior
  // required times tighten through every outgoing arc.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> required(n, kInf);
  for (int e : endpoints) required[static_cast<std::size_t>(e)] = req_at_endpoint;
  for (std::size_t i = n; i-- > 0;) {
    const int u = order[i];
    const std::size_t su = static_cast<std::size_t>(u);
    for (int aid : out_[su]) {
      const Arc& a = arcs_[static_cast<std::size_t>(aid)];
      required[su] =
          std::min(required[su], required[static_cast<std::size_t>(a.to)] -
                                     arc_delay[static_cast<std::size_t>(aid)]);
    }
  }

  StaReport report;
  report.clock_period_s = req_at_endpoint;
  report.constrained = constrained;
  report.node_count = n;
  report.arc_count = arcs_.size();
  report.endpoint_count = endpoints.size();
  report.max_arrival_s = max_arrival;

  // Per-endpoint slack rows, each written into its own pre-allocated
  // slot — the canonical sort below fixes the order regardless of which
  // thread filled which slot.
  report.endpoints.resize(endpoints.size());
  parallel_for(
      static_cast<std::int64_t>(endpoints.size()), 16,
      [&](std::int64_t i) {
        const int e = endpoints[static_cast<std::size_t>(i)];
        const std::size_t se = static_cast<std::size_t>(e);
        EndpointSlack& row = report.endpoints[static_cast<std::size_t>(i)];
        row.name = nodes_[se].name;
        row.arrival_s = arrival[se];
        row.slew_s = slew[se];
        row.required_s = req_at_endpoint;
        row.slack_s = req_at_endpoint - arrival[se];
      },
      options.threads);
  std::sort(report.endpoints.begin(), report.endpoints.end(),
            [](const EndpointSlack& a, const EndpointSlack& b) {
              if (a.slack_s != b.slack_s) return a.slack_s < b.slack_s;
              return a.name < b.name;
            });

  // Serial, canonical-order accumulation: bit-identical at any thread
  // count.
  report.wns_s = report.endpoints.front().slack_s;
  for (const EndpointSlack& row : report.endpoints)
    if (row.slack_s < 0) report.tns_s += row.slack_s;

  // K worst paths: trace the predecessor chain of the K worst endpoints.
  // Each trace writes its own slot; endpoint ids are looked up from the
  // already-sorted rows, so the set and order are canonical.
  const std::size_t k = std::min<std::size_t>(
      options.k_paths < 0 ? 0 : static_cast<std::size_t>(options.k_paths),
      report.endpoints.size());
  std::vector<int> id_by_name(n);
  for (std::size_t i = 0; i < n; ++i) id_by_name[i] = static_cast<int>(i);
  std::sort(id_by_name.begin(), id_by_name.end(), [&](int a, int b) {
    return nodes_[static_cast<std::size_t>(a)].name <
           nodes_[static_cast<std::size_t>(b)].name;
  });
  auto node_by_name = [&](const std::string& name) {
    auto it = std::lower_bound(
        id_by_name.begin(), id_by_name.end(), name, [&](int a, const std::string& s) {
          return nodes_[static_cast<std::size_t>(a)].name < s;
        });
    ensure(it != id_by_name.end() &&
               nodes_[static_cast<std::size_t>(*it)].name == name,
           "sta: endpoint lookup failed");
    return *it;
  };
  report.worst_paths.resize(k);
  parallel_for(
      static_cast<std::int64_t>(k), 1,
      [&](std::int64_t i) {
        const EndpointSlack& row = report.endpoints[static_cast<std::size_t>(i)];
        const int e = node_by_name(row.name);
        CriticalPath& path = report.worst_paths[static_cast<std::size_t>(i)];
        path.endpoint = row.name;
        path.arrival_s = row.arrival_s;
        path.required_s = row.required_s;
        path.slack_s = row.slack_s;
        // Walk the predecessor chain back to the launch node, then
        // reverse into source-to-endpoint order.
        std::vector<PathStep> rev;
        int u = e;
        while (true) {
          const std::size_t su = static_cast<std::size_t>(u);
          PathStep step;
          step.node = nodes_[su].name;
          step.arrival_s = arrival[su];
          if (pred[su] < 0) {
            rev.push_back(std::move(step));
            break;
          }
          const Arc& a = arcs_[static_cast<std::size_t>(pred[su])];
          step.tag = a.tag;
          step.incr_s = arc_delay[static_cast<std::size_t>(pred[su])];
          rev.push_back(std::move(step));
          u = a.from;
        }
        path.steps.assign(rev.rbegin(), rev.rend());
      },
      options.threads);

  return report;
}

std::string StaReport::render(std::size_t max_rows) const {
  std::string s;
  s += strfmt("STA: %zu nodes, %zu arcs, %zu endpoints\n", node_count,
              arc_count, endpoint_count);
  s += strfmt("  %s clock %.4f ns | WNS %+.4f ns | TNS %+.4f ns | "
              "max arrival %.4f ns\n",
              constrained ? "constrained:" : "unconstrained:",
              clock_period_s * 1e9, wns_s * 1e9, tns_s * 1e9,
              max_arrival_s * 1e9);
  const std::size_t rows = std::min(max_rows, endpoints.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const EndpointSlack& row = endpoints[i];
    s += strfmt("  %-28s arrival %8.4f ns  slew %7.4f ns  slack %+8.4f ns\n",
                row.name.c_str(), row.arrival_s * 1e9, row.slew_s * 1e9,
                row.slack_s * 1e9);
  }
  if (endpoints.size() > rows)
    s += strfmt("  ... %zu more endpoints\n", endpoints.size() - rows);
  for (const CriticalPath& path : worst_paths) {
    s += strfmt("  path to %s (slack %+.4f ns):\n", path.endpoint.c_str(),
                path.slack_s * 1e9);
    for (const PathStep& step : path.steps)
      s += strfmt("    %10.4f ns  +%8.4f ns  %-24s %s\n",
                  step.arrival_s * 1e9, step.incr_s * 1e9, step.node.c_str(),
                  step.tag.c_str());
  }
  return s;
}

}  // namespace bisram::sta
