#pragma once
// Macro-level access-path timing graph. Where the historical
// core/timing.cpp walked the read path with four lumped-RC terms, this
// builder lays the same electrical story out as an explicit graph — the
// address decoder (leaf-characterized, sta/leaf.hpp), the word-line
// driver against the distributed word line (a coarsened RC ladder with
// per-cell loads), the selected cell discharging the bit-line ladder to
// the 10% current-mode sensing swing, the column mux, and the sense amp
// — with one read endpoint per data bit (dout[b]) and one write
// endpoint per data bit (cell[b], arriving at the later of the word
// line and the write-driver data path, which the arrival max models for
// free).
//
// Delay convention: all Gate/Wire resistances are pre-scaled so that the
// Elmore sum the graph computes is a 50% crossing estimate — ln 2 for
// full-swing stages, -ln(0.9) for the 10%-swing current-mode read
// bit line. Arc tags are stable instance-style paths
// ("wordline/seg[12]", "col[1023]/bitline/seg[7]") so the signoff
// report's critical path reads like a DRC offender trace.

#include "sim/ram_model.hpp"
#include "sta/graph.hpp"
#include "sta/leaf.hpp"
#include "tech/tech.hpp"

namespace bisram::sta {

/// Access-path analysis result: the datasheet's timing numbers plus the
/// full per-endpoint STA report behind them.
struct AccessTiming {
  double tau_s = 0;       ///< calibrated stage delay (reported)
  double decoder_s = 0;   ///< address -> word-line driver input
  double wordline_s = 0;  ///< word-line RC to the worst tap
  double bitline_s = 0;   ///< cell discharge + bit-line RC + column mux
  double senseamp_s = 0;  ///< sense-amp resolve
  double access_s = 0;    ///< worst read endpoint arrival
  double write_s = 0;     ///< worst write endpoint arrival
  StaReport report;       ///< full report over dout[b] and cell[b]
};

/// Builds the read+write access-path graph for one macro geometry.
/// Sources: addr, din. Endpoints: dout[b] (read) and cell[b] (write)
/// for every data bit b.
TimingGraph build_access_graph(const tech::Tech& t,
                               const sim::RamGeometry& geo, double gate_size);

/// Same graph from pre-characterized leaf timing (`lt` must come from
/// characterize()/characterize_uncached() for the same tech, gate size
/// and row count). The staged compile API threads its session cache's
/// LeafTiming through here so one deck's SPICE work is shared across
/// every spec in a DSE sweep.
TimingGraph build_access_graph(const tech::Tech& t,
                               const sim::RamGeometry& geo, double gate_size,
                               const LeafTiming& lt);

/// Builds and analyzes the access-path graph, splitting the worst read
/// path into the classic decoder/wordline/bitline/senseamp breakdown by
/// arc tag. `options.clock_period_s` <= 0 analyzes unconstrained (the
/// datasheet path); a positive period produces real setup slacks (the
/// signoff path).
AccessTiming analyze_access_path(const tech::Tech& t,
                                 const sim::RamGeometry& geo,
                                 double gate_size,
                                 const AnalyzeOptions& options = {});

/// Pre-characterized-leaf overload (see build_access_graph above):
/// bit-identical to the characterize()-path for the same inputs.
AccessTiming analyze_access_path(const tech::Tech& t,
                                 const sim::RamGeometry& geo, double gate_size,
                                 const LeafTiming& lt,
                                 const AnalyzeOptions& options = {});

}  // namespace bisram::sta
