#include "sta/leaf.hpp"

#include <atomic>
#include <map>
#include <mutex>

#include "cells/leaf_cells.hpp"
#include "extract/extract.hpp"
#include "spice/sizing.hpp"
#include "sta/netlist.hpp"
#include "util/strings.hpp"

namespace bisram::sta {

namespace {
/// Executions of the uncached characterization entry points; the warm-
/// cache acceptance tests assert this does not move on a cache hit.
std::atomic<std::uint64_t> g_characterizations{0};
}  // namespace

std::uint64_t characterization_count() {
  return g_characterizations.load(std::memory_order_relaxed);
}

double stage_delay_uncached(const tech::Tech& t) {
  g_characterizations.fetch_add(1, std::memory_order_relaxed);
  // A 2 um NMOS inverter driving four copies of itself (~FO4): gate cap
  // of the fan-out plus local wire.
  const double wn = 2.0;
  const double cg =
      (t.elec.nmos.cox_f_um2 + t.elec.pmos.cox_f_um2) * wn * t.feature_um;
  const double load = 4.0 * cg + 5e-15;
  const spice::SizingResult r = spice::balance_inverter(t, wn, load, 0.05);
  return 0.5 * (r.tplh_s + r.tphl_s);
}

double stage_delay_s(const tech::Tech& t) {
  static std::map<std::uint64_t, double> cache;
  static std::mutex mutex;
  const std::uint64_t key = tech::fingerprint(t);
  {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  const double tau = stage_delay_uncached(t);
  std::lock_guard<std::mutex> lock(mutex);
  cache.emplace(key, tau);
  return tau;
}

double wordline_cap_per_cell_f(const tech::Tech& t) {
  const double lam = t.lambda_um;
  const auto& poly = t.elec.wire[static_cast<std::size_t>(geom::Layer::Poly)];
  const double strip_area = (cells::kCellPitchLambda * lam) * (2.0 * lam);
  const double gate_area = 2.0 * (6.0 * lam) * t.feature_um;
  return strip_area * poly.cap_area_f_um2 +
         2.0 * (cells::kCellPitchLambda * lam) * poly.cap_fringe_f_um +
         gate_area * t.elec.nmos.cox_f_um2;
}

double bitline_cap_per_cell_f(const tech::Tech& t) {
  const double lam = t.lambda_um;
  const auto& m2 = t.elec.wire[static_cast<std::size_t>(geom::Layer::Metal2)];
  const double strip_area = (cells::kCellPitchLambda * lam) * (3.0 * lam);
  const double junction = (6.0 * lam) * (5.0 * lam) * t.elec.nmos.cj_f_um2;
  return strip_area * m2.cap_area_f_um2 +
         2.0 * (cells::kCellPitchLambda * lam) * m2.cap_fringe_f_um + junction;
}

namespace {

/// Generates `cell`, extracts it, builds the netlist timing graph and
/// returns the worst endpoint arrival — the cell's stage delay.
double cell_sta_delay(const geom::Cell& cell, const tech::Tech& t,
                      const std::vector<std::string>& inputs,
                      const std::vector<std::string>& outputs) {
  const extract::Extracted ex = extract::extract(cell, t);
  NetlistGraph built = from_extracted(ex, t, inputs, outputs);
  AnalyzeOptions opt;
  opt.k_paths = 1;
  opt.threads = 1;  // leaf graphs are tiny; skip the pool
  return built.graph.analyze(opt).max_arrival_s;
}

}  // namespace

LeafTiming characterize(const tech::Tech& t, double gate_size, int row_bits) {
  static std::map<std::string, LeafTiming> cache;
  static std::mutex mutex;
  const std::string key =
      strfmt("%016llx/%.6g/%d",
             static_cast<unsigned long long>(tech::fingerprint(t)), gate_size,
             row_bits);
  {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }

  const LeafTiming lt = characterize_uncached(t, gate_size, row_bits);
  std::lock_guard<std::mutex> lock(mutex);
  cache.emplace(key, lt);
  return lt;
}

LeafTiming characterize_uncached(const tech::Tech& t, double gate_size,
                                 int row_bits) {
  g_characterizations.fetch_add(1, std::memory_order_relaxed);
  LeafTiming lt;
  lt.tau_s = stage_delay_s(t);

  geom::Library lib;
  lt.decoder_s =
      cell_sta_delay(*cells::row_decoder_cell(lib, t, row_bits, gate_size), t,
                     [&] {
                       std::vector<std::string> a;
                       for (int i = 0; i < row_bits; ++i)
                         a.push_back(strfmt("a%d", i));
                       return a;
                     }(),
                     {"wl"});
  lt.senseamp_s =
      cell_sta_delay(*cells::sense_amp_cell(lib, t, gate_size), t,
                     {"in", "inb", "sab"}, {"out"});
  lt.precharge_s = cell_sta_delay(*cells::precharge_cell(lib, t, gate_size),
                                  t, {"pcb"}, {"bl", "blb"});
  lt.write_driver_s =
      cell_sta_delay(*cells::write_driver_cell(lib, t, gate_size), t,
                     {"din", "dinb"}, {"bus", "busb"});

  const double lam = t.lambda_um;
  lt.wl_driver_r_ohm = spice::device_on_resistance(
      t, spice::MosType::Pmos, 8.0 * gate_size * lam);
  lt.cell_r_ohm =
      2.0 * spice::device_on_resistance(t, spice::MosType::Nmos, 6.0 * lam);
  lt.mux_r_ohm = spice::device_on_resistance(t, spice::MosType::Nmos,
                                             6.0 * gate_size * lam);
  lt.write_r_ohm = spice::device_on_resistance(t, spice::MosType::Nmos,
                                               6.0 * gate_size * lam);
  return lt;
}

}  // namespace bisram::sta
