#pragma once
// Leaf-cell timing characterization: the paper's "extract and simulate
// leaf cells ahead of time, thereby extrapolating timing ... guarantees
// for the overall system", rebuilt on the STA engine. Each generated
// leaf cell (row decoder slice, sense amp, precharge, write driver) is
// extracted from its LayoutDB-backed layout and run through the netlist
// STA (sta/netlist.hpp); the resulting stage delays feed the macro
// access-path graph (sta/access_path.hpp), and tests/test_sta.cpp pins
// their agreement with the transient engine's prop_delay on the same
// extracted circuits.
//
// The per-cell wordline/bitline load models and the calibrated
// inverter stage delay historically lived in core/timing.cpp; they
// moved here so the whole timing stack (core's datasheet numbers, the
// signoff timing check, the benches) draws from one source.

#include <cstdint>

#include "sim/ram_model.hpp"
#include "tech/tech.hpp"

namespace bisram::sta {

/// Characterized leaf-stage delays and drive resistances for one
/// (technology, gate size, decoder width) point.
struct LeafTiming {
  double tau_s = 0;           ///< balanced-inverter FO4 stage delay
  double decoder_s = 0;       ///< row decoder slice, address -> wl
  double senseamp_s = 0;      ///< sense amp, in/enable -> out
  double precharge_s = 0;     ///< precharge, pcb -> bit line
  double write_driver_s = 0;  ///< write driver, din -> bus
  double mux_r_ohm = 0;       ///< column-mux pass device on-resistance
  double wl_driver_r_ohm = 0; ///< word-line driver drive resistance
  double cell_r_ohm = 0;      ///< 6T pull-down + pass device in series
  double write_r_ohm = 0;     ///< write-driver bit-line drive resistance
};

/// Calibrated stage delay for a process (cached per deck fingerprint;
/// runs a SPICE transient on a balanced inverter driving a fan-out-of-4
/// load).
double stage_delay_s(const tech::Tech& t);

/// The same calibration with no cache involvement — one full SPICE
/// sizing run per call. This is what core::CompileCache calls so its
/// hit/miss accounting reflects real work (and what the warm-cache
/// "zero re-characterizations" acceptance check counts).
double stage_delay_uncached(const tech::Tech& t);

/// Capacitance one cell adds to its word line (poly strip across the
/// cell pitch plus two pass-transistor gates).
double wordline_cap_per_cell_f(const tech::Tech& t);

/// Capacitance one cell adds to its bit line (metal2 strip plus the
/// pass-transistor junction).
double bitline_cap_per_cell_f(const tech::Tech& t);

/// Characterizes the leaf stages for a process / gate size / decoder
/// width. Generates the cells, extracts them, and runs the netlist STA;
/// results are cached per (deck fingerprint, gate_size, row_bits) — the
/// fingerprint (tech/tech.hpp) keys on deck *contents*, so user decks
/// sharing a name never collide in the cache.
LeafTiming characterize(const tech::Tech& t, double gate_size, int row_bits);

/// The characterization work itself, no cache: generates, extracts and
/// STA-analyzes every leaf stage on each call. core::CompileCache owns
/// the memoization (per compile session or shared across sessions) and
/// counts invocations of this function as "leaf characterizations".
LeafTiming characterize_uncached(const tech::Tech& t, double gate_size,
                                 int row_bits);

/// Process-wide count of characterize_uncached / stage_delay_uncached
/// executions (monotonic, thread-safe). The cache bit-identity tests and
/// the DSE bench read this to prove a warm cache does zero SPICE work.
std::uint64_t characterization_count();

}  // namespace bisram::sta
