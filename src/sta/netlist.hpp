#pragma once
// Extracted netlist -> timing graph. Recognizes channel-connected
// components (CCCs) in the transistor-level netlist the extractor
// produced from the LayoutDB, turns each CCC into gate-style timing arcs
// (every stage input to every stage output), and loads each net with the
// same parasitics the SPICE bridge (extract/simulate.hpp) gives the
// transient engine — so the STA and the reference simulator are solving
// the same circuit and tests can pin their agreement.
//
// Per-arc delay model: the minimum-resistance channel path from the
// output net to vdd (pull-up) and to gnd (pull-down) is found with
// Dijkstra over device on-resistances; the worse of the two paths is
// walked supply-to-output accumulating the Elmore sum (upstream R times
// node cap), and the result is scaled by ln 2 — the 50% crossing of a
// single-pole response — so the number is comparable to the engine's
// prop_delay measurements. Arc provenance is the instance path of the
// device the input gates (the extractor's LayoutDB path, same scheme DRC
// offenders carry).
//
// Feedback (cross-coupled latches: the 6T cell, the sense amp) would
// make the graph cyclic; like a production STA we break timing loops
// deterministically — arcs are added in canonical (net-id) order and an
// arc that would close a cycle is skipped and recorded in
// `broken_loops`.

#include <string>
#include <vector>

#include "extract/extract.hpp"
#include "sta/graph.hpp"

namespace bisram::sta {

/// A timing graph built from an extracted netlist.
struct NetlistGraph {
  TimingGraph graph;
  /// net id -> graph node id; -1 for supply nets (vdd/gnd), which carry
  /// no timing.
  std::vector<int> net_node;
  /// Provenance tags of arcs skipped to break feedback loops.
  std::vector<std::string> broken_loops;
  /// Channel-connected components found (diagnostic).
  int stage_count = 0;
};

/// Builds the timing graph for an extracted cell. `inputs` port names
/// become sources, `outputs` become endpoints; both must exist in
/// ex.port_net. Node names follow extract::node_name ("gnd" is a supply,
/// not a node).
NetlistGraph from_extracted(const extract::Extracted& ex,
                            const tech::Tech& tech,
                            const std::vector<std::string>& inputs,
                            const std::vector<std::string>& outputs);

}  // namespace bisram::sta
