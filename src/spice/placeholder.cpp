namespace bisram { namespace { [[maybe_unused]] int placeholder_spice = 0; } }
