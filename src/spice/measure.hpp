#pragma once
// Waveform measurements over transient traces: threshold crossings,
// 10-90% rise/fall times, and 50%-to-50% propagation delay. These are the
// quantities BISRAMGEN extracts from leaf-cell simulations to provide the
// timing guarantees described in the paper.

#include <optional>

#include "spice/engine.hpp"

namespace bisram::spice {

/// First time after `after` at which node `n` crosses `level` in the given
/// direction; nullopt when it never does.
std::optional<double> crossing_time(const Trace& trace, Node n, double level,
                                    bool rising, double after = 0.0);

/// 10%-90% rise time of the first rising edge after `after` (levels are
/// fractions of `vdd`).
std::optional<double> rise_time(const Trace& trace, Node n, double vdd,
                                double after = 0.0);

/// 90%-10% fall time of the first falling edge after `after`.
std::optional<double> fall_time(const Trace& trace, Node n, double vdd,
                                double after = 0.0);

/// 50%-to-50% propagation delay from the input edge at `t_in_edge` to the
/// first output crossing (either direction) after it.
std::optional<double> prop_delay(const Trace& trace, Node out, double vdd,
                                 double t_in_edge);

}  // namespace bisram::spice
