#pragma once
// Circuit netlist for the built-in SPICE utilities.
//
// The paper relies on "built-in access to SPICE utilities" to size the
// n and p transistors of critical gates so their rise and fall times
// balance, and to extrapolate timing/power guarantees from leaf cells.
// This module provides the netlist representation; src/spice/engine.hpp
// solves it (DC operating point + transient).

#include <map>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace bisram::spice {

/// Node index; 0 is always ground.
using Node = int;

/// Source waveform: DC level, pulse train, or piecewise-linear.
class Waveform {
 public:
  /// Constant level.
  static Waveform dc(double volts);
  /// SPICE-style PULSE(v1 v2 delay rise fall width period).
  static Waveform pulse(double v1, double v2, double delay, double rise,
                        double fall, double width, double period);
  /// Piecewise linear through (time, value) points; clamps outside range.
  static Waveform pwl(std::vector<std::pair<double, double>> points);

  /// Value at time t (t < 0 behaves like t == 0).
  double at(double t) const;

 private:
  enum class Kind { Dc, Pulse, Pwl };
  Kind kind_ = Kind::Dc;
  double v1_ = 0, v2_ = 0, delay_ = 0, rise_ = 0, fall_ = 0, width_ = 0,
         period_ = 0;
  std::vector<std::pair<double, double>> points_;
};

enum class MosType { Nmos, Pmos };

/// Shichman-Hodges parameters for one device instance.
struct MosModel {
  double vt0 = 0.7;        ///< threshold [V]; sign-positive for both types
  double kp = 100e-6;      ///< transconductance [A/V^2]
  double lambda_ch = 0.0;  ///< channel-length modulation [1/V]
};

struct Resistor {
  Node a, b;
  double ohms;
};
struct Capacitor {
  Node a, b;
  double farads;
};
struct VSource {
  Node pos, neg;
  Waveform wave;
};
struct ISource {
  Node pos, neg;  ///< current flows pos -> neg through the source
  Waveform wave;
};
struct Mosfet {
  MosType type;
  Node d, g, s;
  double w_um, l_um;
  MosModel model;
};

/// A flat circuit. Nodes are created by name; "0", "gnd" and "GND" alias
/// ground. All add_* methods validate their arguments.
class Circuit {
 public:
  /// Returns (creating if needed) the node with this name.
  Node node(const std::string& name);
  /// Number of nodes including ground.
  int node_count() const { return static_cast<int>(names_.size()); }
  /// Name of node n (for diagnostics).
  const std::string& node_name(Node n) const;
  /// Looks up an existing node; throws if absent.
  Node find(const std::string& name) const;

  void add_resistor(const std::string& a, const std::string& b, double ohms);
  void add_capacitor(const std::string& a, const std::string& b, double f);
  void add_vsource(const std::string& pos, const std::string& neg,
                   Waveform wave);
  void add_isource(const std::string& pos, const std::string& neg,
                   Waveform wave);
  void add_mosfet(MosType type, const std::string& d, const std::string& g,
                  const std::string& s, double w_um, double l_um,
                  const MosModel& model);

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<VSource>& vsources() const { return vsources_; }
  const std::vector<ISource>& isources() const { return isources_; }
  const std::vector<Mosfet>& mosfets() const { return mosfets_; }

 private:
  std::map<std::string, Node> index_;
  std::vector<std::string> names_{"0"};
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<VSource> vsources_;
  std::vector<ISource> isources_;
  std::vector<Mosfet> mosfets_;
};

}  // namespace bisram::spice
