#pragma once
// Automatic transistor sizing: "for a given gate size, the n and p
// transistors are automatically sized to balance the rise and fall times.
// This is made possible by built-in access to SPICE utilities."
//
// The sizer simulates a CMOS inverter of the target process driving a
// given load and bisects on the PMOS width until the 10-90% rise and
// 90-10% fall times at the output match.

#include "spice/netlist.hpp"
#include "tech/tech.hpp"

namespace bisram::spice {

/// Result of a sizing run.
struct SizingResult {
  double wn_um = 0;     ///< NMOS width (input, echoed)
  double wp_um = 0;     ///< balanced PMOS width
  double rise_s = 0;    ///< achieved 10-90% rise time
  double fall_s = 0;    ///< achieved 90-10% fall time
  double tplh_s = 0;    ///< low-to-high propagation delay
  double tphl_s = 0;    ///< high-to-low propagation delay
};

/// Builds a minimum-length inverter with the given widths into `ckt`.
/// Nodes: "vdd", "in", `out`. Returns nothing; caller adds sources/loads.
void build_inverter(Circuit& ckt, const tech::Tech& t, double wn_um,
                    double wp_um, const std::string& in,
                    const std::string& out);

/// Measures rise/fall/propagation of an inverter (wn, wp) driving
/// `load_f` farads, using a full transient simulation.
SizingResult measure_inverter(const tech::Tech& t, double wn_um, double wp_um,
                              double load_f);

/// Finds the PMOS width (between wn and 8*wn) that balances rise and fall
/// times to within `tol_rel` (relative). Throws if the bracket fails.
SizingResult balance_inverter(const tech::Tech& t, double wn_um,
                              double load_f, double tol_rel = 0.02);

/// First-order RC estimate of the equivalent on-resistance of a device of
/// width `w_um` (used by the timing model for large arrays where full
/// transient simulation would be too slow).
double device_on_resistance(const tech::Tech& t, MosType type, double w_um);

}  // namespace bisram::spice
