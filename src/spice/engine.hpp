#pragma once
// Circuit solver: modified nodal analysis with Newton-Raphson for the
// level-1 MOSFETs, gmin stepping for DC convergence, and trapezoidal
// integration for transient analysis.

#include <vector>

#include "spice/netlist.hpp"

namespace bisram::spice {

/// Result of a transient run: node voltages sampled at fixed steps.
class Trace {
 public:
  Trace(int node_count, std::vector<double> times)
      : nodes_(node_count), times_(std::move(times)),
        data_(times_.size() * static_cast<std::size_t>(node_count), 0.0) {}

  int node_count() const { return nodes_; }
  std::size_t samples() const { return times_.size(); }
  double time(std::size_t i) const { return times_[i]; }
  const std::vector<double>& times() const { return times_; }

  double value(Node n, std::size_t i) const {
    return data_[i * static_cast<std::size_t>(nodes_) +
                 static_cast<std::size_t>(n)];
  }
  void set(Node n, std::size_t i, double v) {
    data_[i * static_cast<std::size_t>(nodes_) + static_cast<std::size_t>(n)] =
        v;
  }

  /// Linear interpolation of node `n` at time t.
  double at_time(Node n, double t) const;

 private:
  int nodes_;
  std::vector<double> times_;
  std::vector<double> data_;
};

/// Solver options.
struct EngineOptions {
  double gmin = 1e-12;      ///< leak conductance from every node to ground
  double abstol = 1e-9;     ///< Newton current residual tolerance [A]
  double reltol = 1e-6;     ///< Newton voltage delta tolerance [V]
  int max_newton = 200;     ///< iterations per solve
  double vlimit = 0.5;      ///< max per-iteration voltage step [V]
};

/// DC operating point with all sources at their t = 0 values.
/// Returns node voltages indexed by Node (ground included, == 0).
std::vector<double> dc_operating_point(const Circuit& ckt,
                                       const EngineOptions& opt = {});

/// DC operating point with the voltage-source branch currents included
/// (ordered as the sources were added; positive current flows from the
/// source's + terminal through the source to its - terminal, i.e. a
/// supply delivering power shows a negative branch current).
struct DcSolution {
  std::vector<double> voltages;         ///< indexed by Node
  std::vector<double> source_currents;  ///< one per voltage source
};
DcSolution dc_operating_point_full(const Circuit& ckt,
                                   const EngineOptions& opt = {});

/// Transient analysis from a DC operating point at t = 0 to `tstop`
/// with fixed step `dt` (trapezoidal companion models).
Trace transient(const Circuit& ckt, double tstop, double dt,
                const EngineOptions& opt = {});

}  // namespace bisram::spice
