#include "spice/measure.hpp"

#include <algorithm>

namespace bisram::spice {

std::optional<double> crossing_time(const Trace& trace, Node n, double level,
                                    bool rising, double after) {
  for (std::size_t i = 1; i < trace.samples(); ++i) {
    if (trace.time(i) <= after) continue;
    const double v0 = trace.value(n, i - 1);
    const double v1 = trace.value(n, i);
    const bool crossed =
        rising ? (v0 < level && v1 >= level) : (v0 > level && v1 <= level);
    if (!crossed) continue;
    const double t0 = trace.time(i - 1), t1 = trace.time(i);
    if (v1 == v0) return t1;
    return t0 + (t1 - t0) * (level - v0) / (v1 - v0);
  }
  return std::nullopt;
}

std::optional<double> rise_time(const Trace& trace, Node n, double vdd,
                                double after) {
  const auto t10 = crossing_time(trace, n, 0.1 * vdd, true, after);
  if (!t10) return std::nullopt;
  const auto t90 = crossing_time(trace, n, 0.9 * vdd, true, *t10);
  if (!t90) return std::nullopt;
  return *t90 - *t10;
}

std::optional<double> fall_time(const Trace& trace, Node n, double vdd,
                                double after) {
  const auto t90 = crossing_time(trace, n, 0.9 * vdd, false, after);
  if (!t90) return std::nullopt;
  const auto t10 = crossing_time(trace, n, 0.1 * vdd, false, *t90);
  if (!t10) return std::nullopt;
  return *t10 - *t90;
}

std::optional<double> prop_delay(const Trace& trace, Node out, double vdd,
                                 double t_in_edge) {
  const auto up = crossing_time(trace, out, 0.5 * vdd, true, t_in_edge);
  const auto dn = crossing_time(trace, out, 0.5 * vdd, false, t_in_edge);
  if (up && dn) return std::min(*up, *dn) - t_in_edge;
  if (up) return *up - t_in_edge;
  if (dn) return *dn - t_in_edge;
  return std::nullopt;
}

}  // namespace bisram::spice
