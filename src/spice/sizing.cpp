#include "spice/sizing.hpp"

#include <cmath>

#include "spice/engine.hpp"
#include "spice/measure.hpp"

namespace bisram::spice {

namespace {
MosModel model_of(const tech::MosParams& p) {
  return {p.vt0, p.kp, p.lambda_ch};
}
}  // namespace

void build_inverter(Circuit& ckt, const tech::Tech& t, double wn_um,
                    double wp_um, const std::string& in,
                    const std::string& out) {
  const double l = t.feature_um;
  ckt.add_mosfet(MosType::Nmos, out, in, "0", wn_um, l, model_of(t.elec.nmos));
  ckt.add_mosfet(MosType::Pmos, out, in, "vdd", wp_um, l,
                 model_of(t.elec.pmos));
}

SizingResult measure_inverter(const tech::Tech& t, double wn_um, double wp_um,
                              double load_f) {
  require(load_f > 0, "measure_inverter: non-positive load");
  Circuit ckt;
  const double vdd = t.elec.vdd;
  ckt.add_vsource("vdd", "0", Waveform::dc(vdd));
  // One full input cycle: rise at 1 ns, fall at 11 ns; edges of 50 ps.
  const double t_rise_in = 1e-9, t_fall_in = 11e-9;
  ckt.add_vsource("in", "0",
                  Waveform::pwl({{0.0, 0.0},
                                 {t_rise_in, 0.0},
                                 {t_rise_in + 50e-12, vdd},
                                 {t_fall_in, vdd},
                                 {t_fall_in + 50e-12, 0.0},
                                 {22e-9, 0.0}}));
  build_inverter(ckt, t, wn_um, wp_um, "in", "out");
  ckt.add_capacitor("out", "0", load_f);

  const Trace trace = transient(ckt, 22e-9, 5e-12);
  const Node out = ckt.find("out");

  SizingResult r;
  r.wn_um = wn_um;
  r.wp_um = wp_um;
  // Input rises -> output falls; input falls -> output rises.
  r.fall_s = fall_time(trace, out, vdd, t_rise_in).value_or(0.0);
  r.rise_s = rise_time(trace, out, vdd, t_fall_in).value_or(0.0);
  r.tphl_s =
      crossing_time(trace, out, 0.5 * vdd, false, t_rise_in).value_or(0.0) -
      (t_rise_in + 25e-12);
  r.tplh_s =
      crossing_time(trace, out, 0.5 * vdd, true, t_fall_in).value_or(0.0) -
      (t_fall_in + 25e-12);
  ensure(r.rise_s > 0 && r.fall_s > 0,
         "measure_inverter: output did not switch");
  return r;
}

SizingResult balance_inverter(const tech::Tech& t, double wn_um, double load_f,
                              double tol_rel) {
  require(wn_um > 0, "balance_inverter: non-positive NMOS width");
  // Wider PMOS -> faster rise. Bracket: at wp = wn the rise is slower
  // than the fall (mobility ratio > 1); at wp = 8*wn it is faster.
  double lo = wn_um, hi = 8.0 * wn_um;
  SizingResult at_lo = measure_inverter(t, wn_um, lo, load_f);
  if (at_lo.rise_s <= at_lo.fall_s) return at_lo;  // already balanced
  SizingResult at_hi = measure_inverter(t, wn_um, hi, load_f);
  require(at_hi.rise_s <= at_hi.fall_s,
          "balance_inverter: bracket failed; load too large for widths");

  SizingResult best = at_lo;
  for (int iter = 0; iter < 30; ++iter) {
    const double mid = 0.5 * (lo + hi);
    best = measure_inverter(t, wn_um, mid, load_f);
    const double err =
        std::abs(best.rise_s - best.fall_s) / std::max(best.rise_s, best.fall_s);
    if (err < tol_rel) return best;
    if (best.rise_s > best.fall_s)
      lo = mid;  // rise too slow -> widen PMOS
    else
      hi = mid;
  }
  return best;
}

double device_on_resistance(const tech::Tech& t, MosType type, double w_um) {
  require(w_um > 0, "device_on_resistance: non-positive width");
  const tech::MosParams& p =
      type == MosType::Nmos ? t.elec.nmos : t.elec.pmos;
  const double vdd = t.elec.vdd;
  const double vov = vdd - std::abs(p.vt0);
  // Average of the saturation-region and deep-triode resistances over the
  // output transition (standard switch-model approximation).
  const double beta = p.kp * w_um / t.feature_um;
  const double r_sat = vdd / (0.5 * beta * vov * vov);
  const double r_lin = 1.0 / (beta * vov);
  return 0.5 * (r_sat + r_lin);
}

}  // namespace bisram::spice
