#include "spice/netlist.hpp"

#include <algorithm>
#include <cmath>

namespace bisram::spice {

Waveform Waveform::dc(double volts) {
  Waveform w;
  w.kind_ = Kind::Dc;
  w.v1_ = volts;
  return w;
}

Waveform Waveform::pulse(double v1, double v2, double delay, double rise,
                         double fall, double width, double period) {
  require(rise >= 0 && fall >= 0 && width >= 0, "pulse: negative time");
  Waveform w;
  w.kind_ = Kind::Pulse;
  w.v1_ = v1;
  w.v2_ = v2;
  w.delay_ = delay;
  w.rise_ = std::max(rise, 1e-15);
  w.fall_ = std::max(fall, 1e-15);
  w.width_ = width;
  w.period_ = period;
  return w;
}

Waveform Waveform::pwl(std::vector<std::pair<double, double>> points) {
  require(!points.empty(), "pwl: needs at least one point");
  require(std::is_sorted(points.begin(), points.end(),
                         [](auto& a, auto& b) { return a.first < b.first; }),
          "pwl: points must be time-sorted");
  Waveform w;
  w.kind_ = Kind::Pwl;
  w.points_ = std::move(points);
  return w;
}

double Waveform::at(double t) const {
  if (t < 0) t = 0;
  switch (kind_) {
    case Kind::Dc:
      return v1_;
    case Kind::Pulse: {
      if (t < delay_) return v1_;
      double local = t - delay_;
      if (period_ > 0) local = std::fmod(local, period_);
      if (local < rise_) return v1_ + (v2_ - v1_) * local / rise_;
      local -= rise_;
      if (local < width_) return v2_;
      local -= width_;
      if (local < fall_) return v2_ + (v1_ - v2_) * local / fall_;
      return v1_;
    }
    case Kind::Pwl: {
      if (t <= points_.front().first) return points_.front().second;
      if (t >= points_.back().first) return points_.back().second;
      for (std::size_t i = 1; i < points_.size(); ++i) {
        if (t <= points_[i].first) {
          const auto& [t0, v0] = points_[i - 1];
          const auto& [t1, v1] = points_[i];
          if (t1 == t0) return v1;
          return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
        }
      }
      return points_.back().second;
    }
  }
  return 0.0;
}

Node Circuit::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return 0;
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const Node n = static_cast<Node>(names_.size());
  names_.push_back(name);
  index_[name] = n;
  return n;
}

const std::string& Circuit::node_name(Node n) const {
  ensure(n >= 0 && n < node_count(), "node_name: out of range");
  return names_[static_cast<std::size_t>(n)];
}

Node Circuit::find(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return 0;
  auto it = index_.find(name);
  require(it != index_.end(), "Circuit: no node named '" + name + "'");
  return it->second;
}

void Circuit::add_resistor(const std::string& a, const std::string& b,
                           double ohms) {
  require(ohms > 0, "resistor: non-positive resistance");
  resistors_.push_back({node(a), node(b), ohms});
}

void Circuit::add_capacitor(const std::string& a, const std::string& b,
                            double f) {
  require(f > 0, "capacitor: non-positive capacitance");
  capacitors_.push_back({node(a), node(b), f});
}

void Circuit::add_vsource(const std::string& pos, const std::string& neg,
                          Waveform wave) {
  vsources_.push_back({node(pos), node(neg), std::move(wave)});
}

void Circuit::add_isource(const std::string& pos, const std::string& neg,
                          Waveform wave) {
  isources_.push_back({node(pos), node(neg), std::move(wave)});
}

void Circuit::add_mosfet(MosType type, const std::string& d,
                         const std::string& g, const std::string& s,
                         double w_um, double l_um, const MosModel& model) {
  require(w_um > 0 && l_um > 0, "mosfet: non-positive W or L");
  require(model.kp > 0, "mosfet: non-positive KP");
  mosfets_.push_back({type, node(d), node(g), node(s), w_um, l_um, model});
}

}  // namespace bisram::spice
