#include "spice/engine.hpp"

#include <algorithm>
#include <cmath>

#include "util/linalg.hpp"

namespace bisram::spice {

double Trace::at_time(Node n, double t) const {
  ensure(!times_.empty(), "Trace::at_time: empty trace");
  if (t <= times_.front()) return value(n, 0);
  if (t >= times_.back()) return value(n, times_.size() - 1);
  const auto it = std::lower_bound(times_.begin(), times_.end(), t);
  const std::size_t i1 = static_cast<std::size_t>(it - times_.begin());
  const std::size_t i0 = i1 - 1;
  const double t0 = times_[i0], t1 = times_[i1];
  const double v0 = value(n, i0), v1 = value(n, i1);
  if (t1 == t0) return v1;
  return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
}

namespace {

// Level-1 drain current and derivatives for a device whose terminal
// voltages have already been normalized to NMOS polarity with vds >= 0.
struct MosEval {
  double ids;  // drain current, d -> s
  double gm;   // d ids / d vgs
  double gds;  // d ids / d vds
};

MosEval level1(double vgs, double vds, double beta, double vt,
               double lambda_ch) {
  MosEval e{0.0, 0.0, 0.0};
  const double vov = vgs - vt;
  if (vov <= 0.0) return e;  // cutoff
  const double clm = 1.0 + lambda_ch * vds;
  if (vds < vov) {  // linear / triode
    e.ids = beta * (vov * vds - 0.5 * vds * vds) * clm;
    e.gm = beta * vds * clm;
    e.gds = beta * (vov - vds) * clm +
            beta * (vov * vds - 0.5 * vds * vds) * lambda_ch;
  } else {  // saturation
    e.ids = 0.5 * beta * vov * vov * clm;
    e.gm = beta * vov * clm;
    e.gds = 0.5 * beta * vov * vov * lambda_ch;
  }
  return e;
}

// The MNA system: unknowns are node voltages 1..N-1 plus one branch
// current per voltage source.
class Mna {
 public:
  Mna(const Circuit& ckt, const EngineOptions& opt)
      : ckt_(ckt), opt_(opt), nv_(ckt.node_count() - 1),
        nu_(nv_ + static_cast<int>(ckt.vsources().size())),
        a_(static_cast<std::size_t>(nu_), static_cast<std::size_t>(nu_)),
        rhs_(static_cast<std::size_t>(nu_), 0.0) {}

  // Solves f(v) = 0 at time t. `x` carries node voltages (index by Node,
  // ground at [0]) in and out. `cap_geq`/`cap_ieq` are the trapezoidal
  // companion parameters per capacitor (empty for DC).
  // Returns false if Newton failed to converge.
  bool solve(double t, std::vector<double>& x,
             const std::vector<double>& cap_geq,
             const std::vector<double>& cap_ieq, double gmin) {
    std::vector<double> v = pack(x);
    for (int iter = 0; iter < opt_.max_newton; ++iter) {
      build(t, v, cap_geq, cap_ieq, gmin);
      Matrix a = a_;  // lu_solve destroys its input
      std::vector<double> dv;
      try {
        dv = lu_solve(a, rhs_);
      } catch (const Error&) {
        return false;
      }
      double max_dv = 0.0;
      for (int i = 0; i < nv_; ++i) {
        double step = dv[static_cast<std::size_t>(i)] -
                      v[static_cast<std::size_t>(i)];
        step = std::clamp(step, -opt_.vlimit, opt_.vlimit);
        v[static_cast<std::size_t>(i)] += step;
        max_dv = std::max(max_dv, std::abs(step));
      }
      for (int i = nv_; i < nu_; ++i)
        v[static_cast<std::size_t>(i)] = dv[static_cast<std::size_t>(i)];
      if (max_dv < opt_.reltol) {
        unpack(v, x);
        branch_currents_.assign(v.begin() + nv_, v.end());
        return true;
      }
    }
    return false;
  }

  /// Voltage-source branch currents from the last converged solve.
  const std::vector<double>& branch_currents() const {
    return branch_currents_;
  }

 private:
  std::vector<double> pack(const std::vector<double>& x) const {
    std::vector<double> v(static_cast<std::size_t>(nu_), 0.0);
    for (int i = 0; i < nv_; ++i)
      v[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i + 1)];
    return v;
  }
  void unpack(const std::vector<double>& v, std::vector<double>& x) const {
    x.assign(static_cast<std::size_t>(ckt_.node_count()), 0.0);
    for (int i = 0; i < nv_; ++i)
      x[static_cast<std::size_t>(i + 1)] = v[static_cast<std::size_t>(i)];
  }

  double volt(const std::vector<double>& v, Node n) const {
    return n == 0 ? 0.0 : v[static_cast<std::size_t>(n - 1)];
  }

  void stamp_g(Node a, Node b, double g) {
    if (a != 0) a_.at(idx(a), idx(a)) += g;
    if (b != 0) a_.at(idx(b), idx(b)) += g;
    if (a != 0 && b != 0) {
      a_.at(idx(a), idx(b)) -= g;
      a_.at(idx(b), idx(a)) -= g;
    }
  }
  // Current `i` flowing out of node a into node b (i.e. injected into b).
  void stamp_i(Node a, Node b, double i) {
    if (a != 0) rhs_[idx(a)] -= i;
    if (b != 0) rhs_[idx(b)] += i;
  }
  // VCCS: current g*(vc - vd) flows from node a to node b.
  void stamp_vccs(Node a, Node b, Node c, Node d, double g) {
    if (a != 0 && c != 0) a_.at(idx(a), idx(c)) += g;
    if (a != 0 && d != 0) a_.at(idx(a), idx(d)) -= g;
    if (b != 0 && c != 0) a_.at(idx(b), idx(c)) -= g;
    if (b != 0 && d != 0) a_.at(idx(b), idx(d)) += g;
  }

  std::size_t idx(Node n) const { return static_cast<std::size_t>(n - 1); }

  void build(double t, const std::vector<double>& v,
             const std::vector<double>& cap_geq,
             const std::vector<double>& cap_ieq, double gmin) {
    a_.clear();
    std::fill(rhs_.begin(), rhs_.end(), 0.0);

    for (int n = 1; n <= nv_; ++n) a_.at(idx(n), idx(n)) += gmin;

    for (const auto& r : ckt_.resistors()) stamp_g(r.a, r.b, 1.0 / r.ohms);

    const auto& caps = ckt_.capacitors();
    for (std::size_t i = 0; i < caps.size(); ++i) {
      if (cap_geq.empty()) continue;  // DC: capacitors open
      stamp_g(caps[i].a, caps[i].b, cap_geq[i]);
      // Companion current source from a to b.
      stamp_i(caps[i].a, caps[i].b, -cap_ieq[i]);
    }

    for (const auto& s : ckt_.isources()) {
      const double i = s.wave.at(t);
      stamp_i(s.pos, s.neg, i);
    }

    for (const auto& m : ckt_.mosfets()) {
      const double sign = m.type == MosType::Nmos ? 1.0 : -1.0;
      // Devices are symmetric: pick the terminal roles so the normalized
      // vds is non-negative (the "source" is the lower terminal for NMOS,
      // the higher for PMOS).
      Node d = m.d, s = m.s;
      if (sign * (volt(v, d) - volt(v, s)) < 0) std::swap(d, s);

      const double vgs_real = volt(v, m.g) - volt(v, s);
      const double vds_real = volt(v, d) - volt(v, s);
      const double vt = std::abs(m.model.vt0);
      const double beta = m.model.kp * m.w_um / m.l_um;
      const MosEval e = level1(sign * vgs_real, sign * vds_real, beta, vt,
                               m.model.lambda_ch);
      // Real current from d to s is i = sign * ids_n. Its derivatives wrt
      // the *real* gate and drain voltages are +gm and +gds for both
      // polarities (the two sign flips cancel), so the stamps are uniform:
      //   i ~= (sign*ids0 - gm*vgs0 - gds*vds0) + gm*vgs + gds*vds.
      stamp_g(d, s, e.gds);
      stamp_vccs(d, s, m.g, s, e.gm);
      stamp_i(d, s, sign * e.ids - e.gm * vgs_real - e.gds * vds_real);
    }

    const auto& vss = ckt_.vsources();
    for (std::size_t k = 0; k < vss.size(); ++k) {
      const auto& src = vss[k];
      const std::size_t row = static_cast<std::size_t>(nv_) + k;
      if (src.pos != 0) {
        a_.at(row, idx(src.pos)) += 1.0;
        a_.at(idx(src.pos), row) += 1.0;
      }
      if (src.neg != 0) {
        a_.at(row, idx(src.neg)) -= 1.0;
        a_.at(idx(src.neg), row) -= 1.0;
      }
      rhs_[row] += src.wave.at(t);
    }
  }

  const Circuit& ckt_;
  EngineOptions opt_;
  int nv_;  // node unknowns (excluding ground)
  int nu_;  // total unknowns
  Matrix a_;
  std::vector<double> rhs_;
  std::vector<double> branch_currents_;
};

DcSolution solve_dc(const Circuit& ckt, const EngineOptions& opt, double t) {
  Mna mna(ckt, opt);
  std::vector<double> x(static_cast<std::size_t>(ckt.node_count()), 0.0);
  // gmin stepping: start with a heavy leak and relax toward opt.gmin.
  for (double gmin = 1e-3; gmin >= opt.gmin; gmin /= 100.0) {
    if (!mna.solve(t, x, {}, {}, gmin))
      throw Error("spice: DC Newton failed to converge (gmin stepping)");
  }
  if (!mna.solve(t, x, {}, {}, opt.gmin))
    throw Error("spice: DC Newton failed to converge");
  return {std::move(x), mna.branch_currents()};
}

}  // namespace

std::vector<double> dc_operating_point(const Circuit& ckt,
                                       const EngineOptions& opt) {
  return solve_dc(ckt, opt, 0.0).voltages;
}

DcSolution dc_operating_point_full(const Circuit& ckt,
                                   const EngineOptions& opt) {
  return solve_dc(ckt, opt, 0.0);
}

Trace transient(const Circuit& ckt, double tstop, double dt,
                const EngineOptions& opt) {
  require(tstop > 0 && dt > 0 && dt <= tstop, "transient: bad time range");
  const std::size_t steps = static_cast<std::size_t>(tstop / dt + 0.5);
  std::vector<double> times(steps + 1);
  for (std::size_t i = 0; i <= steps; ++i)
    times[i] = static_cast<double>(i) * dt;

  Trace trace(ckt.node_count(), times);
  std::vector<double> x = solve_dc(ckt, opt, 0.0).voltages;
  for (Node n = 0; n < ckt.node_count(); ++n) trace.set(n, 0, x[static_cast<std::size_t>(n)]);

  const auto& caps = ckt.capacitors();
  std::vector<double> geq(caps.size(), 0.0), ieq(caps.size(), 0.0);
  std::vector<double> icap(caps.size(), 0.0);  // capacitor current history

  Mna mna(ckt, opt);
  for (std::size_t step = 1; step <= steps; ++step) {
    const double t = times[step];
    // Trapezoidal companion: i_c = geq * v - ieq with
    // geq = 2C/dt, ieq = geq * v_prev + i_prev.
    for (std::size_t i = 0; i < caps.size(); ++i) {
      const double vprev = x[static_cast<std::size_t>(caps[i].a)] -
                           x[static_cast<std::size_t>(caps[i].b)];
      geq[i] = 2.0 * caps[i].farads / dt;
      ieq[i] = geq[i] * vprev + icap[i];
    }
    if (!mna.solve(t, x, geq, ieq, opt.gmin))
      throw Error("spice: transient Newton failed at t=" + std::to_string(t));
    for (std::size_t i = 0; i < caps.size(); ++i) {
      const double vnow = x[static_cast<std::size_t>(caps[i].a)] -
                          x[static_cast<std::size_t>(caps[i].b)];
      icap[i] = geq[i] * vnow - ieq[i];
    }
    for (Node n = 0; n < ckt.node_count(); ++n)
      trace.set(n, step, x[static_cast<std::size_t>(n)]);
  }
  return trace;
}

}  // namespace bisram::spice
