#include "tech/tech.hpp"

#include "util/checkpoint.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace bisram::tech {

namespace {

using geom::dbu;

// Shared scalable rule skeleton (values in lambda, converted to DBU).
// Derived from the public MOSIS SCMOS deck, which is the style of rule
// set the CDA processes also follow.
Tech scmos_skeleton() {
  Tech t;
  auto set = [&](Layer l, double w, double s) {
    t.layer[static_cast<std::size_t>(l)] = {dbu(w), dbu(s)};
  };
  set(Layer::NWell, 10, 9);
  set(Layer::PWell, 10, 9);
  set(Layer::NDiff, 3, 3);
  set(Layer::PDiff, 3, 3);
  set(Layer::Poly, 2, 2);
  set(Layer::Contact, 2, 2);
  set(Layer::Metal1, 3, 2);
  set(Layer::Via1, 2, 3);
  set(Layer::Metal2, 3, 3);
  set(Layer::Via2, 2, 3);
  set(Layer::Metal3, 5, 3);

  t.gate_poly_ext = dbu(2);
  t.diff_gate_ext = dbu(3);
  t.poly_diff_space = dbu(1);
  t.contact_size = dbu(2);
  t.contact_space = dbu(2);
  t.contact_encl_diff = dbu(1.5);
  t.contact_encl_poly = dbu(1.5);
  t.contact_encl_m1 = dbu(1);
  t.via1_size = dbu(2);
  t.via1_encl = dbu(1);
  t.via2_size = dbu(2);
  t.via2_encl = dbu(1);
  t.well_encl_diff = dbu(5);
  t.well_space = dbu(9);
  return t;
}

// Electrical parameters for a given feature size. The level-1 numbers are
// representative textbook values for half-micron-era CMOS; the tool uses
// them for *relative* sizing (rise/fall balancing) and delay ranking, not
// for absolute silicon correlation.
Electrical electrical_for(double feature_um) {
  Electrical e;
  e.vdd = 5.0;
  // Mobility ratio ~2.5..3; KP scales roughly inversely with tox, which
  // shrinks with feature size.
  const double scale = 0.7 / feature_um;  // 1.0 at 0.7 um
  e.nmos = {0.75, 110e-6 * scale, 0.04, 2.3e-15 * scale, 0.4e-15};
  e.pmos = {-0.85, 38e-6 * scale, 0.05, 2.3e-15 * scale, 0.5e-15};

  auto wire = [&](Layer l, double rs, double ca, double cf) {
    e.wire[static_cast<std::size_t>(l)] = {rs, ca, cf};
  };
  wire(Layer::NDiff, 60.0, 0.9e-15, 0.0);
  wire(Layer::PDiff, 90.0, 1.0e-15, 0.0);
  wire(Layer::Poly, 25.0, 0.06e-15, 0.04e-15);
  wire(Layer::Metal1, 0.07, 0.03e-15, 0.044e-15);
  wire(Layer::Metal2, 0.07, 0.017e-15, 0.040e-15);
  wire(Layer::Metal3, 0.04, 0.011e-15, 0.038e-15);
  wire(Layer::Contact, 6.0, 0.0, 0.0);   // ohm per cut
  wire(Layer::Via1, 3.0, 0.0, 0.0);
  wire(Layer::Via2, 3.0, 0.0, 0.0);
  return e;
}

Tech make(const std::string& name, double feature_um) {
  Tech t = scmos_skeleton();
  t.name = name;
  t.feature_um = feature_um;
  t.lambda_um = feature_um / 2.0;
  t.elec = electrical_for(feature_um);
  // Signoff budgets, anchored so the paper's largest reference macro
  // (Fig. 6, 4096x128) closes with ~20% margin at 0.7 um; RC delays
  // scale roughly quadratically with feature size at fixed lambda rules.
  const double scale = feature_um / 0.7;
  t.timing.access_budget_s = 16e-9 * scale * scale;
  t.timing.clock_period_s = 18e-9 * scale * scale;
  return t;
}

const std::vector<Tech>& registry() {
  static const std::vector<Tech> techs = {
      make("cda.5u3m1p", 0.5),
      make("cda.7u3m1p", 0.7),
      make("mos.6u3m1pHP", 0.6),
  };
  return techs;
}

}  // namespace

const Tech& technology(std::string_view name) {
  const std::string lowered = to_lower(name);
  for (const Tech& t : registry())
    if (to_lower(t.name) == lowered) return t;
  throw SpecError("unknown technology '" + std::string(name) +
                  "'; known: cda.5u3m1p, cda.7u3m1p, mos.6u3m1pHP");
}

std::vector<std::string> technology_names() {
  std::vector<std::string> names;
  for (const Tech& t : registry()) names.push_back(t.name);
  return names;
}

const Tech& cda_05() { return technology("cda.5u3m1p"); }
const Tech& cda_07() { return technology("cda.7u3m1p"); }
const Tech& mosis_06() { return technology("mos.6u3m1pHP"); }

Tech make_scalable_tech(const std::string& name, double feature_um) {
  require(feature_um >= 0.3 && feature_um <= 3.0,
          "make_scalable_tech: feature size out of the supported range "
          "(the paper targets 0.5 um and above)");
  return make(name, feature_um);
}

std::uint64_t fingerprint(const Tech& t) {
  Fingerprint fp;
  fp.mix_str(t.name).mix_f64(t.feature_um).mix_f64(t.lambda_um);
  fp.mix_i64(t.metal_layers);
  for (const LayerRule& r : t.layer) fp.mix_i64(r.min_width).mix_i64(r.min_space);
  for (geom::Coord c :
       {t.gate_poly_ext, t.diff_gate_ext, t.poly_diff_space, t.contact_size,
        t.contact_space, t.contact_encl_diff, t.contact_encl_poly,
        t.contact_encl_m1, t.via1_size, t.via1_encl, t.via2_size, t.via2_encl,
        t.well_encl_diff, t.well_space})
    fp.mix_i64(c);
  fp.mix_f64(t.elec.vdd);
  for (const MosParams* m : {&t.elec.nmos, &t.elec.pmos})
    fp.mix_f64(m->vt0).mix_f64(m->kp).mix_f64(m->lambda_ch)
        .mix_f64(m->cox_f_um2).mix_f64(m->cj_f_um2);
  for (const WireParams& w : t.elec.wire)
    fp.mix_f64(w.sheet_ohm).mix_f64(w.cap_area_f_um2).mix_f64(w.cap_fringe_f_um);
  fp.mix_f64(t.timing.access_budget_s).mix_f64(t.timing.clock_period_s);
  return fp.value();
}

}  // namespace bisram::tech
