#pragma once
// Technology database: lambda-based design rules plus electrical
// parameters for the 3-metal CMOS processes BISRAMGEN supports.
//
// The paper names CDA.53m1p (0.5 um), CDA.73m1p (0.7 um) and the MOSIS
// process mos.63m1pHP (0.6 um). The proprietary decks are not public, so
// we reconstruct scalable (SCMOS-style) rule sets with the correct feature
// sizes — see DESIGN.md section 2 for the substitution rationale. All
// rule values are in DBU (lambda/10), so decks scale with the process
// exactly as a lambda-rule deck should.

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "geom/geometry.hpp"
#include "geom/layer.hpp"

namespace bisram::tech {

using geom::Coord;
using geom::Layer;

/// Per-layer width/space rules.
struct LayerRule {
  Coord min_width = 0;
  Coord min_space = 0;
};

/// Shichman-Hodges (SPICE level-1) device parameters.
struct MosParams {
  double vt0 = 0.0;       ///< threshold voltage [V] (negative for PMOS)
  double kp = 0.0;        ///< transconductance u0*Cox [A/V^2]
  double lambda_ch = 0.0; ///< channel-length modulation [1/V]
  double cox_f_um2 = 0.0; ///< gate oxide capacitance [F/um^2]
  double cj_f_um2 = 0.0;  ///< junction area capacitance [F/um^2]
};

/// Interconnect parasitics per routing layer.
struct WireParams {
  double sheet_ohm = 0.0;     ///< sheet resistance [ohm/sq]
  double cap_area_f_um2 = 0;  ///< area capacitance to substrate [F/um^2]
  double cap_fringe_f_um = 0; ///< fringe capacitance [F/um]
};

/// Electrical section of a process.
struct Electrical {
  double vdd = 5.0;
  MosParams nmos;
  MosParams pmos;
  std::array<WireParams, geom::kLayerCount> wire{};
};

/// Signoff timing budgets for the process (deck key `timing`). A zero
/// value disables that constraint: the STA then reports relative slack
/// only. The registered decks carry budgets sized so the paper's
/// flagship macros close with margin — see sta/access_path.hpp for the
/// engine that checks them.
struct TimingBudget {
  double access_budget_s = 0;  ///< read access-time ceiling
  double clock_period_s = 0;   ///< target clock for setup slack
};

/// A complete process description.
struct Tech {
  std::string name;      ///< e.g. "cda.7u3m1p"
  double feature_um = 0; ///< drawn feature size (min gate length)
  double lambda_um = 0;  ///< scalable-rule lambda (= feature / 2)
  int metal_layers = 3;

  std::array<LayerRule, geom::kLayerCount> layer{};

  // Transistor and via construction rules (DBU).
  Coord gate_poly_ext = 0;     ///< poly endcap past diffusion
  Coord diff_gate_ext = 0;     ///< source/drain diffusion past gate
  Coord poly_diff_space = 0;   ///< field poly to unrelated diffusion
  Coord contact_size = 0;
  Coord contact_space = 0;
  Coord contact_encl_diff = 0;
  Coord contact_encl_poly = 0;
  Coord contact_encl_m1 = 0;
  Coord via1_size = 0;
  Coord via1_encl = 0;  ///< metal1/metal2 enclosure of via1
  Coord via2_size = 0;
  Coord via2_encl = 0;  ///< metal2/metal3 enclosure of via2
  Coord well_encl_diff = 0;
  Coord well_space = 0;

  Electrical elec;
  TimingBudget timing;

  /// Rule accessor with bounds checking.
  const LayerRule& rule(Layer l) const {
    return layer[static_cast<std::size_t>(l)];
  }

  /// DBU -> micrometres.
  double um(Coord c) const { return geom::to_lambda(c) * lambda_um; }
  /// DBU^2 -> mm^2 (for macro area reporting).
  double mm2(double dbu2) const {
    const double um_per_dbu = lambda_um / 10.0;
    return dbu2 * um_per_dbu * um_per_dbu * 1e-6;
  }
  /// Micrometres -> DBU (rounded).
  Coord from_um(double um_value) const {
    return geom::dbu(um_value / lambda_um);
  }
};

/// Returns the process registered under `name` ("cda.5u3m1p",
/// "cda.7u3m1p", "mos.6u3m1pHP"); throws bisram::SpecError when unknown.
const Tech& technology(std::string_view name);

/// Names of every registered process, for enumeration in tools/tests.
std::vector<std::string> technology_names();

/// Convenience factories for the three paper processes.
const Tech& cda_05();
const Tech& cda_07();
const Tech& mosis_06();

/// Builds a complete scalable (SCMOS-style) process for an arbitrary
/// feature size — the starting point user decks override (tech_file.hpp).
Tech make_scalable_tech(const std::string& name, double feature_um);

/// Content hash over every field of the deck (rules, electrical
/// parameters, timing budgets — and the name, which reports carry).
/// This is the cache key for everything that is a pure function of the
/// rule deck: two decks that happen to share a name but differ in any
/// rule get different fingerprints, so the leaf-timing and DSE caches
/// can never serve one deck's results to the other.
std::uint64_t fingerprint(const Tech& t);

}  // namespace bisram::tech
