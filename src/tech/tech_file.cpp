#include "tech/tech_file.hpp"

#include <istream>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bisram::tech {

namespace {

Layer layer_by_name(const std::string& name) {
  for (Layer l : geom::all_layers())
    if (geom::layer_name(l) == name) return l;
  throw SpecError("tech deck: unknown layer '" + name + "'");
}

double num(const std::string& token, int line_no) {
  try {
    return std::stod(token);
  } catch (...) {
    throw SpecError("tech deck line " + std::to_string(line_no) +
                    ": bad number '" + token + "'");
  }
}

}  // namespace

Tech read_tech_file(std::istream& is) {
  // Two-pass: feature size first (it scales everything), then overrides.
  std::vector<std::string> lines;
  std::string raw;
  while (std::getline(is, raw)) lines.push_back(raw);

  std::string name = "user.tech";
  double feature = 0.0;
  for (const auto& l : lines) {
    const auto tokens = split(trim(l), " \t");
    if (tokens.size() >= 2 && tokens[0] == "name") name = tokens[1];
    if (tokens.size() >= 2 && tokens[0] == "feature_um")
      feature = std::stod(tokens[1]);
  }
  require(feature > 0.0, "tech deck: missing feature_um");
  Tech t = make_scalable_tech(name, feature);

  int line_no = 0;
  for (const auto& l : lines) {
    ++line_no;
    const std::string line = trim(l);
    if (line.empty() || line[0] == '#') continue;
    const auto tok = split(line, " \t");
    const std::string& key = tok[0];
    auto need = [&](std::size_t n) {
      require(tok.size() >= n, "tech deck line " + std::to_string(line_no) +
                                   ": too few fields for '" + key + "'");
    };

    if (key == "name" || key == "feature_um") {
      continue;  // handled in the first pass
    } else if (key == "metals") {
      need(2);
      t.metal_layers = static_cast<int>(num(tok[1], line_no));
      require(t.metal_layers >= 3,
              "tech deck: BISRAMGEN requires three metal layers");
    } else if (key == "layer") {
      need(6);
      const Layer layer = layer_by_name(tok[1]);
      auto& rule = t.layer[static_cast<std::size_t>(layer)];
      for (std::size_t i = 2; i + 1 < tok.size(); i += 2) {
        if (tok[i] == "width") rule.min_width = geom::dbu(num(tok[i + 1], line_no));
        else if (tok[i] == "space") rule.min_space = geom::dbu(num(tok[i + 1], line_no));
        else throw SpecError("tech deck line " + std::to_string(line_no) +
                             ": unknown layer attribute '" + tok[i] + "'");
      }
    } else if (key == "rule") {
      need(3);
      const std::map<std::string, geom::Coord Tech::*> rules = {
          {"gate_poly_ext", &Tech::gate_poly_ext},
          {"diff_gate_ext", &Tech::diff_gate_ext},
          {"poly_diff_space", &Tech::poly_diff_space},
          {"contact_size", &Tech::contact_size},
          {"contact_space", &Tech::contact_space},
          {"contact_encl_diff", &Tech::contact_encl_diff},
          {"contact_encl_poly", &Tech::contact_encl_poly},
          {"contact_encl_m1", &Tech::contact_encl_m1},
          {"via1_size", &Tech::via1_size},
          {"via1_encl", &Tech::via1_encl},
          {"via2_size", &Tech::via2_size},
          {"via2_encl", &Tech::via2_encl},
          {"well_encl_diff", &Tech::well_encl_diff},
          {"well_space", &Tech::well_space},
      };
      auto it = rules.find(tok[1]);
      if (it == rules.end())
        throw SpecError("tech deck line " + std::to_string(line_no) +
                        ": unknown rule '" + tok[1] + "'");
      t.*(it->second) = geom::dbu(num(tok[2], line_no));
    } else if (key == "vdd") {
      need(2);
      t.elec.vdd = num(tok[1], line_no);
    } else if (key == "nmos" || key == "pmos") {
      MosParams& p = key == "nmos" ? t.elec.nmos : t.elec.pmos;
      for (std::size_t i = 1; i + 1 < tok.size(); i += 2) {
        if (tok[i] == "vt0") p.vt0 = num(tok[i + 1], line_no);
        else if (tok[i] == "kp") p.kp = num(tok[i + 1], line_no);
        else if (tok[i] == "lambda") p.lambda_ch = num(tok[i + 1], line_no);
        else throw SpecError("tech deck line " + std::to_string(line_no) +
                             ": unknown device attribute '" + tok[i] + "'");
      }
    } else if (key == "wire") {
      need(4);
      const Layer layer = layer_by_name(tok[1]);
      auto& w = t.elec.wire[static_cast<std::size_t>(layer)];
      for (std::size_t i = 2; i + 1 < tok.size(); i += 2) {
        if (tok[i] == "sheet") w.sheet_ohm = num(tok[i + 1], line_no);
        else if (tok[i] == "area") w.cap_area_f_um2 = num(tok[i + 1], line_no);
        else if (tok[i] == "fringe") w.cap_fringe_f_um = num(tok[i + 1], line_no);
        else throw SpecError("tech deck line " + std::to_string(line_no) +
                             ": unknown wire attribute '" + tok[i] + "'");
      }
    } else {
      throw SpecError("tech deck line " + std::to_string(line_no) +
                      ": unknown keyword '" + key + "'");
    }
  }

  // Sanity constraints that generators rely on.
  require(t.elec.nmos.kp > 0 && t.elec.pmos.kp > 0,
          "tech deck: device KP must be positive");
  require(t.contact_size > 0 && t.via1_size > 0 && t.via2_size > 0,
          "tech deck: via sizes must be positive");

  // The leaf-cell generators are architected against the scalable
  // (SCMOS-style) rule envelope: any *tighter* deck works unchanged
  // (everything is drawn in lambda), but a deck with looser-than-envelope
  // spacing or width would need re-architected cells. Reject those
  // explicitly instead of producing DRC-dirty layouts.
  const Tech envelope = make_scalable_tech("envelope", feature);
  for (Layer l : geom::all_layers()) {
    const auto& user = t.rule(l);
    const auto& base = envelope.rule(l);
    require(user.min_width <= base.min_width &&
                user.min_space <= base.min_space,
            std::string("tech deck: layer '") +
                std::string(geom::layer_name(l)) +
                "' rules exceed the scalable envelope the generators "
                "support (tighten, or match the SCMOS baseline)");
  }
  require(t.contact_size <= envelope.contact_size &&
              t.contact_space <= envelope.contact_space &&
              t.well_encl_diff <= envelope.well_encl_diff &&
              t.well_space <= envelope.well_space,
          "tech deck: construction rules exceed the scalable envelope");
  return t;
}

Tech read_tech_string(const std::string& text) {
  std::istringstream ss(text);
  return read_tech_file(ss);
}

std::string write_tech_string(const Tech& t) {
  std::ostringstream os;
  os << "# BISRAMGEN technology deck\n";
  os << "name " << t.name << '\n';
  os << "feature_um " << t.feature_um << '\n';
  os << "metals " << t.metal_layers << '\n';
  for (Layer l : geom::all_layers()) {
    const auto& r = t.rule(l);
    if (r.min_width == 0 && r.min_space == 0) continue;
    os << "layer " << geom::layer_name(l) << " width "
       << geom::to_lambda(r.min_width) << " space "
       << geom::to_lambda(r.min_space) << '\n';
  }
  auto rule = [&](const char* key, geom::Coord v) {
    os << "rule " << key << ' ' << geom::to_lambda(v) << '\n';
  };
  rule("gate_poly_ext", t.gate_poly_ext);
  rule("diff_gate_ext", t.diff_gate_ext);
  rule("poly_diff_space", t.poly_diff_space);
  rule("contact_size", t.contact_size);
  rule("contact_space", t.contact_space);
  rule("contact_encl_diff", t.contact_encl_diff);
  rule("contact_encl_poly", t.contact_encl_poly);
  rule("contact_encl_m1", t.contact_encl_m1);
  rule("via1_size", t.via1_size);
  rule("via1_encl", t.via1_encl);
  rule("via2_size", t.via2_size);
  rule("via2_encl", t.via2_encl);
  rule("well_encl_diff", t.well_encl_diff);
  rule("well_space", t.well_space);
  os << "vdd " << t.elec.vdd << '\n';
  os << strfmt("nmos vt0 %.9g kp %.9g lambda %.9g\n", t.elec.nmos.vt0,
               t.elec.nmos.kp, t.elec.nmos.lambda_ch);
  os << strfmt("pmos vt0 %.9g kp %.9g lambda %.9g\n", t.elec.pmos.vt0,
               t.elec.pmos.kp, t.elec.pmos.lambda_ch);
  for (Layer l : {Layer::Poly, Layer::Metal1, Layer::Metal2, Layer::Metal3}) {
    const auto& w = t.elec.wire[static_cast<std::size_t>(l)];
    os << "wire " << geom::layer_name(l)
       << strfmt(" sheet %.9g area %.9g fringe %.9g\n", w.sheet_ohm,
                 w.cap_area_f_um2, w.cap_fringe_f_um);
  }
  return os.str();
}

}  // namespace bisram::tech
