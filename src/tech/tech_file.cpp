#include "tech/tech_file.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bisram::tech {

namespace {

bool layer_by_name(const std::string& name, Layer* out) {
  for (Layer l : geom::all_layers())
    if (geom::layer_name(l) == name) {
      *out = l;
      return true;
    }
  return false;
}

/// strtod with full-token validation: rejects empty, partial, infinite
/// and out-of-range tokens instead of throwing or silently truncating.
bool parse_num(const std::string& token, double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (errno == ERANGE || end == token.c_str() || *end != '\0' ||
      !std::isfinite(v))
    return false;
  *out = v;
  return true;
}

}  // namespace

Tech read_tech_file(std::istream& is, DiagEngine* diag) {
  DiagEngine local("<tech>");
  DiagEngine& eng = diag ? *diag : local;
  // Two-pass: feature size first (it scales everything), then overrides.
  std::vector<std::string> lines;
  std::string raw;
  while (std::getline(is, raw)) lines.push_back(raw);

  std::string name = "user.tech";
  double feature = 0.0;
  bool feature_seen = false;
  {
    int line_no = 0;
    for (const auto& l : lines) {
      ++line_no;
      const auto tokens = split(trim(l), " \t");
      if (tokens.size() >= 2 && tokens[0] == "name") name = tokens[1];
      if (tokens.size() >= 2 && tokens[0] == "feature_um") {
        feature_seen = true;
        double f = 0.0;
        if (!parse_num(tokens[1], &f) || f <= 0.0)
          eng.error("tech-bad-number",
                    "feature_um must be a positive number, got '" +
                        tokens[1] + "'",
                    line_no);
        else if (f < 0.3 || f > 3.0)
          // make_scalable_tech's supported range; out-of-range decks
          // still parse against the SCMOS baseline below.
          eng.error("tech-unsupported-feature",
                    "feature_um " + tokens[1] +
                        " is outside the supported 0.3..3.0 um range",
                    line_no);
        else
          feature = f;
      }
    }
  }
  if (!feature_seen)
    eng.error("tech-missing-feature", "missing feature_um (the deck's "
              "scale; every lambda rule derives from it)");
  // On a broken scale, parse the rest against the SCMOS baseline so one
  // pass still reports every other problem in the deck.
  Tech t = make_scalable_tech(name, feature > 0.0 ? feature : 0.6);

  int line_no = 0;
  for (const auto& l : lines) {
    ++line_no;
    if (eng.saturated()) break;  // pathological input: stop at the cap
    const std::string line = trim(l);
    if (line.empty() || line[0] == '#') continue;
    const auto tok = split(line, " \t");
    const std::string& key = tok[0];
    auto need = [&](std::size_t n) {
      if (tok.size() >= n) return true;
      eng.error("tech-too-few-fields", "too few fields for '" + key + "'",
                line_no);
      return false;
    };
    auto num = [&](const std::string& token, double* out) {
      if (parse_num(token, out)) return true;
      eng.error("tech-bad-number", "bad number '" + token + "'", line_no);
      return false;
    };

    if (key == "name" || key == "feature_um") {
      continue;  // handled in the first pass
    } else if (key == "metals") {
      double m = 0.0;
      if (!need(2) || !num(tok[1], &m)) continue;
      if (m < 3) {
        eng.error("tech-too-few-metals",
                  "BISRAMGEN requires three metal layers", line_no);
        continue;
      }
      t.metal_layers = static_cast<int>(m);
    } else if (key == "layer") {
      if (!need(6)) continue;
      Layer layer = Layer::Metal1;
      if (!layer_by_name(tok[1], &layer)) {
        eng.error("tech-unknown-layer", "unknown layer '" + tok[1] + "'",
                  line_no);
        continue;
      }
      auto& rule = t.layer[static_cast<std::size_t>(layer)];
      for (std::size_t i = 2; i + 1 < tok.size(); i += 2) {
        double v = 0.0;
        if (tok[i] == "width") {
          if (num(tok[i + 1], &v)) rule.min_width = geom::dbu(v);
        } else if (tok[i] == "space") {
          if (num(tok[i + 1], &v)) rule.min_space = geom::dbu(v);
        } else {
          eng.error("tech-unknown-attribute",
                    "unknown layer attribute '" + tok[i] + "'", line_no);
        }
      }
    } else if (key == "rule") {
      if (!need(3)) continue;
      const std::map<std::string, geom::Coord Tech::*> rules = {
          {"gate_poly_ext", &Tech::gate_poly_ext},
          {"diff_gate_ext", &Tech::diff_gate_ext},
          {"poly_diff_space", &Tech::poly_diff_space},
          {"contact_size", &Tech::contact_size},
          {"contact_space", &Tech::contact_space},
          {"contact_encl_diff", &Tech::contact_encl_diff},
          {"contact_encl_poly", &Tech::contact_encl_poly},
          {"contact_encl_m1", &Tech::contact_encl_m1},
          {"via1_size", &Tech::via1_size},
          {"via1_encl", &Tech::via1_encl},
          {"via2_size", &Tech::via2_size},
          {"via2_encl", &Tech::via2_encl},
          {"well_encl_diff", &Tech::well_encl_diff},
          {"well_space", &Tech::well_space},
      };
      auto it = rules.find(tok[1]);
      if (it == rules.end()) {
        eng.error("tech-unknown-rule", "unknown rule '" + tok[1] + "'",
                  line_no);
        continue;
      }
      double v = 0.0;
      if (num(tok[2], &v)) t.*(it->second) = geom::dbu(v);
    } else if (key == "vdd") {
      double v = 0.0;
      if (need(2) && num(tok[1], &v)) t.elec.vdd = v;
    } else if (key == "nmos" || key == "pmos") {
      MosParams& p = key == "nmos" ? t.elec.nmos : t.elec.pmos;
      for (std::size_t i = 1; i + 1 < tok.size(); i += 2) {
        double v = 0.0;
        if (tok[i] == "vt0") {
          if (num(tok[i + 1], &v)) p.vt0 = v;
        } else if (tok[i] == "kp") {
          if (num(tok[i + 1], &v)) p.kp = v;
        } else if (tok[i] == "lambda") {
          if (num(tok[i + 1], &v)) p.lambda_ch = v;
        } else {
          eng.error("tech-unknown-attribute",
                    "unknown device attribute '" + tok[i] + "'", line_no);
        }
      }
    } else if (key == "timing") {
      for (std::size_t i = 1; i + 1 < tok.size(); i += 2) {
        double v = 0.0;
        if (tok[i] == "access_ns") {
          if (num(tok[i + 1], &v)) t.timing.access_budget_s = v * 1e-9;
        } else if (tok[i] == "clock_ns") {
          if (num(tok[i + 1], &v)) t.timing.clock_period_s = v * 1e-9;
        } else if (tok[i] == "access_s") {
          // Exact-seconds forms (what write_tech_string emits): no unit
          // conversion, so a written deck parses back bit-identically.
          if (num(tok[i + 1], &v)) t.timing.access_budget_s = v;
        } else if (tok[i] == "clock_s") {
          if (num(tok[i + 1], &v)) t.timing.clock_period_s = v;
        } else {
          eng.error("tech-unknown-attribute",
                    "unknown timing attribute '" + tok[i] + "'", line_no);
        }
      }
    } else if (key == "wire") {
      if (!need(4)) continue;
      Layer layer = Layer::Metal1;
      if (!layer_by_name(tok[1], &layer)) {
        eng.error("tech-unknown-layer", "unknown layer '" + tok[1] + "'",
                  line_no);
        continue;
      }
      auto& w = t.elec.wire[static_cast<std::size_t>(layer)];
      for (std::size_t i = 2; i + 1 < tok.size(); i += 2) {
        double v = 0.0;
        if (tok[i] == "sheet") {
          if (num(tok[i + 1], &v)) w.sheet_ohm = v;
        } else if (tok[i] == "area") {
          if (num(tok[i + 1], &v)) w.cap_area_f_um2 = v;
        } else if (tok[i] == "fringe") {
          if (num(tok[i + 1], &v)) w.cap_fringe_f_um = v;
        } else {
          eng.error("tech-unknown-attribute",
                    "unknown wire attribute '" + tok[i] + "'", line_no);
        }
      }
    } else {
      eng.error("tech-unknown-keyword", "unknown keyword '" + key + "'",
                line_no);
    }
  }

  // Sanity constraints that generators rely on.
  if (!(t.elec.nmos.kp > 0 && t.elec.pmos.kp > 0))
    eng.error("tech-bad-device", "device KP must be positive");
  if (!(t.contact_size > 0 && t.via1_size > 0 && t.via2_size > 0))
    eng.error("tech-bad-via", "via sizes must be positive");

  // The leaf-cell generators are architected against the scalable
  // (SCMOS-style) rule envelope: any *tighter* deck works unchanged
  // (everything is drawn in lambda), but a deck with looser-than-envelope
  // spacing or width would need re-architected cells. Reject those
  // explicitly instead of producing DRC-dirty layouts.
  const Tech envelope =
      make_scalable_tech("envelope", feature > 0.0 ? feature : 0.6);
  for (Layer l : geom::all_layers()) {
    const auto& user = t.rule(l);
    const auto& base = envelope.rule(l);
    if (!(user.min_width <= base.min_width &&
          user.min_space <= base.min_space))
      eng.error("tech-envelope-exceeded",
                std::string("layer '") + std::string(geom::layer_name(l)) +
                    "' rules exceed the scalable envelope the generators "
                    "support (tighten, or match the SCMOS baseline)");
  }
  if (!(t.contact_size <= envelope.contact_size &&
        t.contact_space <= envelope.contact_space &&
        t.well_encl_diff <= envelope.well_encl_diff &&
        t.well_space <= envelope.well_space))
    eng.error("tech-envelope-exceeded",
              "construction rules exceed the scalable envelope");
  if (!diag) eng.throw_if_errors();
  return t;
}

Tech read_tech_string(const std::string& text, DiagEngine* diag) {
  std::istringstream ss(text);
  return read_tech_file(ss, diag);
}

std::string write_tech_string(const Tech& t) {
  std::ostringstream os;
  os << "# BISRAMGEN technology deck\n";
  os << "name " << t.name << '\n';
  os << strfmt("feature_um %.17g\n", t.feature_um);
  os << "metals " << t.metal_layers << '\n';
  for (Layer l : geom::all_layers()) {
    const auto& r = t.rule(l);
    if (r.min_width == 0 && r.min_space == 0) continue;
    os << "layer " << geom::layer_name(l) << " width "
       << geom::to_lambda(r.min_width) << " space "
       << geom::to_lambda(r.min_space) << '\n';
  }
  auto rule = [&](const char* key, geom::Coord v) {
    os << "rule " << key << ' ' << geom::to_lambda(v) << '\n';
  };
  rule("gate_poly_ext", t.gate_poly_ext);
  rule("diff_gate_ext", t.diff_gate_ext);
  rule("poly_diff_space", t.poly_diff_space);
  rule("contact_size", t.contact_size);
  rule("contact_space", t.contact_space);
  rule("contact_encl_diff", t.contact_encl_diff);
  rule("contact_encl_poly", t.contact_encl_poly);
  rule("contact_encl_m1", t.contact_encl_m1);
  rule("via1_size", t.via1_size);
  rule("via1_encl", t.via1_encl);
  rule("via2_size", t.via2_size);
  rule("via2_encl", t.via2_encl);
  rule("well_encl_diff", t.well_encl_diff);
  rule("well_space", t.well_space);
  os << strfmt("vdd %.17g\n", t.elec.vdd);
  os << strfmt("nmos vt0 %.17g kp %.17g lambda %.17g\n", t.elec.nmos.vt0,
               t.elec.nmos.kp, t.elec.nmos.lambda_ch);
  os << strfmt("pmos vt0 %.17g kp %.17g lambda %.17g\n", t.elec.pmos.vt0,
               t.elec.pmos.kp, t.elec.pmos.lambda_ch);
  for (Layer l : {Layer::Poly, Layer::Metal1, Layer::Metal2, Layer::Metal3}) {
    const auto& w = t.elec.wire[static_cast<std::size_t>(l)];
    os << "wire " << geom::layer_name(l)
       << strfmt(" sheet %.17g area %.17g fringe %.17g\n", w.sheet_ohm,
                 w.cap_area_f_um2, w.cap_fringe_f_um);
  }
  // Seconds, not the human-friendly ns: %.17g round-trips a double
  // exactly, but an ns<->s conversion would cost the last ulp, and deck
  // content fingerprints (tech::fingerprint) must survive a
  // write/read cycle bit-identically.
  if (t.timing.access_budget_s > 0 || t.timing.clock_period_s > 0)
    os << strfmt("timing access_s %.17g clock_s %.17g\n",
                 t.timing.access_budget_s, t.timing.clock_period_s);
  return os.str();
}

}  // namespace bisram::tech
