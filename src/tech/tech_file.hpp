#pragma once
// User-supplied technology decks. The paper's headline tool property is
// design-rule independence — "the ability to generate layouts for any
// input process technology and set of design rules" — so a user must be
// able to hand BISRAMGEN a process description, not just pick from the
// built-ins. This parser reads a simple line-oriented deck:
//
//   # comment
//   name       my.process
//   feature_um 0.6
//   metals     3
//   layer <name> width <lambda> space <lambda>
//   rule  <key> <value-lambda>         # gate_poly_ext, contact_size, ...
//   vdd   5.0
//   nmos  vt0 <V> kp <A/V^2> lambda <1/V>
//   pmos  vt0 <V> kp <A/V^2> lambda <1/V>
//   wire  <layer> sheet <ohm/sq> area <F/um^2> fringe <F/um>
//
// Unspecified values inherit the built-in SCMOS-style defaults, so a
// minimal deck only overrides what differs.

#include <iosfwd>
#include <string>

#include "tech/tech.hpp"
#include "util/diag.hpp"

namespace bisram::tech {

/// Parses a deck. Every problem is reported as a structured diagnostic
/// carrying the 1-based deck line, and the parser recovers at the next
/// line so one pass lists everything wrong with a hand-edited deck.
/// With a DiagEngine the parser never throws — it returns a best-effort
/// Tech (built-in defaults where the deck was unusable) that the caller
/// must gate on diag->ok(). Without one it throws bisram::DiagError
/// (a SpecError) when any error was recorded.
Tech read_tech_file(std::istream& is, DiagEngine* diag = nullptr);

Tech read_tech_string(const std::string& text, DiagEngine* diag = nullptr);

/// Serializes a Tech back into the deck format (round-trip and
/// documentation of the built-ins).
std::string write_tech_string(const Tech& t);

}  // namespace bisram::tech
