#include "core/banking.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace bisram::core {

BankingPoint evaluate_banking(const RamSpec& base, int banks) {
  require(banks >= 1 && is_pow2(static_cast<std::uint64_t>(banks)),
          "evaluate_banking: banks must be a power of two");
  require(base.words % static_cast<std::uint32_t>(banks) == 0,
          "evaluate_banking: banks must divide the word count");

  // Per-bank module: same word width and multiplexing, fewer words.
  RamSpec bank = base;
  bank.words = base.words / static_cast<std::uint32_t>(banks);
  // Spare rows guard each bank (they cannot be shared across banks
  // without inter-bank word routing).
  bank.validate();

  const Generated g = generate(bank);
  const Datasheet& ds = g.sheet;
  const tech::Tech& t = base.resolved_technology();

  BankingPoint p;
  p.banks = banks;

  // Areas: per-bank base replicates; BIST and TLB are shared once.
  const double bank_base =
      ds.array_mm2 + ds.spare_mm2 + ds.decoder_mm2 + ds.periphery_mm2;
  // Inter-bank routing/global-decode overhead: ~2% of the banked base per
  // doubling (the wiring channel between banks).
  const double doublings = log2_ceil(static_cast<std::uint64_t>(banks));
  const double routing = bank_base * banks * 0.02 * doublings;
  p.area_mm2 = bank_base * banks + ds.bist_mm2 + ds.bisr_mm2 + routing;
  p.overhead_pct =
      100.0 * (ds.bist_mm2 + ds.bisr_mm2 + routing) / (bank_base * banks);

  // Access: the bank's own access plus the global bank decoder (one
  // stage per two bank-address bits) plus the global wire to the
  // farthest bank (metal3 RC over half the module's span).
  const double tau = stage_delay_s(t);
  const double global_decode = (doublings / 2.0) * tau;
  const double module_span_um =
      std::sqrt(p.area_mm2) * 1000.0;  // assume near-square module
  const auto& m3 = t.elec.wire[static_cast<std::size_t>(geom::Layer::Metal3)];
  const double w3_um = t.um(t.rule(geom::Layer::Metal3).min_width);
  const double r_wire = m3.sheet_ohm * (module_span_um / 2.0) / w3_um;
  const double c_wire = (module_span_um / 2.0) *
                        (w3_um * m3.cap_area_f_um2 + 2.0 * m3.cap_fringe_f_um);
  // A single "bank" is the flat module: no global decode or wire.
  const double global_wire =
      banks == 1 ? 0.0 : 0.4 * r_wire * c_wire;  // distributed RC
  p.access_ns = (ds.timing.access_s + global_decode + global_wire) * 1e9;
  p.tlb_penalty_ns = ds.timing.tlb_penalty_s * 1e9;

  // Energy: only the selected bank's bit lines swing; the global wire
  // adds its own swing.
  const PowerReport pw = estimate_power(t, bank.geometry(), ds.timing.access_s);
  p.energy_per_read_pj =
      (pw.read_energy_j +
       (banks == 1 ? 0.0 : c_wire * t.elec.vdd * t.elec.vdd)) *
      1e12;
  return p;
}

std::vector<BankingPoint> banking_sweep(const RamSpec& base,
                                        const std::vector<int>& bank_counts) {
  std::vector<BankingPoint> out;
  out.reserve(bank_counts.size());
  for (int b : bank_counts) out.push_back(evaluate_banking(base, b));
  return out;
}

}  // namespace bisram::core
