#pragma once
// Timing estimation: BISRAMGEN "extracts and simulates leaf cells ahead
// of time, thereby extrapolating timing guarantees for the overall
// system". The model simulates one balanced inverter per process with
// the built-in SPICE engine to calibrate a stage delay tau, then walks
// the access path (decoder -> word line RC -> bit line RC -> column mux
// -> current-mode sense amp) with switch-level RC arithmetic.
//
// The same machinery produces the TLB address-diversion penalty: a
// parallel CAM compare (match-line RC) plus a log-depth priority encode
// and the output mux — the paper reports ~1.2 ns for four spare rows in
// a 0.7 um process, an order of magnitude below the access time.

#include "sim/ram_model.hpp"
#include "sta/leaf.hpp"
#include "tech/tech.hpp"

namespace bisram::core {

struct TimingReport {
  double tau_s = 0;          ///< calibrated inverter stage delay
  double decoder_s = 0;
  double wordline_s = 0;
  double bitline_s = 0;
  double senseamp_s = 0;
  double access_s = 0;       ///< total read access time
  double write_s = 0;        ///< write cycle (full bit-line swing)
  double setup_s = 0;        ///< address setup before clock (TLB overlap)
  double hold_s = 0;         ///< address hold after clock
  double tlb_penalty_s = 0;  ///< address diversion penalty
  double penalty_ratio = 0;  ///< tlb_penalty / access
};

/// Supply currents and energies — the "supply currents and voltages" a
/// RAMGEN-style datasheet reports.
struct PowerReport {
  double vdd = 0;
  double read_energy_j = 0;     ///< energy per read access
  double write_energy_j = 0;    ///< energy per write access
  double active_power_w = 0;    ///< reading back-to-back at min cycle
  double active_current_a = 0;  ///< = active_power / vdd
  double standby_power_w = 0;   ///< leakage of the idle array
};

/// Calibrated stage delay for a process (cached per technology; runs a
/// SPICE transient on a balanced inverter driving a fan-out-of-4 load).
double stage_delay_s(const tech::Tech& t);

/// Full access-path timing for the given geometry and gate sizing.
/// Since the STA engine landed, these numbers come from the path-based
/// analysis of the macro timing graph (sta/access_path.hpp) — the same
/// graph the signoff `timing` check slacks against a clock.
TimingReport estimate_timing(const tech::Tech& t, const sim::RamGeometry& geo,
                             double gate_size);

/// Same analysis from a pre-characterized leaf library (the staged
/// compile API's path: the Compiler session threads its CompileCache's
/// LeafTiming through, so one deck's SPICE work serves every spec).
/// Bit-identical to the 3-argument form for matching inputs.
TimingReport estimate_timing(const tech::Tech& t, const sim::RamGeometry& geo,
                             double gate_size, const sta::LeafTiming& lt);

/// The historical closed-form lumped-RC model, kept as a cross-check
/// oracle: same physics as the STA graph with every path collapsed to
/// one term, so the two must agree to first order (tests pin the ratio).
TimingReport estimate_timing_reference(const tech::Tech& t,
                                       const sim::RamGeometry& geo,
                                       double gate_size);

/// TLB penalty only (used by the spare-count sweep benchmark).
double tlb_penalty_s(const tech::Tech& t, const sim::RamGeometry& geo);

/// Energy and supply-current estimates for the datasheet. `access_s` is
/// the read access time from estimate_timing (sets the min cycle).
PowerReport estimate_power(const tech::Tech& t, const sim::RamGeometry& geo,
                           double access_s);

}  // namespace bisram::core
