#pragma once
// Subarray banking analysis. Chen & Sunada's scheme (paper Section III)
// leans on a hierarchical cell-array organization to keep access time
// down; BISRAMGEN's flat column-multiplexed array instead relies on
// current-mode sensing and the zero-penalty TLB. This module quantifies
// the trade: splitting a module into B banks shortens the bit lines
// (access time falls) but replicates decoders and periphery (area and
// overhead grow), while BIST/BISR stay shared. The bench_banking
// harness sweeps B and reports where each organization wins.

#include <vector>

#include "core/bisramgen.hpp"

namespace bisram::core {

struct BankingPoint {
  int banks = 1;
  double area_mm2 = 0;
  double access_ns = 0;
  double overhead_pct = 0;     ///< BIST+BISR over the banked base area
  double tlb_penalty_ns = 0;
  double energy_per_read_pj = 0;
};

/// Evaluates `base` organized as `banks` equal banks (word-interleaved:
/// each bank holds words/banks words). BIST (ADDGEN/DATAGEN/STREG/TRPLA)
/// and the TLB are instantiated once and shared; decoders and column
/// periphery replicate per bank; a global bank decoder and inter-bank
/// wiring are added analytically. `banks` must be a power of two
/// dividing the word count.
BankingPoint evaluate_banking(const RamSpec& base, int banks);

/// Sweep helper.
std::vector<BankingPoint> banking_sweep(const RamSpec& base,
                                        const std::vector<int>& bank_counts);

}  // namespace bisram::core
