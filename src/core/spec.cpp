#include "core/spec.hpp"

#include "tech/tech.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace bisram::core {

void RamSpec::validate() const {
  geometry();  // words/bpw/bpc/spares consistency
  require(is_pow2(static_cast<std::uint64_t>(bpc)),
          "RamSpec: bpc must be a power of two");
  require(spare_rows == 4 || spare_rows == 8 || spare_rows == 16,
          "RamSpec: spare rows must be 4, 8 or 16 (paper-supported values)");
  require(gate_size >= 1.0 && gate_size <= 8.0,
          "RamSpec: gate_size must be in [1, 8]");
  require(strap_interval >= 0, "RamSpec: negative strap interval");
  require(strap_interval == 0 ||
              (strap_width_lambda >= 8.0 && strap_width_lambda <= 512.0),
          "RamSpec: strap width out of range");
  require(test != nullptr, "RamSpec: null march test");
  require(max_passes >= 2, "RamSpec: needs at least two passes");
  if (custom_tech == nullptr)
    tech::technology(technology);  // throws for unknown processes
  else
    require(custom_tech->metal_layers >= 3,
            "RamSpec: BISRAMGEN requires a three-metal process");
}

const tech::Tech& RamSpec::resolved_technology() const {
  return custom_tech != nullptr ? *custom_tech : tech::technology(technology);
}

}  // namespace bisram::core
