#include "core/spec.hpp"

#include "tech/tech.hpp"
#include "tech/tech_file.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/strings.hpp"

namespace bisram::core {

void RamSpec::validate() const {
  geometry();  // words/bpw/bpc/spares consistency
  require(is_pow2(static_cast<std::uint64_t>(bpc)),
          "RamSpec: bpc must be a power of two");
  require(spare_rows == 4 || spare_rows == 8 || spare_rows == 16,
          "RamSpec: spare rows must be 4, 8 or 16 (paper-supported values)");
  require(gate_size >= 1.0 && gate_size <= 8.0,
          "RamSpec: gate_size must be in [1, 8]");
  require(strap_interval >= 0, "RamSpec: negative strap interval");
  require(strap_interval == 0 ||
              (strap_width_lambda >= 8.0 && strap_width_lambda <= 512.0),
          "RamSpec: strap width out of range");
  require(test != nullptr, "RamSpec: null march test");
  require(max_passes >= 2, "RamSpec: needs at least two passes");
  if (custom_tech == nullptr)
    tech::technology(technology);  // throws for unknown processes
  else
    require(custom_tech->metal_layers >= 3,
            "RamSpec: BISRAMGEN requires a three-metal process");
}

const tech::Tech& RamSpec::resolved_technology() const {
  return custom_tech != nullptr ? *custom_tech : tech::technology(technology);
}

const march::MarchTest* march_test_by_key(const std::string& key) {
  if (key == "ifa9") return &march::ifa9();
  if (key == "ifa13") return &march::ifa13();
  if (key == "matsp") return &march::mats_plus();
  if (key == "marchc") return &march::march_c_minus();
  return nullptr;
}

const char* march_test_key(const march::MarchTest* test) {
  if (test == &march::ifa9()) return "ifa9";
  if (test == &march::ifa13()) return "ifa13";
  if (test == &march::mats_plus()) return "matsp";
  if (test == &march::march_c_minus()) return "marchc";
  throw SpecError("march_test_key: test is not one of the registered four");
}

namespace {

/// Reports `spec-bad-type` against the member's own source position.
void bad_type(DiagEngine& diag, const std::string& key, const JsonValue& v,
              const char* want) {
  diag.error("spec-bad-type",
             strfmt("\"%s\" must be a %s, got %s", key.c_str(), want,
                    v.kind_name()),
             v.line(), v.column());
}

bool get_int(DiagEngine& diag, const std::string& key, const JsonValue& v,
             std::int64_t lo, std::int64_t hi, std::int64_t* out) {
  if (!v.is_number()) {
    bad_type(diag, key, v, "number");
    return false;
  }
  std::int64_t i = 0;
  try {
    i = v.as_i64();
  } catch (const SpecError&) {
    diag.error("spec-bad-value",
               strfmt("\"%s\" must be an integer", key.c_str()), v.line(),
               v.column());
    return false;
  }
  if (i < lo || i > hi) {
    diag.error("spec-bad-value",
               strfmt("\"%s\" = %lld is outside [%lld, %lld]", key.c_str(),
                      static_cast<long long>(i), static_cast<long long>(lo),
                      static_cast<long long>(hi)),
               v.line(), v.column());
    return false;
  }
  *out = i;
  return true;
}

bool get_double(DiagEngine& diag, const std::string& key, const JsonValue& v,
                double* out) {
  if (!v.is_number()) {
    bad_type(diag, key, v, "number");
    return false;
  }
  *out = v.as_double();
  return true;
}

bool get_bool(DiagEngine& diag, const std::string& key, const JsonValue& v,
              bool* out) {
  if (!v.is_bool()) {
    bad_type(diag, key, v, "bool");
    return false;
  }
  *out = v.as_bool();
  return true;
}

}  // namespace

RamSpec RamSpec::from_json_value(const JsonValue& v, DiagEngine& diag) {
  RamSpec spec;
  if (!v.is_object()) {
    diag.error("spec-bad-type",
               strfmt("a RamSpec must be a JSON object, got %s",
                      v.kind_name()),
               v.line(), v.column());
    return spec;
  }
  for (const auto& [key, val] : v.members()) {
    std::int64_t i = 0;
    if (key == "words") {
      if (get_int(diag, key, val, 1, 1u << 28, &i))
        spec.words = static_cast<std::uint32_t>(i);
    } else if (key == "bpw") {
      if (get_int(diag, key, val, 1, 1024, &i)) spec.bpw = static_cast<int>(i);
    } else if (key == "bpc") {
      if (get_int(diag, key, val, 1, 256, &i)) spec.bpc = static_cast<int>(i);
    } else if (key == "spare_rows") {
      if (get_int(diag, key, val, 0, 64, &i))
        spec.spare_rows = static_cast<int>(i);
    } else if (key == "gate_size") {
      get_double(diag, key, val, &spec.gate_size);
    } else if (key == "strap_interval") {
      if (get_int(diag, key, val, 0, 1 << 20, &i))
        spec.strap_interval = static_cast<int>(i);
    } else if (key == "strap_width_lambda") {
      get_double(diag, key, val, &spec.strap_width_lambda);
    } else if (key == "technology") {
      if (val.is_string()) spec.technology = val.as_string();
      else bad_type(diag, key, val, "string");
    } else if (key == "tech_deck") {
      if (!val.is_string()) {
        bad_type(diag, key, val, "string");
        continue;
      }
      // The inline deck parses through its own engine so its line
      // numbers (relative to the deck text) are not confused with the
      // JSON document's; errors are re-reported under one stable code.
      DiagEngine deck_diag(diag.file() + ":tech_deck");
      tech::Tech t = tech::read_tech_string(val.as_string(), &deck_diag);
      if (deck_diag.ok()) {
        spec.technology = t.name;
        spec.custom_tech = std::make_shared<const tech::Tech>(std::move(t));
      } else {
        for (const Diagnostic& d : deck_diag.diagnostics())
          if (d.severity == Severity::Error)
            diag.error("spec-bad-tech-deck",
                       strfmt("tech_deck line %d: %s", d.line,
                              d.message.c_str()),
                       val.line(), val.column());
      }
    } else if (key == "test") {
      if (!val.is_string()) {
        bad_type(diag, key, val, "string");
        continue;
      }
      const march::MarchTest* t = march_test_by_key(val.as_string());
      if (t == nullptr)
        diag.error("spec-unknown-test",
                   strfmt("unknown march test \"%s\" (known: ifa9, ifa13, "
                          "matsp, marchc)",
                          val.as_string().c_str()),
                   val.line(), val.column());
      else
        spec.test = t;
    } else if (key == "max_passes") {
      if (get_int(diag, key, val, 2, 64, &i))
        spec.max_passes = static_cast<int>(i);
    } else if (key == "johnson_backgrounds") {
      get_bool(diag, key, val, &spec.johnson_backgrounds);
    } else if (key == "run_drc") {
      get_bool(diag, key, val, &spec.run_drc);
    } else {
      diag.error("spec-unknown-field",
                 strfmt("unknown RamSpec field \"%s\"", key.c_str()),
                 val.line(), val.column());
    }
  }
  if (!diag.ok()) return spec;
  // Semantic validation through the non-throwing channel, so a sweep
  // file with one bad point reports it instead of aborting the parse.
  try {
    spec.validate();
  } catch (const SpecError& e) {
    diag.error("spec-invalid", e.what(), v.line(), v.column());
  }
  return spec;
}

RamSpec RamSpec::from_json(const std::string& text, DiagEngine* diag,
                           const std::string& source) {
  DiagEngine local(source);
  DiagEngine& eng = diag ? *diag : local;
  const JsonValue v = parse_json(text, &eng, source);
  RamSpec spec;
  if (eng.ok()) spec = from_json_value(v, eng);
  if (!diag) local.throw_if_errors();
  return spec;
}

std::string RamSpec::to_json() const {
  JsonWriter j;
  j.begin_object();
  j.key("words").value(static_cast<std::uint64_t>(words));
  j.key("bpw").value(bpw);
  j.key("bpc").value(bpc);
  j.key("spare_rows").value(spare_rows);
  j.key("gate_size").value(gate_size);
  j.key("strap_interval").value(strap_interval);
  j.key("strap_width_lambda").value(strap_width_lambda);
  j.key("technology").value(technology);
  if (custom_tech) j.key("tech_deck").value(tech::write_tech_string(*custom_tech));
  j.key("test").value(march_test_key(test));
  j.key("max_passes").value(max_passes);
  j.key("johnson_backgrounds").value(johnson_backgrounds);
  j.key("run_drc").value(run_drc);
  j.end_object();
  return j.str();
}

}  // namespace bisram::core
