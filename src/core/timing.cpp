#include "core/timing.hpp"

#include <algorithm>
#include <cmath>

#include "spice/sizing.hpp"
#include "sta/access_path.hpp"
#include "sta/leaf.hpp"
#include "util/math.hpp"

namespace bisram::core {

double stage_delay_s(const tech::Tech& t) { return sta::stage_delay_s(t); }

TimingReport estimate_timing(const tech::Tech& t, const sim::RamGeometry& geo,
                             double gate_size) {
  const int row_bits = std::max(
      1, log2_ceil(static_cast<std::uint64_t>(geo.rows())));
  return estimate_timing(t, geo, gate_size,
                         sta::characterize(t, gate_size, row_bits));
}

TimingReport estimate_timing(const tech::Tech& t, const sim::RamGeometry& geo,
                             double gate_size, const sta::LeafTiming& lt) {
  // Path-based numbers from the STA access-path graph (sta/access_path):
  // the worst dout[b] endpoint arrival is the read access time, the
  // worst cell[b] arrival the write time, and the decoder/wordline/
  // bitline/senseamp split comes from the worst read path's arc tags.
  const sta::AccessTiming at = sta::analyze_access_path(t, geo, gate_size, lt);
  TimingReport r;
  r.tau_s = at.tau_s;
  r.decoder_s = at.decoder_s;
  r.wordline_s = at.wordline_s;
  r.bitline_s = at.bitline_s;
  r.senseamp_s = at.senseamp_s;
  r.access_s = at.access_s;
  r.write_s = at.write_s;

  // Synchronous interface (paper section VI, masking technique 2): the
  // TLB compare overlaps the low clock phase, so the address must be
  // valid one TLB delay before the active edge; hold is one stage delay.
  r.tlb_penalty_s = tlb_penalty_s(t, geo);
  r.setup_s = r.tlb_penalty_s;
  r.hold_s = r.tau_s;
  r.penalty_ratio = r.tlb_penalty_s / r.access_s;
  return r;
}

TimingReport estimate_timing_reference(const tech::Tech& t,
                                       const sim::RamGeometry& geo,
                                       double gate_size) {
  TimingReport r;
  r.tau_s = stage_delay_s(t);

  // Decoder: a NAND of log2(rows) inputs realized as a two-level tree,
  // roughly (2 + log4(rows)) logic stages, plus the word-line driver.
  const int row_bits = log2_ceil(static_cast<std::uint64_t>(geo.rows()));
  r.decoder_s = (2.0 + row_bits / 2.0) * r.tau_s;

  // Word line: driver resistance against the distributed line cap
  // (lumped RC with the 0.7 Elmore factor for a distributed load).
  const double r_driver = spice::device_on_resistance(
      t, spice::MosType::Pmos, 8.0 * gate_size * t.lambda_um);
  const double c_wl = geo.cols() * sta::wordline_cap_per_cell_f(t);
  r.wordline_s = 0.7 * r_driver * c_wl;

  // Bit line: cell pull-down discharging the line through the pass
  // device; current-mode sensing needs only a small swing (~10%), which
  // is where the technique's speed comes from.
  const double r_cell =
      spice::device_on_resistance(t, spice::MosType::Nmos, 6.0 * t.lambda_um) *
      2.0;  // pull-down in series with the pass device
  const double c_bl = geo.total_rows() * sta::bitline_cap_per_cell_f(t);
  r.bitline_s = 0.1 * r_cell * c_bl;

  // Column mux (one pass stage) + current-mode sense amplifier.
  r.senseamp_s = 3.0 * r.tau_s;

  r.access_s = r.decoder_s + r.wordline_s + r.bitline_s + r.senseamp_s;

  // Write: the driver forces a full swing through the pass device, but
  // the sense amp is bypassed ("in write mode, the sense amplifier is
  // bypassed and the bit-lines are directly accessed").
  const double r_drv = spice::device_on_resistance(
      t, spice::MosType::Nmos, 6.0 * gate_size * t.lambda_um);
  const double c_bl_w = geo.total_rows() * sta::bitline_cap_per_cell_f(t);
  r.write_s = r.decoder_s + r.wordline_s + 0.7 * r_drv * c_bl_w;

  r.tlb_penalty_s = tlb_penalty_s(t, geo);
  r.setup_s = r.tlb_penalty_s;
  r.hold_s = r.tau_s;
  r.penalty_ratio = r.tlb_penalty_s / r.access_s;
  return r;
}

PowerReport estimate_power(const tech::Tech& t, const sim::RamGeometry& geo,
                           double access_s) {
  PowerReport p;
  p.vdd = t.elec.vdd;
  const double c_bl = geo.total_rows() * sta::bitline_cap_per_cell_f(t);
  const double c_wl = geo.cols() * sta::wordline_cap_per_cell_f(t);

  // Read: one word line swings rail to rail; every column's bit-line
  // pair is precharged back through the ~10% current-mode sensing swing;
  // the selected word's sense amps and output drivers switch fully.
  const double e_wl = c_wl * p.vdd * p.vdd;
  const double e_bl_read = geo.cols() * 2.0 * c_bl * p.vdd * (0.1 * p.vdd);
  const double e_sense = geo.bpw * 50e-15 * p.vdd * p.vdd;
  p.read_energy_j = e_wl + e_bl_read + e_sense;

  // Write: the selected word's bpw column pairs swing fully; the rest
  // see only the precharge swing.
  const double e_bl_write = geo.bpw * 2.0 * c_bl * p.vdd * p.vdd +
                            (geo.cols() - geo.bpw) * 2.0 * c_bl * p.vdd *
                                (0.1 * p.vdd);
  p.write_energy_j = e_wl + e_bl_write;

  // Back-to-back reads at the minimum cycle (= access time).
  p.active_power_w = p.read_energy_j / access_s;
  p.active_current_a = p.active_power_w / p.vdd;

  // Standby: subthreshold leakage of the cell array (one off NMOS path
  // per cell at the era-typical off current).
  const double ioff_per_cell = 1e-12;  // 1 pA per cell, half-micron era
  p.standby_power_w =
      static_cast<double>(geo.total_rows()) * geo.cols() * ioff_per_cell *
      p.vdd;
  return p;
}

double tlb_penalty_s(const tech::Tech& t, const sim::RamGeometry& geo) {
  const double tau = stage_delay_s(t);
  const int entries = std::max(1, geo.spare_words());
  const int key_bits = log2_ceil(std::max<std::uint64_t>(geo.words, 2));

  // Match line: every CAM bit hangs a compare pull-down on it; the worst
  // case discharges through one XOR stack.
  const double lam = t.lambda_um;
  const double c_per_bit =
      (6.0 * lam) * (5.0 * lam) * t.elec.nmos.cj_f_um2 +
      (56.0 * lam) * (3.0 * lam) *
          t.elec.wire[static_cast<std::size_t>(geom::Layer::Metal1)]
              .cap_area_f_um2;
  const double r_stack =
      2.0 * spice::device_on_resistance(t, spice::MosType::Nmos, 6.0 * lam);
  const double match_s = 0.7 * r_stack * key_bits * c_per_bit;

  // Parallel compare resolves in one CAM delay; the hit then threads a
  // log-depth priority encoder (newest entry wins) and the address mux.
  const int levels = log2_ceil(static_cast<std::uint64_t>(entries));
  return match_s + tau * (2.0 + levels);
}

}  // namespace bisram::core
