#include "core/compiler.hpp"

#include <utility>

#include "macro/macros.hpp"
#include "util/checkpoint.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/strings.hpp"

namespace bisram::core {

std::uint64_t layout_fingerprint(const RamSpec& spec, const tech::Tech& t) {
  Fingerprint fp;
  fp.mix_str("layout-db");  // domain separation from other cache keys
  fp.mix(geom::kSnapshotVersion);
  fp.mix(tech::fingerprint(t));
  fp.mix(spec.words);
  fp.mix_i64(spec.bpw);
  fp.mix_i64(spec.bpc);
  fp.mix_i64(spec.spare_rows);
  fp.mix_f64(spec.gate_size);
  fp.mix_i64(spec.strap_interval);
  fp.mix_f64(spec.strap_width_lambda);
  fp.mix_str(spec.test->name());
  fp.mix_i64(spec.max_passes);
  fp.mix(spec.johnson_backgrounds ? 1 : 0);
  fp.mix_i64(drc::tile_size_for(t));
  return fp.value();
}

// --- CompileCache -----------------------------------------------------------

sta::LeafTiming CompileCache::leaf_timing(const tech::Tech& t,
                                          double gate_size, int row_bits) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const std::string key =
      strfmt("%016llx/%.6g/%d",
             static_cast<unsigned long long>(tech::fingerprint(t)), gate_size,
             row_bits);
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = leaf_.find(key);
    if (it == leaf_.end())
      it = leaf_.emplace(key, std::make_shared<Entry>()).first;
    entry = it->second;
  }
  // First caller does the work; concurrent requesters for the same key
  // block here (on the entry, not the map) and then read the result.
  std::call_once(entry->once, [&] {
    entry->lt = sta::characterize_uncached(t, gate_size, row_bits);
    misses_.fetch_add(1, std::memory_order_relaxed);
  });
  return entry->lt;
}

CompileCache::Stats CompileCache::stats() const {
  Stats s;
  s.leaf_lookups = lookups_.load(std::memory_order_relaxed);
  s.leaf_misses = misses_.load(std::memory_order_relaxed);
  return s;
}

// --- Compiler ---------------------------------------------------------------

Compiler::Compiler(std::shared_ptr<CompileCache> cache)
    : cache_(std::move(cache)) {
  require(cache_ != nullptr, "Compiler: null shared cache");
}

const tech::Tech& Compiler::resolve_tech(const RamSpec& spec) {
  spec.validate();
  if (spec.custom_tech) {
    // Retain the deck so the returned reference has session lifetime
    // even if the caller's spec (and its shared_ptr) goes away first.
    owned_decks_.push_back(spec.custom_tech);
    return *owned_decks_.back();
  }
  return tech::technology(spec.technology);
}

const tech::Tech& Compiler::adopt_tech(tech::Tech deck) {
  owned_decks_.push_back(
      std::make_shared<const tech::Tech>(std::move(deck)));
  return *owned_decks_.back();
}

sta::LeafTiming Compiler::leaf_library(const tech::Tech& t, double gate_size,
                                       int row_bits) {
  return cache_->leaf_timing(t, gate_size, row_bits);
}

Assembled Compiler::assemble(const RamSpec& spec, const tech::Tech& t) {
  const sim::RamGeometry geo = spec.geometry();

  // The control program comes first: its PLA shape sizes the TRPLA macro.
  Assembled out{std::make_unique<geom::Library>(),
                nullptr,
                microcode::build_trpla(*spec.test, spec.max_passes),
                {},
                {},
                0, 0, 0, 0, 0, 0, 0, 0};
  geom::Library& lib = *out.library;

  macro::MacroOptions opt;
  opt.gate_size = spec.gate_size;
  opt.strap_interval = spec.strap_interval;
  opt.strap_width_lambda = spec.strap_width_lambda;

  // --- macrocells ----------------------------------------------------------
  const auto array = macro::ram_array(lib, t, geo, opt);
  const auto decoders = macro::row_decoder_column(lib, t, geo.rows(), opt);
  const auto periphery = macro::column_periphery(lib, t, geo, opt);
  const int addr_bits = log2_ceil(std::max<std::uint64_t>(geo.words, 2));
  const auto addgen = macro::addgen_macro(lib, t, addr_bits);
  const auto datagen = macro::datagen_macro(lib, t, geo.bpw);
  const auto streg = macro::streg_macro(lib, t, out.trpla.state_bits);
  const auto tlb = macro::tlb_macro(lib, t, geo.spare_words(), addr_bits);
  const auto trpla_cell = macro::trpla_macro(lib, t, out.trpla.pla);

  // --- place and route -------------------------------------------------------
  const std::vector<pnr::Block> blocks = {
      {"RAMARRAY", array},   {"ROWDEC", decoders}, {"COLPERIPH", periphery},
      {"ADDGEN", addgen},    {"DATAGEN", datagen}, {"STREG", streg},
      {"TLB", tlb},          {"TRPLA", trpla_cell},
  };
  const std::vector<pnr::Net> nets = {
      {"wordlines", {{0, "decoder_side"}, {1, "wl_out"}}},
      {"bitlines", {{0, "column_side"}, {2, "bitline_top"}}},
      {"address", {{3, "bus"}, {1, "addr_in"}, {6, "addr_in"}}},
      {"data", {{4, "bus"}, {2, "data_out"}}},
      {"spare_select", {{6, "spare_out"}, {0, "decoder_side"}}},
      {"control",
       {{7, "outputs"}, {3, "control"}, {4, "control"}, {5, "control"}}},
      {"state", {{5, "bus"}, {7, "inputs"}}},
  };
  pnr::FloorplanOptions fp_opt;
  // Keep a 12-lambda halo between macros: wells may legally overhang a
  // macro's active area by a few lambda, and the halo keeps well spacing
  // satisfied across block boundaries.
  fp_opt.spacing = geom::dbu(12);
  out.plan = pnr::floorplan(blocks, nets, fp_opt);
  out.top = pnr::build_top(lib, t, "bisram_top", blocks, nets, out.plan,
                           &out.route);

  out.array_total_mm2 = macro::macro_area_mm2(t, *array);
  out.decoder_mm2 = macro::macro_area_mm2(t, *decoders);
  out.periphery_mm2 = macro::macro_area_mm2(t, *periphery);
  out.addgen_mm2 = macro::macro_area_mm2(t, *addgen);
  out.datagen_mm2 = macro::macro_area_mm2(t, *datagen);
  out.streg_mm2 = macro::macro_area_mm2(t, *streg);
  out.tlb_mm2 = macro::macro_area_mm2(t, *tlb);
  out.trpla_mm2 = macro::macro_area_mm2(t, *trpla_cell);
  return out;
}

Datasheet Compiler::datasheet(const RamSpec& spec, const tech::Tech& t,
                              const Assembled& a) {
  const sim::RamGeometry geo = spec.geometry();
  Datasheet ds;
  ds.geo = geo;
  ds.technology = t.name;
  const geom::Rect bbox = a.top->bbox();
  ds.width_um = t.um(bbox.width());
  ds.height_um = t.um(bbox.height());
  ds.area_mm2 = t.mm2(bbox.area());

  ds.spare_mm2 = a.array_total_mm2 * geo.spare_rows / geo.total_rows();
  ds.array_mm2 = a.array_total_mm2 - ds.spare_mm2;
  ds.decoder_mm2 = a.decoder_mm2;
  ds.periphery_mm2 = a.periphery_mm2;
  ds.bist_mm2 = a.addgen_mm2 + a.datagen_mm2 + a.streg_mm2 + a.trpla_mm2;
  ds.bisr_mm2 = a.tlb_mm2;
  const double base = ds.array_mm2 + ds.decoder_mm2 + ds.periphery_mm2;
  ds.overhead_pct = 100.0 * (ds.bist_mm2 + ds.bisr_mm2) / base;
  ds.controller_pct = 100.0 * a.trpla_mm2 / a.array_total_mm2;

  const int row_bits =
      std::max(1, log2_ceil(static_cast<std::uint64_t>(geo.rows())));
  ds.timing = estimate_timing(t, geo, spec.gate_size,
                              leaf_library(t, spec.gate_size, row_bits));
  ds.power = estimate_power(t, geo, ds.timing.access_s);

  const int backgrounds = spec.johnson_backgrounds ? geo.bpw + 1 : 1;
  ds.test_cycles =
      march::test_cycles(*spec.test, geo.words, backgrounds) * 2;  // two passes
  ds.test_time_s =
      static_cast<double>(ds.test_cycles) * ds.timing.access_s +
      static_cast<double>(spec.test->delay_count() * backgrounds * 2) * 0.1;
  ds.controller_states = a.trpla.num_states;
  ds.controller_terms = a.trpla.pla.terms();
  ds.state_register_bits = a.trpla.state_bits;
  ds.rectangularity = a.plan.rectangularity;

  if (spec.run_drc) {
    // One shared flatten for signoff-grade checks on the finished top —
    // or, with a layout cache attached, the persisted snapshot of that
    // exact flatten (the fingerprint covers every knob the flatten
    // depends on, and the loader verifies the content hash).
    std::unique_ptr<geom::LayoutDB> db;
    if (layout_cache_ && layout_cache_->persistent()) {
      const std::uint64_t key = layout_fingerprint(spec, t);
      db = layout_cache_->load(key);
      if (!db) {
        db = std::make_unique<geom::LayoutDB>(*a.top, drc::tile_size_for(t));
        layout_cache_->store(key, *db);
      }
    } else {
      db = std::make_unique<geom::LayoutDB>(*a.top, drc::tile_size_for(t));
    }
    drc::DrcOptions drc_opt;
    ds.drc_violations = drc::check(*db, t, drc_opt).size();
  }
  return ds;
}

void Compiler::set_layout_cache(const std::string& dir) {
  layout_cache_ =
      dir.empty() ? nullptr : std::make_unique<geom::SnapshotCache>(dir);
}

Generated Compiler::run(const RamSpec& spec) {
  const tech::Tech& t = resolve_tech(spec);
  Assembled a = assemble(spec, t);
  Datasheet ds = datasheet(spec, t, a);
  return Generated{std::move(a.library), std::move(a.top), std::move(ds),
                   std::move(a.trpla), std::move(a.plan), a.route};
}

}  // namespace bisram::core
