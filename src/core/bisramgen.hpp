#pragma once
// BISRAMGEN: the top-level physical design tool. From a RamSpec and a
// process it builds the leaf-cell library, assembles the macrocells
// (RAMARRAY, row decoders, column periphery, ADDGEN, DATAGEN, STREG,
// TLB, TRPLA), places and routes them, and produces the datasheet —
// geometry, area breakdown, BIST/BISR overhead, access time, TLB
// penalty, and test length (the quantities of Table I, Figs. 6-7 and
// the prose claims of Sections VI and IX).

#include <memory>
#include <string>

#include "core/spec.hpp"
#include "core/timing.hpp"
#include "drc/drc.hpp"
#include "microcode/controller.hpp"
#include "pnr/floorplan.hpp"

namespace bisram::core {

/// The generated module's datasheet.
struct Datasheet {
  sim::RamGeometry geo;
  std::string technology;

  double width_um = 0;
  double height_um = 0;
  double area_mm2 = 0;

  // Area breakdown (mm^2).
  double array_mm2 = 0;      ///< regular rows only
  double spare_mm2 = 0;      ///< the spare rows (not counted as overhead)
  double decoder_mm2 = 0;
  double periphery_mm2 = 0;
  double bist_mm2 = 0;       ///< ADDGEN + DATAGEN + STREG + TRPLA
  double bisr_mm2 = 0;       ///< TLB
  /// The paper's Table-I metric: (BIST + BISR) / base RAM area, spare
  /// rows excluded from the overhead ("redundant rows are not considered
  /// as overhead since redundancy is used in a vast majority of large
  /// RAMs even if there is no self-repair").
  double overhead_pct = 0;
  /// Controller share of the array area (paper: < 0.1% for a 16 KB RAM).
  double controller_pct = 0;

  TimingReport timing;
  PowerReport power;

  std::uint64_t test_cycles = 0;
  double test_time_s = 0;      ///< cycles at the access period + waits
  int controller_states = 0;
  int controller_terms = 0;
  int state_register_bits = 0;

  double rectangularity = 0;   ///< floorplan fill ratio
  std::size_t drc_violations = 0;

  /// Renders the datasheet as text (in the spirit of the RAMGEN
  /// datasheets the original 1986 compiler produced).
  std::string render() const;
};

/// Everything the tool generates for one spec.
struct Generated {
  std::unique_ptr<geom::Library> library;
  geom::CellPtr top;
  Datasheet sheet;
  microcode::AssembledController trpla;
  pnr::FloorplanResult plan;
  /// Over-the-cell routing tallies from build_top, validated against the
  /// placed-blocks LayoutDB (m3_conflicts == 0 on a clean build).
  pnr::RouteStats route;
};

/// Runs the complete flow. Throws bisram::SpecError on invalid specs.
/// This is the thin one-call wrapper over the staged compile API
/// (core/compiler.hpp) — equivalent to Compiler().run(spec). Callers
/// compiling many related specs should share a core::CompileCache so
/// per-deck leaf libraries and SPICE sizing are computed once.
Generated generate(const RamSpec& spec);

}  // namespace bisram::core
