#pragma once
// The staged compile API: core::generate() split into a session object
// so that many compiles can share the expensive deck-pure intermediates.
//
// The one-shot generate(spec) runs four stages that have very different
// reuse profiles:
//
//   resolve_tech   pure function of the spec's deck reference; cheap.
//   leaf_library   SPICE gate sizing + leaf-cell extraction + netlist
//                  STA. A pure function of (rule deck, gate size,
//                  decoder width) — nothing else. This is the expensive
//                  part worth memoizing across compiles: a DSE sweep of
//                  thousands of specs over three decks needs it a
//                  handful of times, not thousands.
//   assemble       macro generation, floorplan, route. Spec-specific.
//   datasheet      areas, timing (reusing the leaf library), power,
//                  test length; optional DRC.
//
// `Compiler` is one compile session. Sessions are single-threaded (one
// session per worker), but any number of concurrent sessions may share
// one `CompileCache`, which is thread-safe and computes each missing
// entry exactly once (latecomers block on the entry, not the map). The
// session also *owns* every deck it resolves — RamSpec::custom_tech is a
// shared_ptr, and adopt_tech() lets a caller hand over a parsed deck by
// value — so the historical "must outlive the generate() call" raw
// pointer footgun is gone.
//
// generate(spec) in bisramgen.hpp is now the thin one-call wrapper
// `Compiler().run(spec)`; existing callers migrate mechanically.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/bisramgen.hpp"
#include "core/spec.hpp"
#include "geom/layout_snapshot.hpp"
#include "sta/leaf.hpp"
#include "tech/tech.hpp"

namespace bisram::core {

/// The snapshot-cache key for a spec's flattened top-level layout: a
/// fingerprint of everything the flatten is a deterministic function of
/// — the resolved deck (by tech::fingerprint, never by name), every
/// geometry-shaping spec knob (words/bpw/bpc/spares, gate size, strap
/// plan, test program and pass budget, which size the TRPLA and STREG
/// macros), the DRC tile size the database is built with, and the
/// snapshot format version (bumping geom::kSnapshotVersion orphans
/// stale entries wholesale). Specs that cannot produce byte-identical
/// databases cannot collide except by hash accident, which the loader's
/// content-hash check turns into a rejected (re-flattened) entry rather
/// than wrong geometry.
std::uint64_t layout_fingerprint(const RamSpec& spec, const tech::Tech& t);

/// Thread-safe cache of deck-pure intermediates, shared between any
/// number of concurrent Compiler sessions. Keys are deck *fingerprints*
/// (tech/tech.hpp), never deck names, so user decks that share a name
/// but differ in any rule can never alias each other's entries.
class CompileCache {
 public:
  CompileCache() = default;
  CompileCache(const CompileCache&) = delete;
  CompileCache& operator=(const CompileCache&) = delete;

  /// The characterized leaf library for (deck, gate size, decoder
  /// width). On a miss the characterization (SPICE sizing, extraction,
  /// netlist STA) runs exactly once — concurrent requesters for the
  /// same key block on the in-flight computation rather than repeating
  /// it — and the result is bit-identical to sta::characterize().
  sta::LeafTiming leaf_timing(const tech::Tech& t, double gate_size,
                              int row_bits);

  struct Stats {
    std::uint64_t leaf_lookups = 0;  ///< leaf_timing() calls
    std::uint64_t leaf_misses = 0;   ///< characterizations actually run
    std::uint64_t leaf_hits() const { return leaf_lookups - leaf_misses; }
  };
  Stats stats() const;

 private:
  struct Entry {
    std::once_flag once;
    sta::LeafTiming lt;
  };
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Entry>> leaf_;
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Everything the assemble stage produces: the cell library and top
/// cell, the assembled controller, the floorplan and route tallies, and
/// the per-macro areas the datasheet stage folds into its breakdown.
struct Assembled {
  std::unique_ptr<geom::Library> library;
  geom::CellPtr top;
  microcode::AssembledController trpla;
  pnr::FloorplanResult plan;
  pnr::RouteStats route;

  // Per-macro silicon areas (mm^2) for the datasheet breakdown.
  double array_total_mm2 = 0;  ///< regular + spare rows together
  double decoder_mm2 = 0;
  double periphery_mm2 = 0;
  double addgen_mm2 = 0;
  double datagen_mm2 = 0;
  double streg_mm2 = 0;
  double tlb_mm2 = 0;
  double trpla_mm2 = 0;
};

/// One compile session. Single-threaded by contract; share a
/// CompileCache (not a session) across threads.
class Compiler {
 public:
  /// A session with a private cache (memoizes within the session only).
  Compiler() : cache_(std::make_shared<CompileCache>()) {}
  /// A session on a shared cache (the DSE engine's mode: one cache,
  /// many sessions in flight).
  explicit Compiler(std::shared_ptr<CompileCache> cache);

  const std::shared_ptr<CompileCache>& cache() const { return cache_; }

  /// Stage 1: validates the spec and resolves its deck — the registry
  /// entry named by spec.technology, or the spec's own custom deck. The
  /// returned reference lives as long as the session (custom decks are
  /// retained by the session, registry decks are process-static).
  /// Throws bisram::SpecError on an invalid spec.
  const tech::Tech& resolve_tech(const RamSpec& spec);

  /// Hands the session a deck by value (e.g. fresh from
  /// tech::read_tech_file) and returns a reference with session
  /// lifetime. Use spec_for() or RamSpec::custom_tech to point a spec
  /// at it.
  const tech::Tech& adopt_tech(tech::Tech deck);

  /// Stage 2: the deck-pure leaf library via the session's cache.
  /// row_bits is the decoder width, max(1, ceil(log2 rows)).
  sta::LeafTiming leaf_library(const tech::Tech& t, double gate_size,
                               int row_bits);

  /// Stage 3: macro generation, floorplan and route for one spec.
  /// Requires a validated spec (resolve_tech() validates).
  Assembled assemble(const RamSpec& spec, const tech::Tech& t);

  /// Stage 4: the datasheet for an assembled module — areas from the
  /// assembly, timing through the shared leaf library, power and test
  /// length; runs DRC when spec.run_drc is set. With a layout cache
  /// attached, the DRC-grade flatten is served from (and published to)
  /// the snapshot directory, keyed by layout_fingerprint().
  Datasheet datasheet(const RamSpec& spec, const tech::Tech& t,
                      const Assembled& a);

  /// Attaches a persistent snapshot directory for the DRC-grade layout
  /// databases datasheet() builds. A warm entry skips the hierarchy
  /// flatten entirely; a missing/stale/corrupt entry is re-flattened
  /// and re-stored. Empty dir detaches.
  void set_layout_cache(const std::string& dir);
  /// The attached cache (null when none): stats for sweep reporting.
  const geom::SnapshotCache* layout_cache() const {
    return layout_cache_.get();
  }

  /// All four stages: exactly what core::generate(spec) has always
  /// returned, but sharing this session's cache and deck ownership.
  Generated run(const RamSpec& spec);

 private:
  std::shared_ptr<CompileCache> cache_;
  std::vector<std::shared_ptr<const tech::Tech>> owned_decks_;
  std::unique_ptr<geom::SnapshotCache> layout_cache_;
};

}  // namespace bisram::core
