#include "core/bisramgen.hpp"

#include <sstream>

#include "core/compiler.hpp"
#include "util/math.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace bisram::core {

std::string Datasheet::render() const {
  std::ostringstream os;
  os << "BISRAMGEN datasheet\n";
  os << "===================\n";
  os << strfmt("words            %u x %d bits (bpc %d, %d spare rows)\n",
               geo.words, geo.bpw, geo.bpc, geo.spare_rows);
  os << strfmt("technology       %s\n", technology.c_str());
  os << strfmt("geometry         %.0f um x %.0f um  (%.3f mm^2)\n", width_um,
               height_um, area_mm2);
  TextTable t;
  t.header({"block", "area mm^2"});
  t.row({"array (regular rows)", strfmt("%.4f", array_mm2)});
  t.row({"spare rows", strfmt("%.4f", spare_mm2)});
  t.row({"row decoders", strfmt("%.4f", decoder_mm2)});
  t.row({"column periphery", strfmt("%.4f", periphery_mm2)});
  t.row({"BIST (ADDGEN+DATAGEN+STREG+TRPLA)", strfmt("%.4f", bist_mm2)});
  t.row({"BISR (TLB)", strfmt("%.4f", bisr_mm2)});
  os << t.render();
  os << strfmt("BIST+BISR overhead   %.2f %%\n", overhead_pct);
  os << strfmt("controller share     %.3f %% of array\n", controller_pct);
  os << strfmt("read access          %.2f ns\n", timing.access_s * 1e9);
  os << strfmt("write cycle          %.2f ns\n", timing.write_s * 1e9);
  os << strfmt("addr setup / hold    %.2f / %.2f ns\n", timing.setup_s * 1e9,
               timing.hold_s * 1e9);
  os << strfmt("TLB penalty          %.2f ns (%.1fx below access)\n",
               timing.tlb_penalty_s * 1e9,
               timing.access_s / std::max(timing.tlb_penalty_s, 1e-15));
  os << strfmt("supply               %.1f V, %.1f mA active, %.2f uW standby\n",
               power.vdd, power.active_current_a * 1e3,
               power.standby_power_w * 1e6);
  os << strfmt("energy               %.1f pJ/read, %.1f pJ/write\n",
               power.read_energy_j * 1e12, power.write_energy_j * 1e12);
  os << strfmt("self-test length     %llu cycles (%.1f ms with waits)\n",
               static_cast<unsigned long long>(test_cycles),
               test_time_s * 1e3);
  os << strfmt("controller           %d states, %d PLA terms, %d FFs\n",
               controller_states, controller_terms, state_register_bits);
  os << strfmt("floorplan fill       %.1f %%\n", rectangularity * 100.0);
  return os.str();
}

Generated generate(const RamSpec& spec) {
  // The one-call wrapper over the staged compile API (core/compiler.hpp):
  // a throwaway session with a private cache — exactly the historical
  // one-shot semantics. Callers that compile more than one spec should
  // hold a Compiler (or share a CompileCache) instead.
  return Compiler().run(spec);
}

}  // namespace bisram::core
