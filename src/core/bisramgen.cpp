#include "core/bisramgen.hpp"

#include <sstream>

#include "macro/macros.hpp"
#include "util/math.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace bisram::core {

std::string Datasheet::render() const {
  std::ostringstream os;
  os << "BISRAMGEN datasheet\n";
  os << "===================\n";
  os << strfmt("words            %u x %d bits (bpc %d, %d spare rows)\n",
               geo.words, geo.bpw, geo.bpc, geo.spare_rows);
  os << strfmt("technology       %s\n", technology.c_str());
  os << strfmt("geometry         %.0f um x %.0f um  (%.3f mm^2)\n", width_um,
               height_um, area_mm2);
  TextTable t;
  t.header({"block", "area mm^2"});
  t.row({"array (regular rows)", strfmt("%.4f", array_mm2)});
  t.row({"spare rows", strfmt("%.4f", spare_mm2)});
  t.row({"row decoders", strfmt("%.4f", decoder_mm2)});
  t.row({"column periphery", strfmt("%.4f", periphery_mm2)});
  t.row({"BIST (ADDGEN+DATAGEN+STREG+TRPLA)", strfmt("%.4f", bist_mm2)});
  t.row({"BISR (TLB)", strfmt("%.4f", bisr_mm2)});
  os << t.render();
  os << strfmt("BIST+BISR overhead   %.2f %%\n", overhead_pct);
  os << strfmt("controller share     %.3f %% of array\n", controller_pct);
  os << strfmt("read access          %.2f ns\n", timing.access_s * 1e9);
  os << strfmt("write cycle          %.2f ns\n", timing.write_s * 1e9);
  os << strfmt("addr setup / hold    %.2f / %.2f ns\n", timing.setup_s * 1e9,
               timing.hold_s * 1e9);
  os << strfmt("TLB penalty          %.2f ns (%.1fx below access)\n",
               timing.tlb_penalty_s * 1e9,
               timing.access_s / std::max(timing.tlb_penalty_s, 1e-15));
  os << strfmt("supply               %.1f V, %.1f mA active, %.2f uW standby\n",
               power.vdd, power.active_current_a * 1e3,
               power.standby_power_w * 1e6);
  os << strfmt("energy               %.1f pJ/read, %.1f pJ/write\n",
               power.read_energy_j * 1e12, power.write_energy_j * 1e12);
  os << strfmt("self-test length     %llu cycles (%.1f ms with waits)\n",
               static_cast<unsigned long long>(test_cycles),
               test_time_s * 1e3);
  os << strfmt("controller           %d states, %d PLA terms, %d FFs\n",
               controller_states, controller_terms, state_register_bits);
  os << strfmt("floorplan fill       %.1f %%\n", rectangularity * 100.0);
  return os.str();
}

Generated generate(const RamSpec& spec) {
  spec.validate();
  const tech::Tech& t = spec.resolved_technology();
  const sim::RamGeometry geo = spec.geometry();

  // The control program comes first: its PLA shape sizes the TRPLA macro
  // (and AssembledController carries the personality, so Generated is
  // built around it).
  Generated out{std::make_unique<geom::Library>(), nullptr, {},
                microcode::build_trpla(*spec.test, spec.max_passes), {}};
  geom::Library& lib = *out.library;

  macro::MacroOptions opt;
  opt.gate_size = spec.gate_size;
  opt.strap_interval = spec.strap_interval;
  opt.strap_width_lambda = spec.strap_width_lambda;

  // --- macrocells ----------------------------------------------------------
  const auto array = macro::ram_array(lib, t, geo, opt);
  const auto decoders = macro::row_decoder_column(lib, t, geo.rows(), opt);
  const auto periphery = macro::column_periphery(lib, t, geo, opt);
  const int addr_bits = log2_ceil(std::max<std::uint64_t>(geo.words, 2));
  const auto addgen = macro::addgen_macro(lib, t, addr_bits);
  const auto datagen = macro::datagen_macro(lib, t, geo.bpw);
  const auto streg = macro::streg_macro(lib, t, out.trpla.state_bits);
  const auto tlb = macro::tlb_macro(lib, t, geo.spare_words(), addr_bits);
  const auto trpla_cell = macro::trpla_macro(lib, t, out.trpla.pla);

  // --- place and route -------------------------------------------------------
  const std::vector<pnr::Block> blocks = {
      {"RAMARRAY", array},   {"ROWDEC", decoders}, {"COLPERIPH", periphery},
      {"ADDGEN", addgen},    {"DATAGEN", datagen}, {"STREG", streg},
      {"TLB", tlb},          {"TRPLA", trpla_cell},
  };
  const std::vector<pnr::Net> nets = {
      {"wordlines", {{0, "decoder_side"}, {1, "wl_out"}}},
      {"bitlines", {{0, "column_side"}, {2, "bitline_top"}}},
      {"address", {{3, "bus"}, {1, "addr_in"}, {6, "addr_in"}}},
      {"data", {{4, "bus"}, {2, "data_out"}}},
      {"spare_select", {{6, "spare_out"}, {0, "decoder_side"}}},
      {"control",
       {{7, "outputs"}, {3, "control"}, {4, "control"}, {5, "control"}}},
      {"state", {{5, "bus"}, {7, "inputs"}}},
  };
  pnr::FloorplanOptions fp_opt;
  // Keep a 12-lambda halo between macros: wells may legally overhang a
  // macro's active area by a few lambda, and the halo keeps well spacing
  // satisfied across block boundaries.
  fp_opt.spacing = geom::dbu(12);
  out.plan = pnr::floorplan(blocks, nets, fp_opt);
  out.top = pnr::build_top(lib, t, "bisram_top", blocks, nets, out.plan,
                           &out.route);

  // --- datasheet --------------------------------------------------------------
  Datasheet& ds = out.sheet;
  ds.geo = geo;
  ds.technology = t.name;
  const geom::Rect bbox = out.top->bbox();
  ds.width_um = t.um(bbox.width());
  ds.height_um = t.um(bbox.height());
  ds.area_mm2 = t.mm2(bbox.area());

  const double array_total = macro::macro_area_mm2(t, *array);
  ds.spare_mm2 = array_total * geo.spare_rows / geo.total_rows();
  ds.array_mm2 = array_total - ds.spare_mm2;
  ds.decoder_mm2 = macro::macro_area_mm2(t, *decoders);
  ds.periphery_mm2 = macro::macro_area_mm2(t, *periphery);
  ds.bist_mm2 = macro::macro_area_mm2(t, *addgen) +
                macro::macro_area_mm2(t, *datagen) +
                macro::macro_area_mm2(t, *streg) +
                macro::macro_area_mm2(t, *trpla_cell);
  ds.bisr_mm2 = macro::macro_area_mm2(t, *tlb);
  const double base = ds.array_mm2 + ds.decoder_mm2 + ds.periphery_mm2;
  ds.overhead_pct = 100.0 * (ds.bist_mm2 + ds.bisr_mm2) / base;
  ds.controller_pct =
      100.0 * macro::macro_area_mm2(t, *trpla_cell) / array_total;

  ds.timing = estimate_timing(t, geo, spec.gate_size);
  ds.power = estimate_power(t, geo, ds.timing.access_s);

  const int backgrounds = spec.johnson_backgrounds ? geo.bpw + 1 : 1;
  ds.test_cycles =
      march::test_cycles(*spec.test, geo.words, backgrounds) * 2;  // two passes
  ds.test_time_s =
      static_cast<double>(ds.test_cycles) * ds.timing.access_s +
      static_cast<double>(spec.test->delay_count() * backgrounds * 2) * 0.1;
  ds.controller_states = out.trpla.num_states;
  ds.controller_terms = out.trpla.pla.terms();
  ds.state_register_bits = out.trpla.state_bits;
  ds.rectangularity = out.plan.rectangularity;

  if (spec.run_drc) {
    // One shared flatten for signoff-grade checks on the finished top.
    const geom::LayoutDB db(*out.top, drc::tile_size_for(t));
    drc::DrcOptions drc_opt;
    ds.drc_violations = drc::check(db, t, drc_opt).size();
  }
  return out;
}

}  // namespace bisram::core
