#pragma once
// The user-facing specification of a BISR RAM, matching the parameters
// the paper's Fig. 1 flow asks for: number of words, bits per word (bpw),
// bits per column (bpc, the column-mux factor), number of spare rows
// (4, 8 or 16), the size of critical gates, and the strap space.

#include <string>

#include "march/march.hpp"
#include "sim/ram_model.hpp"
#include "tech/tech.hpp"

namespace bisram::core {

struct RamSpec {
  std::uint32_t words = 4096;   ///< NW
  int bpw = 32;                 ///< bits per word
  int bpc = 4;                  ///< bits per column (power of two)
  int spare_rows = 4;           ///< 4, 8 or 16 (paper-supported values)
  double gate_size = 2.0;       ///< critical-gate multiplier, 1..8
  int strap_interval = 32;      ///< cells between straps (0 = none)
  double strap_width_lambda = 32.0;
  std::string technology = "cda.7u3m1p";
  /// When set, overrides `technology` with a user-supplied deck (see
  /// tech/tech_file.hpp); must outlive the generate() call.
  const tech::Tech* custom_tech = nullptr;
  const march::MarchTest* test = &march::ifa9();
  int max_passes = 2;           ///< 2 = standard flow; 2k for spare repair
  bool johnson_backgrounds = true;
  bool run_drc = false;         ///< full DRC on the final layout (slow for
                                ///< megabit arrays; meant for small specs)

  /// The derived array geometry (validates on the fly).
  sim::RamGeometry geometry() const {
    sim::RamGeometry g{words, bpw, bpc, spare_rows};
    g.validate();
    return g;
  }

  /// Validates every field; throws bisram::SpecError with a message
  /// naming the offending parameter.
  void validate() const;

  /// The process to build in: custom_tech when set, else the registry
  /// entry named by `technology`.
  const tech::Tech& resolved_technology() const;
};

}  // namespace bisram::core
