#pragma once
// The user-facing specification of a BISR RAM, matching the parameters
// the paper's Fig. 1 flow asks for: number of words, bits per word (bpw),
// bits per column (bpc, the column-mux factor), number of spare rows
// (4, 8 or 16), the size of critical gates, and the strap space.

#include <memory>
#include <string>

#include "march/march.hpp"
#include "sim/ram_model.hpp"
#include "tech/tech.hpp"
#include "util/diag.hpp"
#include "util/json.hpp"

namespace bisram::core {

struct RamSpec {
  std::uint32_t words = 4096;   ///< NW
  int bpw = 32;                 ///< bits per word
  int bpc = 4;                  ///< bits per column (power of two)
  int spare_rows = 4;           ///< 4, 8 or 16 (paper-supported values)
  double gate_size = 2.0;       ///< critical-gate multiplier, 1..8
  int strap_interval = 32;      ///< cells between straps (0 = none)
  double strap_width_lambda = 32.0;
  std::string technology = "cda.7u3m1p";
  /// When set, overrides `technology` with a user-supplied deck (see
  /// tech/tech_file.hpp). The spec *owns* the deck (shared with any
  /// Compiler session that resolves it), so there is no lifetime to get
  /// wrong — copies of the spec share the same immutable deck.
  std::shared_ptr<const tech::Tech> custom_tech;
  const march::MarchTest* test = &march::ifa9();
  int max_passes = 2;           ///< 2 = standard flow; 2k for spare repair
  bool johnson_backgrounds = true;
  bool run_drc = false;         ///< full DRC on the final layout (slow for
                                ///< megabit arrays; meant for small specs)

  /// The derived array geometry (validates on the fly).
  sim::RamGeometry geometry() const {
    sim::RamGeometry g{words, bpw, bpc, spare_rows};
    g.validate();
    return g;
  }

  /// Validates every field; throws bisram::SpecError with a message
  /// naming the offending parameter.
  void validate() const;

  /// The process to build in: custom_tech when set, else the registry
  /// entry named by `technology`.
  const tech::Tech& resolved_technology() const;

  // --- JSON (the one spec parser every front-end shares: bisramgen_cli,
  // --- bisram_dse sweep files, service requests) ------------------------
  //
  // Schema: one object; every member optional (absent = default):
  //   { "words": 4096, "bpw": 32, "bpc": 4, "spare_rows": 4,
  //     "gate_size": 2.0, "strap_interval": 32,
  //     "strap_width_lambda": 32.0, "technology": "cda.7u3m1p",
  //     "tech_deck": "<inline deck text, tech_file.hpp format>",
  //     "test": "ifa9|ifa13|matsp|marchc", "max_passes": 2,
  //     "johnson_backgrounds": true, "run_drc": false }
  // Diagnostics use stable codes: json-* for malformed text,
  // spec-bad-type, spec-bad-value, spec-unknown-field,
  // spec-unknown-test, spec-invalid (semantic validation).

  /// Parses a spec from JSON text. Follows the repo's parser convention
  /// (util/diag.hpp): with a DiagEngine it never throws and returns a
  /// best-effort spec the caller must gate on diag->ok(); without one
  /// it throws bisram::DiagError on any error.
  static RamSpec from_json(const std::string& text, DiagEngine* diag = nullptr,
                           const std::string& source = "<spec>");

  /// Same, from an already-parsed JSON object (the sweep-spec reader's
  /// path). Reports into `diag`; never throws.
  static RamSpec from_json_value(const JsonValue& v, DiagEngine& diag);

  /// Serializes every field (including an inline "tech_deck" for custom
  /// decks); from_json(to_json()) round-trips to an equivalent spec.
  std::string to_json() const;
};

/// The march test registered under the spec-JSON key "ifa9", "ifa13",
/// "matsp" or "marchc"; nullptr for anything else.
const march::MarchTest* march_test_by_key(const std::string& key);

/// The spec-JSON key for one of the four registered tests; throws
/// bisram::SpecError for a test outside the registry.
const char* march_test_key(const march::MarchTest* test);

}  // namespace bisram::core
