#pragma once
// Leaf-cell generators: the bottom of BISRAMGEN's hierarchy. Every cell
// is generated from the technology's lambda rules (design-rule
// independence) on a common 6-lambda feature pitch, and every generator
// is validated DRC-clean in tests for all three registered processes.
//
// Pitch contract: the 6T cell is kCellPitch x kCellPitch lambda. Column
// periphery (precharge, column mux, write driver, sense amp) is exactly
// one or more cell pitches wide with bitline ports at the same x
// positions as the 6T cell, so macros assemble by pure abutment — the
// paper's "no routing is necessary and the signals in adjacent modules
// are perfectly aligned and connected by abutments".
//
// Density note (see DESIGN.md): generous corridors cost roughly 2-4x the
// area of a hand-packed commercial cell; all Table-I style *ratios*
// (overhead percentages) are preserved because array and periphery scale
// together.

#include "cells/primitives.hpp"

namespace bisram::cells {

using geom::CellPtr;
using geom::Library;

/// Lambda pitch of the 6T cell (both width and height).
inline constexpr double kCellPitchLambda = 56.0;

/// The six-transistor SRAM bit cell. Ports: bl/blb (metal2, full
/// height), wl (poly, full width), vdd/gnd (metal1 rails).
CellPtr sram_cell_6t(Library& lib, const Tech& t);

/// Bit-line precharge and equalization (3 PMOS). `size` scales the gate
/// widths ("critical components... are made larger than minimal size").
/// Ports: bl/blb (metal2), pcb (poly, active-low), vdd.
CellPtr precharge_cell(Library& lib, const Tech& t, double size);

/// Column multiplexer: one pass-transistor pair hanging off the bitline
/// pair. Ports: bl/blb (metal2), bus/busb (metal1 rails), sel (poly).
CellPtr column_mux_cell(Library& lib, const Tech& t, double size);

/// Current-mode sense amplifier (Fig. 3 of the paper): cross-coupled
/// pair with bias and enable. Ports: in/inb, out, sab (enable), vdd/gnd.
CellPtr sense_amp_cell(Library& lib, const Tech& t, double size);

/// Write driver: complementary drivers forcing the bus pair.
/// Ports: din, web, bus/busb, vdd/gnd.
CellPtr write_driver_cell(Library& lib, const Tech& t, double size);

/// Row decoder slice: `address_bits`-input NAND plus the word-line
/// driver, exactly one row pitch tall. Ports: a0..a{k-1} (poly), wl
/// (poly at the array-facing edge), vdd/gnd.
CellPtr row_decoder_cell(Library& lib, const Tech& t, int address_bits,
                         double driver_size);

/// D flip-flop bit slice used by STREG, ADDGEN and DATAGEN.
/// Ports: d, q, clk, vdd/gnd.
CellPtr dff_cell(Library& lib, const Tech& t);

/// ADDGEN bit slice: DFF plus toggle XOR (binary up/down counter bit).
CellPtr counter_slice_cell(Library& lib, const Tech& t);

/// DATAGEN bit slice: DFF plus shift mux (Johnson counter bit).
CellPtr johnson_slice_cell(Library& lib, const Tech& t);

/// TLB bit: storage cell plus XOR compare pulling the match line.
/// Ports: key/keyb (metal2), match (metal1), wl (poly), vdd/gnd.
CellPtr cam_cell(Library& lib, const Tech& t);

/// PLA grid cells (pseudo-NMOS NOR-NOR): a grid point either carries a
/// pull-down transistor (programmed) or just the crossing wires.
/// 16x16 lambda. Ports: in (poly, vertical), term (metal1, horizontal).
CellPtr pla_cell(Library& lib, const Tech& t, bool programmed);

/// PLA static pull-up (pseudo-NMOS load PMOS), one per term line.
CellPtr pla_pullup_cell(Library& lib, const Tech& t);

/// Well/substrate strap spacer of the given width in lambda; full cell
/// pitch tall. Used to realize the user's "strap space" parameter.
CellPtr strap_cell(Library& lib, const Tech& t, double width_lambda);

}  // namespace bisram::cells
