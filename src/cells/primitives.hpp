#pragma once
// Geometry primitives shared by the leaf-cell generators: MOS stripes
// (diffusion with contacted poly fingers), contact/via stacks, and wire
// segments. Everything is derived from the technology's lambda rules so
// the same generator emits legal geometry for every registered process —
// the "design-rule independence" the paper claims for BISRAMGEN.

#include <vector>

#include "geom/cell.hpp"
#include "tech/tech.hpp"

namespace bisram::cells {

using geom::Cell;
using geom::Coord;
using geom::Layer;
using geom::Point;
using geom::Rect;
using tech::Tech;

/// Result of drawing a MOS stripe with `fingers` gates.
struct Stripe {
  Rect diff;                    ///< the diffusion rectangle
  std::vector<Rect> gates;      ///< poly gate rects, left to right
  std::vector<Rect> sd_pads;    ///< metal1 pads over S/D contacts (f+1)
  Rect well;                    ///< enclosing well (PMOS only; empty else)
};

/// Options for draw_mos_stripe.
struct StripeSpec {
  int fingers = 1;
  Coord gate_w = 0;          ///< channel width (diffusion height)
  Coord pitch = 0;           ///< contact-center to gate-center distance;
                             ///< 0 = minimum legal pitch
  std::vector<bool> contact; ///< which of the fingers+1 S/D columns get a
                             ///< contact; empty = all (series chains like
                             ///< NAND pull-downs contact only the ends)
};

/// Draws a horizontal MOS stripe at `origin` (lower-left of diffusion):
/// alternating S/D columns and poly fingers of channel width
/// `spec.gate_w` and minimum length. PMOS stripes get an enclosing
/// n-well. Returns the landing geometry so the caller can wire to gates
/// and S/D pads (uncontacted columns yield empty pad rects).
Stripe draw_mos_stripe(Cell& cell, const Tech& t, bool pmos, Point origin,
                       const StripeSpec& spec);

/// Convenience overload: all columns contacted, minimum pitch.
Stripe draw_mos_stripe(Cell& cell, const Tech& t, bool pmos, Point origin,
                       int fingers, Coord gate_w);

/// Contact from `lower` (diffusion or poly) up to metal1, centered at
/// `center`; draws the cut, the lower-layer landing pad (when `lower` is
/// poly) and the metal1 pad. Returns the metal1 pad.
Rect draw_contact(Cell& cell, const Tech& t, Layer lower, Point center);

/// Via metal1->metal2 (or metal2->metal3 with `via2`), centered at
/// `center`; draws the cut plus both metal landing pads; returns the
/// upper pad.
Rect draw_via1(Cell& cell, const Tech& t, Point center);
Rect draw_via2(Cell& cell, const Tech& t, Point center);

/// Straight wire of `width` between two points sharing an x or y
/// coordinate; returns the rect. Throws when the points are diagonal.
Rect draw_wire(Cell& cell, const Tech& t, Layer layer, Point a, Point b,
               Coord width);

/// L-shaped route: horizontal from `a`, then vertical to `b`.
void draw_route_hv(Cell& cell, const Tech& t, Layer layer, Point a, Point b,
                   Coord width);

/// Minimum legal wire width of a layer.
Coord min_width(const Tech& t, Layer layer);

}  // namespace bisram::cells
