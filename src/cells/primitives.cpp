#include "cells/primitives.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bisram::cells {

Coord min_width(const Tech& t, Layer layer) {
  return t.rule(layer).min_width;
}

namespace {
Rect square(Point center, Coord size) {
  return Rect::ltrb(center.x - size / 2, center.y - size / 2,
                    center.x + size / 2, center.y + size / 2);
}
}  // namespace

Stripe draw_mos_stripe(Cell& cell, const Tech& t, bool pmos, Point origin,
                       const StripeSpec& spec) {
  require(spec.fingers >= 1, "draw_mos_stripe: needs >= 1 finger");
  require(spec.gate_w >= t.rule(pmos ? Layer::PDiff : Layer::NDiff).min_width,
          "draw_mos_stripe: channel narrower than diffusion min width");
  require(spec.contact.empty() ||
              spec.contact.size() == static_cast<std::size_t>(spec.fingers + 1),
          "draw_mos_stripe: contact mask size must be fingers + 1");
  const bool any_contact =
      spec.contact.empty() ||
      std::find(spec.contact.begin(), spec.contact.end(), true) !=
          spec.contact.end();
  require(!any_contact ||
              spec.gate_w >= t.contact_size + 2 * t.contact_encl_diff,
          "draw_mos_stripe: channel too narrow to enclose S/D contacts");
  const Layer diff_layer = pmos ? Layer::PDiff : Layer::NDiff;
  const Coord lgate = t.from_um(t.feature_um);  // minimum drawn gate length
  const Coord cut = t.contact_size;
  const Coord encl = t.contact_encl_diff;  // diffusion past contact
  const Coord min_pitch = cut / 2 + t.contact_space + lgate / 2;
  const Coord pitch = spec.pitch > 0 ? spec.pitch : min_pitch;
  require(pitch >= min_pitch, "draw_mos_stripe: pitch below minimum");

  Stripe s;
  const Coord y_mid = origin.y + spec.gate_w / 2;
  // S/D column centers sit at even multiples of `pitch` from the first,
  // gate centers at odd multiples.
  const Coord first_sd = origin.x + encl + cut / 2;
  std::vector<Coord> pad_xs, gate_xs;
  for (int k = 0; k <= spec.fingers; ++k)
    pad_xs.push_back(first_sd + 2 * pitch * k);
  for (int k = 0; k < spec.fingers; ++k)
    gate_xs.push_back(first_sd + pitch * (2 * k + 1));

  const Coord diff_hi_x = pad_xs.back() + cut / 2 + encl;
  s.diff = Rect::ltrb(origin.x, origin.y, diff_hi_x, origin.y + spec.gate_w);
  cell.add_shape(diff_layer, s.diff);

  for (Coord gx : gate_xs) {
    const Rect gate =
        Rect::ltrb(gx - lgate / 2, origin.y - t.gate_poly_ext, gx + lgate / 2,
                   origin.y + spec.gate_w + t.gate_poly_ext);
    cell.add_shape(Layer::Poly, gate);
    s.gates.push_back(gate);
  }
  for (std::size_t k = 0; k < pad_xs.size(); ++k) {
    if (!spec.contact.empty() && !spec.contact[k]) {
      s.sd_pads.emplace_back();  // uncontacted column: empty pad
      continue;
    }
    s.sd_pads.push_back(
        draw_contact(cell, t, diff_layer, {pad_xs[k], y_mid}));
  }

  if (pmos) {
    s.well = s.diff.expanded(t.well_encl_diff);
    cell.add_shape(Layer::NWell, s.well);
  }
  return s;
}

Stripe draw_mos_stripe(Cell& cell, const Tech& t, bool pmos, Point origin,
                       int fingers, Coord gate_w) {
  StripeSpec spec;
  spec.fingers = fingers;
  spec.gate_w = gate_w;
  return draw_mos_stripe(cell, t, pmos, origin, spec);
}

Rect draw_contact(Cell& cell, const Tech& t, Layer lower, Point center) {
  const Rect cut = square(center, t.contact_size);
  cell.add_shape(Layer::Contact, cut);
  if (lower == Layer::Poly) {
    cell.add_shape(Layer::Poly, cut.expanded(t.contact_encl_poly));
  } else if (lower == Layer::NDiff || lower == Layer::PDiff) {
    // The caller's diffusion is assumed to already enclose the cut (the
    // stripe generator guarantees it); nothing extra to draw.
  } else {
    throw InternalError("draw_contact: lower layer must be diff or poly");
  }
  const Rect m1 = cut.expanded(t.contact_encl_m1);
  cell.add_shape(Layer::Metal1, m1);
  return m1;
}

Rect draw_via1(Cell& cell, const Tech& t, Point center) {
  const Rect cut = square(center, t.via1_size);
  cell.add_shape(Layer::Via1, cut);
  cell.add_shape(Layer::Metal1, cut.expanded(t.via1_encl));
  const Rect m2 = cut.expanded(t.via1_encl);
  cell.add_shape(Layer::Metal2, m2);
  return m2;
}

Rect draw_via2(Cell& cell, const Tech& t, Point center) {
  const Rect cut = square(center, t.via2_size);
  cell.add_shape(Layer::Via2, cut);
  cell.add_shape(Layer::Metal2, cut.expanded(t.via2_encl));
  // The metal3 landing must also satisfy metal3's minimum width.
  const Coord encl3 = std::max(
      t.via2_encl, (t.rule(Layer::Metal3).min_width - t.via2_size + 1) / 2);
  const Rect m3 = cut.expanded(encl3);
  cell.add_shape(Layer::Metal3, m3);
  return m3;
}

Rect draw_wire(Cell& cell, const Tech& t, Layer layer, Point a, Point b,
               Coord width) {
  require(a.x == b.x || a.y == b.y, "draw_wire: endpoints must be aligned");
  const Coord w = width > 0 ? width : min_width(t, layer);
  Rect r;
  if (a.y == b.y) {
    r = Rect::ltrb(std::min(a.x, b.x) - w / 2, a.y - w / 2,
                   std::max(a.x, b.x) + w / 2, a.y + w / 2);
  } else {
    r = Rect::ltrb(a.x - w / 2, std::min(a.y, b.y) - w / 2, a.x + w / 2,
                   std::max(a.y, b.y) + w / 2);
  }
  cell.add_shape(layer, r);
  return r;
}

void draw_route_hv(Cell& cell, const Tech& t, Layer layer, Point a, Point b,
                   Coord width) {
  if (a.y == b.y || a.x == b.x) {
    draw_wire(cell, t, layer, a, b, width);
    return;
  }
  const Point corner{b.x, a.y};
  draw_wire(cell, t, layer, a, corner, width);
  draw_wire(cell, t, layer, corner, b, width);
}

}  // namespace bisram::cells
