#include "cells/leaf_cells.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bisram::cells {

using geom::dbu;

namespace {

Coord L(double lambda) { return dbu(lambda); }

/// Returns the cached cell when the generator already ran for this
/// library; otherwise creates it.
std::shared_ptr<Cell> fresh(Library& lib, const std::string& name,
                            bool& existed) {
  existed = lib.contains(name);
  if (existed) return nullptr;
  return lib.create(name);
}

}  // namespace

CellPtr sram_cell_6t(Library& lib, const Tech& t) {
  bool existed = false;
  auto cell = fresh(lib, "sram6t", existed);
  if (existed) return lib.get("sram6t");

  const Coord W = L(kCellPitchLambda), H = L(kCellPitchLambda);
  const Coord p6 = L(6);

  // NMOS stripe: BL | WL | A | gateB | GND | gateA | B | WL | BLB.
  StripeSpec nspec{4, L(6), p6, {}};
  const Stripe n = draw_mos_stripe(*cell, t, false, {L(1.5), L(10)}, nspec);
  // PMOS stripe: A | gateB | VDD | gateA | B.
  StripeSpec pspec{2, L(6), p6, {}};
  const Stripe p = draw_mos_stripe(*cell, t, true, {L(13.5), L(36)}, pspec);

  // Word line: poly strip across the full cell, with stubs up to the two
  // pass-transistor gates (fingers 0 and 3).
  cell->add_shape(Layer::Poly, Rect::ltrb(0, L(4), W, L(6)));
  cell->add_shape(Layer::Poly, Rect::ltrb(L(9), L(6), L(11), L(9)));
  cell->add_shape(Layer::Poly, Rect::ltrb(L(45), L(6), L(47), L(9)));

  // Supply rails and taps.
  cell->add_shape(Layer::Metal1, Rect::ltrb(0, 0, W, L(3)));      // GND
  cell->add_shape(Layer::Metal1, Rect::ltrb(0, L(53), W, H));     // VDD
  draw_wire(*cell, t, Layer::Metal1, {L(28), L(1.5)}, {L(28), L(13)}, L(3));
  draw_wire(*cell, t, Layer::Metal1, {L(28), L(39)}, {L(28), L(54.5)}, L(3));

  // Storage-node columns: A joins NMOS c1 to PMOS c0; B joins c3 to c2.
  draw_wire(*cell, t, Layer::Metal1, {L(16), L(13)}, {L(16), L(39)}, L(3));
  draw_wire(*cell, t, Layer::Metal1, {L(40), L(13)}, {L(40), L(39)}, L(3));

  // Cross-coupled gate columns (the NMOS and PMOS gates line up).
  draw_wire(*cell, t, Layer::Poly, {L(22), L(18)}, {L(22), L(34)}, L(2));
  draw_wire(*cell, t, Layer::Poly, {L(34), L(18)}, {L(34), L(34)}, L(2));
  // Gate contacts and jumpers to the opposite storage node. Contact pads
  // sit mid-column so their poly landing stays 2 lambda clear of the
  // gate ends (notch rule).
  draw_contact(*cell, t, Layer::Poly, {L(34), L(23)});
  draw_wire(*cell, t, Layer::Metal1, {L(16), L(23)}, {L(34), L(23)}, L(3));
  draw_contact(*cell, t, Layer::Poly, {L(22), L(29)});
  draw_wire(*cell, t, Layer::Metal1, {L(22), L(29)}, {L(40), L(29)}, L(3));

  // Bit lines on metal2, dropping onto the pass-transistor diffusions.
  draw_via1(*cell, t, {L(4), L(13)});
  draw_via1(*cell, t, {L(52), L(13)});
  const Rect bl = Rect::ltrb(L(2.5), 0, L(5.5), H);
  const Rect blb = Rect::ltrb(L(50.5), 0, L(53.5), H);
  cell->add_shape(Layer::Metal2, bl);
  cell->add_shape(Layer::Metal2, blb);

  cell->add_port("bl", Layer::Metal2, bl);
  cell->add_port("blb", Layer::Metal2, blb);
  cell->add_port("wl", Layer::Poly, Rect::ltrb(0, L(4), W, L(6)));
  cell->add_port("gnd", Layer::Metal1, Rect::ltrb(0, 0, W, L(3)));
  cell->add_port("vdd", Layer::Metal1, Rect::ltrb(0, L(53), W, H));
  (void)n;
  (void)p;
  return cell;
}

CellPtr precharge_cell(Library& lib, const Tech& t, double size) {
  require(size >= 1.0 && size <= 8.0, "precharge_cell: size out of range");
  const std::string name = strfmt("precharge_x%g", size);
  bool existed = false;
  auto cell = fresh(lib, name, existed);
  if (existed) return lib.get(name);

  const Coord W = L(kCellPitchLambda);
  const Coord gw = L(6 * size);

  // Lower stripe: BL | pc | VDD | pc | BLB (two precharge PMOS).
  StripeSpec pair{2, gw, L(12), {}};
  const Stripe lower = draw_mos_stripe(*cell, t, true, {L(1.5), L(8)}, pair);
  const Coord gtop = L(8) + gw + t.gate_poly_ext;
  // Upper stripe: BL | eq | BLB (the equalizer), spaced so the two
  // n-wells respect the well spacing rule.
  const Coord y_eq = L(8) + gw + L(19);
  StripeSpec eq{1, gw, L(24), {}};
  const Stripe upper = draw_mos_stripe(*cell, t, true, {L(1.5), y_eq}, eq);

  const Coord y_line = y_eq + gw + L(6);  // pcb poly line
  const Coord H = y_line + L(6);

  // pcb control line. The equalizer gate stubs straight up into it; the
  // pair gates cannot (a poly riser would cross the equalizer diffusion
  // and create parasitic gates), so each climbs through a poly contact,
  // a metal1 riser over the equalizer, and a contact back onto the line.
  cell->add_shape(Layer::Poly, Rect::ltrb(0, y_line, W, y_line + L(2)));
  for (const Rect& g : upper.gates)
    cell->add_shape(Layer::Poly,
                    Rect::ltrb(g.lo.x, g.hi.y, g.hi.x, y_line + L(1)));
  for (const Rect& g : lower.gates) {
    const Coord x = g.center().x;
    // Full-pad-width stub so the contact landing does not notch against
    // the gate end.
    cell->add_shape(Layer::Poly, Rect::ltrb(x - L(2.5), g.hi.y - L(1),
                                            x + L(2.5), gtop + L(4)));
    draw_contact(*cell, t, Layer::Poly, {x, gtop + L(4)});
    draw_wire(*cell, t, Layer::Metal1, {x, gtop + L(4)}, {x, y_line + L(1)},
              L(3));
    draw_contact(*cell, t, Layer::Poly, {x, y_line + L(1)});
    cell->add_shape(Layer::Poly, Rect::ltrb(x - L(2.5), y_line - L(1.5),
                                            x + L(2.5), y_line + L(3.5)));
  }

  // VDD rail at the bottom, tapped to the middle contact of the pair.
  cell->add_shape(Layer::Metal1, Rect::ltrb(0, 0, W, L(3)));
  draw_wire(*cell, t, Layer::Metal1, {L(28), L(1.5)},
            {L(28), L(8) + gw / 2}, L(3));

  // Bit lines: metal2 columns hitting both stripes' outer contacts.
  for (Coord x : {L(4), L(52)}) {
    draw_via1(*cell, t, {x, L(8) + gw / 2});
    draw_via1(*cell, t, {x, y_eq + gw / 2});
    cell->add_shape(Layer::Metal2, Rect::ltrb(x - L(1.5), 0, x + L(1.5), H));
  }

  cell->add_port("bl", Layer::Metal2, Rect::ltrb(L(2.5), 0, L(5.5), H));
  cell->add_port("blb", Layer::Metal2, Rect::ltrb(L(50.5), 0, L(53.5), H));
  cell->add_port("pcb", Layer::Poly, Rect::ltrb(0, y_line, W, y_line + L(2)));
  cell->add_port("vdd", Layer::Metal1, Rect::ltrb(0, 0, W, L(3)));
  return cell;
}

CellPtr column_mux_cell(Library& lib, const Tech& t, double size) {
  require(size >= 1.0 && size <= 8.0, "column_mux_cell: size out of range");
  const std::string name = strfmt("colmux_x%g", size);
  bool existed = false;
  auto cell = fresh(lib, name, existed);
  if (existed) return lib.get(name);

  const Coord W = L(kCellPitchLambda);
  const Coord gw = L(6 * size);
  const Coord y0 = L(12);

  // Pass transistor BL -> bus at the left, BLB -> busb at the right.
  StripeSpec one{1, gw, L(6), {}};
  const Stripe left = draw_mos_stripe(*cell, t, false, {L(1.5), y0}, one);
  const Stripe right = draw_mos_stripe(*cell, t, false, {L(37.5), y0}, one);

  const Coord y_sel = y0 + gw + L(6);
  const Coord H = y_sel + L(6);

  // Select line: poly across the cell with stubs to both gates.
  cell->add_shape(Layer::Poly, Rect::ltrb(0, y_sel, W, y_sel + L(2)));
  for (const Stripe* s : {&left, &right})
    cell->add_shape(Layer::Poly, Rect::ltrb(s->gates[0].lo.x, s->gates[0].hi.y,
                                            s->gates[0].hi.x, y_sel + L(1)));

  // Data bus rails (metal1): bus at y0..4, busb at y6..9. The bus tap
  // from x16 must cross the busb rail, so it drops through metal2.
  cell->add_shape(Layer::Metal1, Rect::ltrb(0, 0, W, L(4)));
  cell->add_shape(Layer::Metal1, Rect::ltrb(0, L(6), W, L(9)));
  draw_via1(*cell, t, {L(16), y0 + gw / 2});
  cell->add_shape(Layer::Metal2, Rect::ltrb(L(14.5), L(1),
                                            L(17.5), y0 + gw / 2 + L(1.5)));
  draw_via1(*cell, t, {L(16), L(2)});
  draw_wire(*cell, t, Layer::Metal1, {L(40), L(7.5)}, {L(40), y0 + gw / 2},
            L(3));

  // Bit lines (metal2) to the outer contacts.
  draw_via1(*cell, t, {L(4), y0 + gw / 2});
  draw_via1(*cell, t, {L(52), y0 + gw / 2});
  cell->add_shape(Layer::Metal2, Rect::ltrb(L(2.5), 0, L(5.5), H));
  cell->add_shape(Layer::Metal2, Rect::ltrb(L(50.5), 0, L(53.5), H));

  cell->add_port("bl", Layer::Metal2, Rect::ltrb(L(2.5), 0, L(5.5), H));
  cell->add_port("blb", Layer::Metal2, Rect::ltrb(L(50.5), 0, L(53.5), H));
  cell->add_port("bus", Layer::Metal1, Rect::ltrb(0, 0, W, L(4)));
  cell->add_port("busb", Layer::Metal1, Rect::ltrb(0, L(6), W, L(9)));
  cell->add_port("sel", Layer::Poly, Rect::ltrb(0, y_sel, W, y_sel + L(2)));
  return cell;
}

CellPtr sense_amp_cell(Library& lib, const Tech& t, double size) {
  require(size >= 1.0 && size <= 8.0, "sense_amp_cell: size out of range");
  const std::string name = strfmt("senseamp_x%g", size);
  bool existed = false;
  auto cell = fresh(lib, name, existed);
  if (existed) return lib.get(name);

  const Coord W = L(kCellPitchLambda);
  const Coord gwn = L(6 * size), gwp = L(6 * size);

  // Cross-coupled core, mirroring the 6T construction but with a tail
  // device for the current-mode bias (Fig. 3): NMOS stripe
  // out | gate(outb) | tail | gate(out) | outb, tail NMOS to ground
  // gated by the sense enable, PMOS loads above.
  StripeSpec n2{2, gwn, L(6), {}};
  const Stripe n = draw_mos_stripe(*cell, t, false, {L(1.5), L(12)}, n2);
  StripeSpec tail{1, gwn, L(6), {}};
  const Stripe tl = draw_mos_stripe(*cell, t, false, {L(33.5), L(12)}, tail);
  const Coord yp = L(12) + gwn + L(22);
  StripeSpec p2{2, gwp, L(6), {}};
  const Stripe p = draw_mos_stripe(*cell, t, true, {L(1.5), yp}, p2);
  const Coord H = yp + gwp + L(8) + L(6);

  // Rails.
  cell->add_shape(Layer::Metal1, Rect::ltrb(0, 0, W, L(3)));        // gnd
  cell->add_shape(Layer::Metal1, Rect::ltrb(0, H - L(3), W, H));    // vdd
  const Coord ny = L(12) + gwn / 2;
  const Coord py = yp + gwp / 2;
  // tail: n mid contact (x16) -> tail stripe left contact (x36) in m1,
  // jogging under the outb column; tail right contact (x48) -> gnd rail.
  draw_wire(*cell, t, Layer::Metal1, {L(16), ny}, {L(16), L(7)}, L(3));
  draw_wire(*cell, t, Layer::Metal1, {L(16), L(7)}, {L(36), L(7)}, L(3));
  draw_wire(*cell, t, Layer::Metal1, {L(36), L(7)}, {L(36), ny}, L(3));
  draw_wire(*cell, t, Layer::Metal1, {L(48), ny}, {L(48), L(1.5)}, L(3));
  // vdd to PMOS middle contact (x16).
  draw_wire(*cell, t, Layer::Metal1, {L(16), py}, {L(16), H - L(1.5)}, L(3));
  // out / outb columns joining N and P drains (x4 and x28).
  draw_wire(*cell, t, Layer::Metal1, {L(4), ny}, {L(4), py}, L(3));
  draw_wire(*cell, t, Layer::Metal1, {L(28), ny}, {L(28), py}, L(3));
  // Cross-coupled gate columns (N gate i aligns with P gate i at x10/x22).
  const Coord gy0 = L(12) + gwn + L(2);
  const Coord gy1 = yp - L(2);
  draw_wire(*cell, t, Layer::Poly, {L(10), gy0}, {L(10), gy1}, L(2));
  draw_wire(*cell, t, Layer::Poly, {L(22), gy0}, {L(22), gy1}, L(2));
  // Gate-to-output jumpers: gate column x10 (driven by outb) and x22
  // (driven by out). Contact pads sit 4.5 lambda inside the column so
  // their poly landing clears the gate ends (notch rule).
  draw_contact(*cell, t, Layer::Poly, {L(10), gy0 + L(4.5)});
  draw_wire(*cell, t, Layer::Metal1, {L(10), gy0 + L(4.5)},
            {L(28), gy0 + L(4.5)}, L(3));
  draw_contact(*cell, t, Layer::Poly, {L(22), gy1 - L(4.5)});
  draw_wire(*cell, t, Layer::Metal1, {L(4), gy1 - L(4.5)},
            {L(22), gy1 - L(4.5)}, L(3));
  // Sense enable to the tail gate (x40).
  const Coord y_sab = L(2);
  cell->add_shape(Layer::Poly,
                  Rect::ltrb(tl.gates[0].lo.x, y_sab + L(2),
                             tl.gates[0].hi.x, tl.gates[0].lo.y + L(1)));
  cell->add_shape(Layer::Poly, Rect::ltrb(L(34), y_sab, W, y_sab + L(2)));

  cell->add_port("in", Layer::Metal1,
                 Rect::ltrb(L(2.5), ny - L(1.5), L(5.5), ny + L(1.5)));
  cell->add_port("inb", Layer::Metal1,
                 Rect::ltrb(L(26.5), ny - L(1.5), L(29.5), ny + L(1.5)));
  cell->add_port("out", Layer::Metal1,
                 Rect::ltrb(L(2.5), py - L(1.5), L(5.5), py + L(1.5)));
  cell->add_port("outb", Layer::Metal1,
                 Rect::ltrb(L(26.5), py - L(1.5), L(29.5), py + L(1.5)));
  cell->add_port("sab", Layer::Poly, Rect::ltrb(L(34), y_sab, W, y_sab + L(2)));
  cell->add_port("gnd", Layer::Metal1, Rect::ltrb(0, 0, W, L(3)));
  cell->add_port("vdd", Layer::Metal1, Rect::ltrb(0, H - L(3), W, H));
  (void)n;
  (void)p;
  return cell;
}

CellPtr write_driver_cell(Library& lib, const Tech& t, double size) {
  require(size >= 1.0 && size <= 8.0, "write_driver_cell: size out of range");
  const std::string name = strfmt("writedrv_x%g", size);
  bool existed = false;
  auto cell = fresh(lib, name, existed);
  if (existed) return lib.get(name);

  const Coord W = L(kCellPitchLambda);
  const Coord gwn = L(6 * size), gwp = L(6 * size);

  // NMOS: bus | din | gnd | dinb | busb; PMOS: bus | dinb | vdd | din |
  // busb (complementary drivers).
  StripeSpec n2{2, gwn, L(6), {}};
  const Stripe n = draw_mos_stripe(*cell, t, false, {L(1.5), L(12)}, n2);
  const Coord yp = L(12) + gwn + L(16);
  StripeSpec p2{2, gwp, L(6), {}};
  const Stripe p = draw_mos_stripe(*cell, t, true, {L(1.5), yp}, p2);
  const Coord H = yp + gwp + L(8) + L(6);
  const Coord ny = L(12) + gwn / 2, py = yp + gwp / 2;

  cell->add_shape(Layer::Metal1, Rect::ltrb(0, 0, W, L(3)));      // gnd
  cell->add_shape(Layer::Metal1, Rect::ltrb(0, H - L(3), W, H));  // vdd
  draw_wire(*cell, t, Layer::Metal1, {L(16), ny}, {L(16), L(1.5)}, L(3));
  draw_wire(*cell, t, Layer::Metal1, {L(16), py}, {L(16), H - L(1.5)}, L(3));
  // bus / busb output columns.
  draw_wire(*cell, t, Layer::Metal1, {L(4), ny}, {L(4), py}, L(3));
  draw_wire(*cell, t, Layer::Metal1, {L(28), ny}, {L(28), py}, L(3));
  // din drives NMOS gate0 and PMOS gate1; dinb the other pair.
  const Coord gy0 = L(12) + gwn + L(2), gy1 = yp - L(2);
  draw_wire(*cell, t, Layer::Poly, {L(10), gy0}, {L(10), gy1}, L(2));
  draw_wire(*cell, t, Layer::Poly, {L(22), gy0}, {L(22), gy1}, L(2));

  cell->add_port("bus", Layer::Metal1,
                 Rect::ltrb(L(2.5), ny - L(1.5), L(5.5), ny + L(1.5)));
  cell->add_port("busb", Layer::Metal1,
                 Rect::ltrb(L(26.5), ny - L(1.5), L(29.5), ny + L(1.5)));
  cell->add_port("din", Layer::Poly,
                 Rect::ltrb(L(9), gy0, L(11), gy1));
  cell->add_port("dinb", Layer::Poly,
                 Rect::ltrb(L(21), gy0, L(23), gy1));
  cell->add_port("gnd", Layer::Metal1, Rect::ltrb(0, 0, W, L(3)));
  cell->add_port("vdd", Layer::Metal1, Rect::ltrb(0, H - L(3), W, H));
  (void)n;
  (void)p;
  return cell;
}

CellPtr row_decoder_cell(Library& lib, const Tech& t, int address_bits,
                         double driver_size) {
  require(address_bits >= 1 && address_bits <= 12,
          "row_decoder_cell: address bits out of range");
  require(driver_size >= 1.0 && driver_size <= 8.0,
          "row_decoder_cell: driver size out of range");
  const std::string name =
      strfmt("rowdec_a%d_x%g", address_bits, driver_size);
  bool existed = false;
  auto cell = fresh(lib, name, existed);
  if (existed) return lib.get(name);

  const int k = address_bits;
  const Coord H = L(kCellPitchLambda);

  // NAND pull-down: series chain, contacts only at the ends. The x
  // offset keeps the pull-up n-well inside the cell outline so the
  // macro's bounding box starts at its real geometry.
  StripeSpec chain;
  chain.fingers = k;
  chain.gate_w = L(6);
  chain.pitch = L(6);
  chain.contact.assign(static_cast<std::size_t>(k + 1), false);
  chain.contact.front() = chain.contact.back() = true;
  const Stripe n = draw_mos_stripe(*cell, t, false, {L(5.5), L(10)}, chain);

  // PMOS pull-ups: parallel fingers, alternating out/vdd columns.
  StripeSpec par{k, L(6), L(6), {}};
  const Stripe p = draw_mos_stripe(*cell, t, true, {L(5.5), L(36)}, par);
  // Stretch the well to the cell top so vertically mirrored decoder rows
  // merge their wells instead of violating well spacing.
  cell->add_shape(Layer::NWell,
                  Rect::ltrb(p.well.lo.x, p.well.lo.y, p.well.hi.x, H));

  // Address columns join NMOS gate i with PMOS gate i and run to y=0.
  for (int i = 0; i < k; ++i) {
    const Rect& gn = n.gates[static_cast<std::size_t>(i)];
    const Rect& gp = p.gates[static_cast<std::size_t>(i)];
    draw_wire(*cell, t, Layer::Poly, {gn.center().x, gn.hi.y - L(1)},
              {gp.center().x, gp.lo.y + L(1)}, L(2));
    cell->add_port(strfmt("a%d", i), Layer::Poly,
                   Rect::ltrb(gn.lo.x, gn.lo.y, gn.hi.x, gp.hi.y));
  }

  // NAND output: NMOS end contact plus the even PMOS columns; odd PMOS
  // columns are VDD. Collect with a horizontal metal1 spine above the
  // PMOS stripe (y = 44..47), clear of the address poly columns' tops.
  const Coord spine_y = L(47.5);
  const Coord nand_out_x = n.sd_pads.back().center().x;
  const Coord p_pad_y = p.sd_pads.front().center().y;
  draw_wire(*cell, t, Layer::Metal1, {nand_out_x, L(13)},
            {nand_out_x, L(20)}, L(3));
  // Jog the riser right of the PMOS stripe, then up to the spine.
  const Coord clear_x = p.diff.hi.x + L(6);
  draw_wire(*cell, t, Layer::Metal1, {nand_out_x, L(18.5)},
            {clear_x, L(18.5)}, L(3));
  draw_wire(*cell, t, Layer::Metal1, {clear_x, L(18.5)},
            {clear_x, spine_y}, L(3));
  Coord spine_left = clear_x;
  for (std::size_t c = 0; c < p.sd_pads.size(); c += 2) {
    const Coord x = p.sd_pads[c].center().x;
    draw_wire(*cell, t, Layer::Metal1, {x, p_pad_y}, {x, spine_y}, L(3));
    spine_left = std::min(spine_left, x);
  }
  draw_wire(*cell, t, Layer::Metal1, {spine_left, spine_y},
            {clear_x, spine_y}, L(3));
  // VDD rail on top, fed by the odd PMOS columns.
  cell->add_shape(Layer::Metal1, Rect::ltrb(0, H - L(3), clear_x + L(40), H));
  for (std::size_t c = 1; c < p.sd_pads.size(); c += 2) {
    const Coord x = p.sd_pads[c].center().x;
    // Route around the spine on metal2, extending to the cell top so the
    // mirrored neighbour row's riser merges at the seam instead of
    // violating metal2 spacing.
    draw_via1(*cell, t, {x, L(39)});
    cell->add_shape(Layer::Metal2,
                    Rect::ltrb(x - L(1.5), L(37.5), x + L(1.5), H));
    draw_via1(*cell, t, {x, H - L(2.5)});
  }
  // GND rail at the bottom, fed by the NMOS first contact.
  cell->add_shape(Layer::Metal1, Rect::ltrb(0, 0, clear_x + L(40), L(3)));
  const Coord gnd_x = n.sd_pads.front().center().x;
  draw_wire(*cell, t, Layer::Metal1, {gnd_x, L(1.5)}, {gnd_x, L(13)}, L(3));

  // Word-line driver: inverter sized `driver_size`, far enough right
  // that its n-well clears the NAND pull-up well (well spacing rule).
  const Coord xd = clear_x + L(14);
  StripeSpec dn{1, L(6 * driver_size), L(6), {}};
  const Stripe drv_n = draw_mos_stripe(*cell, t, false, {xd, L(10)}, dn);
  StripeSpec dp{1, L(6 * driver_size), L(6), {}};
  const Stripe drv_p = draw_mos_stripe(*cell, t, true, {xd, L(36)}, dp);
  cell->add_shape(Layer::NWell, Rect::ltrb(drv_p.well.lo.x, drv_p.well.lo.y,
                                           drv_p.well.hi.x, H));
  const Coord ny_d = drv_n.sd_pads.front().center().y;
  const Coord py_d = drv_p.sd_pads.front().center().y;
  // Driver input gate column, contacted and fed from the NAND spine.
  const Coord gx = drv_n.gates[0].center().x;
  draw_wire(*cell, t, Layer::Poly, {gx, drv_n.gates[0].hi.y - L(1)},
            {gx, drv_p.gates[0].lo.y + L(1)}, L(2));
  const Coord in_y = (drv_n.gates[0].hi.y + drv_p.gates[0].lo.y) / 2;
  draw_contact(*cell, t, Layer::Poly, {gx, in_y});
  draw_wire(*cell, t, Layer::Metal1, {clear_x, spine_y}, {clear_x, in_y},
            L(3));
  draw_wire(*cell, t, Layer::Metal1, {clear_x, in_y}, {gx, in_y}, L(3));
  // Driver supplies: left diffusion columns to the rails.
  const Coord dnl = drv_n.sd_pads.front().center().x;
  draw_wire(*cell, t, Layer::Metal1, {dnl, L(1.5)}, {dnl, ny_d}, L(3));
  const Coord dpl = drv_p.sd_pads.front().center().x;
  draw_wire(*cell, t, Layer::Metal1, {dpl, py_d}, {dpl, H - L(1.5)}, L(3));
  // Driver output -> word line (poly at the array pitch: y 4..6 at the
  // right edge so the decoder abuts the row of 6T cells).
  const Coord out_n = drv_n.sd_pads.back().center().x;
  const Coord out_p = drv_p.sd_pads.back().center().x;
  draw_wire(*cell, t, Layer::Metal1, {out_n, ny_d}, {out_p, py_d}, L(3));
  const Coord wx = out_n + L(8);
  draw_contact(*cell, t, Layer::Poly, {wx, ny_d});
  draw_wire(*cell, t, Layer::Metal1, {out_n, ny_d}, {wx, ny_d}, L(3));
  const Coord W = wx + L(10);
  draw_route_hv(*cell, t, Layer::Poly, {wx, ny_d}, {W - L(1), L(5)}, L(2));
  cell->add_shape(Layer::Poly, Rect::ltrb(wx + L(4), L(4), W, L(6)));

  cell->add_port("wl", Layer::Poly, Rect::ltrb(W - L(2), L(4), W, L(6)));
  cell->add_port("gnd", Layer::Metal1,
                 Rect::ltrb(0, 0, clear_x + L(40), L(3)));
  cell->add_port("vdd", Layer::Metal1,
                 Rect::ltrb(0, H - L(3), clear_x + L(40), H));
  return cell;
}

namespace {

/// Shared body for the sequential bit slices (DFF, counter, Johnson):
/// `fingers` transistor pairs with paired gate columns, rails, and the
/// standard d/q/clk port set.
CellPtr sequential_slice(Library& lib, const Tech& t, const std::string& name,
                         int fingers) {
  bool existed = false;
  auto cell = fresh(lib, name, existed);
  if (existed) return lib.get(name);

  StripeSpec ns{fingers, L(6), L(6), {}};
  const Stripe n = draw_mos_stripe(*cell, t, false, {L(5.5), L(12)}, ns);
  const Coord yp = L(12) + L(6) + L(16);
  StripeSpec ps{fingers, L(6), L(6), {}};
  const Stripe p = draw_mos_stripe(*cell, t, true, {L(5.5), yp}, ps);
  const Coord W = std::max(n.diff.hi.x, p.diff.hi.x) + L(5.5);
  const Coord H = yp + L(6) + L(8) + L(6);

  cell->add_shape(Layer::Metal1, Rect::ltrb(0, 0, W, L(3)));
  cell->add_shape(Layer::Metal1, Rect::ltrb(0, H - L(3), W, H));
  // Stretch the well across the full slice width so horizontally tiled
  // slices merge their wells.
  cell->add_shape(Layer::NWell, Rect::ltrb(0, p.well.lo.y, W, p.well.hi.y));

  // Pair up the gates with poly columns; even columns alternate supply
  // taps, odd columns are signal nodes joined N-to-P in metal1.
  const Coord gy0 = L(12) + L(6) + L(2), gy1 = yp - L(2);
  for (int i = 0; i < fingers; ++i) {
    const Coord gx = n.gates[static_cast<std::size_t>(i)].center().x;
    draw_wire(*cell, t, Layer::Poly, {gx, gy0}, {gx, gy1}, L(2));
  }
  const Coord ny = L(12) + L(3), py = yp + L(3);
  for (std::size_t c = 0; c < n.sd_pads.size(); ++c) {
    const Coord x = n.sd_pads[c].center().x;
    if (c % 2 == 0) {
      draw_wire(*cell, t, Layer::Metal1, {x, ny}, {x, L(1.5)}, L(3));
      draw_wire(*cell, t, Layer::Metal1, {x, py}, {x, H - L(1.5)}, L(3));
    } else {
      draw_wire(*cell, t, Layer::Metal1, {x, ny}, {x, py}, L(3));
    }
  }

  const Coord gy_port_lo = gy0, gy_port_hi = gy1;
  const Coord g0 = n.gates.front().center().x;
  const Coord gl = n.gates.back().center().x;
  cell->add_port("d", Layer::Poly,
                 Rect::ltrb(g0 - L(1), gy_port_lo, g0 + L(1), gy_port_hi));
  cell->add_port("clk", Layer::Poly,
                 Rect::ltrb(gl - L(1), gy_port_lo, gl + L(1), gy_port_hi));
  const Coord qx = n.sd_pads[1].center().x;
  cell->add_port("q", Layer::Metal1,
                 Rect::ltrb(qx - L(1.5), ny, qx + L(1.5), py));
  cell->add_port("gnd", Layer::Metal1, Rect::ltrb(0, 0, W, L(3)));
  cell->add_port("vdd", Layer::Metal1, Rect::ltrb(0, H - L(3), W, H));
  (void)p;
  return cell;
}

}  // namespace

CellPtr dff_cell(Library& lib, const Tech& t) {
  return sequential_slice(lib, t, "dff", 8);
}

CellPtr counter_slice_cell(Library& lib, const Tech& t) {
  // DFF plus toggle XOR and up/down steering: 12 transistor pairs' worth
  // of fingers.
  return sequential_slice(lib, t, "addgen_slice", 12);
}

CellPtr johnson_slice_cell(Library& lib, const Tech& t) {
  // DFF plus the shift multiplexer.
  return sequential_slice(lib, t, "datagen_slice", 10);
}

CellPtr cam_cell(Library& lib, const Tech& t) {
  bool existed = false;
  auto cell = fresh(lib, "cam", existed);
  if (existed) return lib.get("cam");

  const Coord W = L(kCellPitchLambda);
  const Coord y_sram = L(24);
  cell->add_instance("bit", sram_cell_6t(lib, t),
                     geom::Transform::translate(0, y_sram));

  // Compare network below the storage bit: one stripe carrying both XOR
  // branches, GND | key | n1 | bitb | MATCH | bit | n2 | keyb | GND,
  // with contacts only at the two ends (ground) and the centre (match).
  StripeSpec xs;
  xs.fingers = 4;
  xs.gate_w = L(6);
  xs.pitch = L(6);
  xs.contact = {true, false, true, false, true};
  const Stripe cmp = draw_mos_stripe(*cell, t, false, {L(1.5), L(8)}, xs);

  // Match line: metal1 rail at the very bottom, tapped by the centre
  // contact (jogged off the supply columns).
  cell->add_shape(Layer::Metal1, Rect::ltrb(0, 0, W, L(3)));
  draw_wire(*cell, t, Layer::Metal1, {L(22), L(1.5)}, {L(22), L(5)}, L(3));
  draw_wire(*cell, t, Layer::Metal1, {L(22), L(5)}, {L(28), L(5)}, L(3));
  draw_wire(*cell, t, Layer::Metal1, {L(28), L(5)}, {L(28), L(11)}, L(3));
  // Ground ends rise to the storage cell's GND rail.
  draw_wire(*cell, t, Layer::Metal1, {L(4), L(11)}, {L(4), y_sram + L(1.5)},
            L(3));
  draw_wire(*cell, t, Layer::Metal1, {L(52), L(11)}, {L(52), y_sram + L(1.5)},
            L(3));
  // Key lines: extend the bit lines (metal2) down over the compare
  // network; they double as the search-key broadcast.
  cell->add_shape(Layer::Metal2, Rect::ltrb(L(2.5), 0, L(5.5), y_sram));
  cell->add_shape(Layer::Metal2, Rect::ltrb(L(50.5), 0, L(53.5), y_sram));
  // Gate stubs: key, bitb, bit, keyb at the four fingers (kept above the
  // diffusion so they do not form extra gates).
  for (const Rect& g : cmp.gates)
    cell->add_shape(Layer::Poly, Rect::ltrb(g.lo.x, g.hi.y - L(1),
                                            g.hi.x, y_sram - L(4)));
  cell->add_port("cmp_key", Layer::Poly, cmp.gates[0]);
  cell->add_port("cmp_keyb", Layer::Poly, cmp.gates[3]);

  const Coord H = y_sram + L(kCellPitchLambda);
  cell->add_port("key", Layer::Metal2, Rect::ltrb(L(2.5), 0, L(5.5), H));
  cell->add_port("keyb", Layer::Metal2, Rect::ltrb(L(50.5), 0, L(53.5), H));
  cell->add_port("match", Layer::Metal1, Rect::ltrb(0, 0, W, L(3)));
  cell->add_port("wl", Layer::Poly,
                 Rect::ltrb(0, y_sram + L(4), W, y_sram + L(6)));
  return cell;
}

CellPtr pla_cell(Library& lib, const Tech& t, bool programmed) {
  const std::string name = programmed ? "pla_dot" : "pla_blank";
  bool existed = false;
  auto cell = fresh(lib, name, existed);
  if (existed) return lib.get(name);

  const Coord W = L(24), H = L(24);
  // Input: vertical poly; term: horizontal metal1; ground return rail on
  // top (metal1), reached through metal2 where a device exists.
  // In the programmed cell the input line is split around the device
  // gate so the gate is not double-counted as two stacked transistors.
  if (programmed) {
    cell->add_shape(Layer::Poly, Rect::ltrb(L(11), 0, L(13), L(2)));
    cell->add_shape(Layer::Poly, Rect::ltrb(L(11), L(10.5), L(13), H));
  } else {
    cell->add_shape(Layer::Poly, Rect::ltrb(L(11), 0, L(13), H));
  }
  cell->add_shape(Layer::Metal1, Rect::ltrb(0, L(10), W, L(13)));
  cell->add_shape(Layer::Metal1, Rect::ltrb(0, L(21), W, H));

  if (programmed) {
    StripeSpec one{1, L(6), L(6), {}};
    const Stripe s = draw_mos_stripe(*cell, t, false, {L(3.5), L(3)}, one);
    // Drain to the term line.
    draw_wire(*cell, t, Layer::Metal1, {s.sd_pads.front().center().x, L(6)},
              {s.sd_pads.front().center().x, L(11.5)}, L(3));
    // Source to the ground rail via metal2 (crossing the term line).
    const Coord sx = s.sd_pads.back().center().x;
    draw_via1(*cell, t, {sx, L(6)});
    cell->add_shape(Layer::Metal2,
                    Rect::ltrb(sx - L(1.5), L(4.5), sx + L(1.5), L(23)));
    draw_via1(*cell, t, {sx, L(22)});
  }

  cell->add_port("in", Layer::Poly, Rect::ltrb(L(11), 0, L(13), H));
  cell->add_port("term", Layer::Metal1, Rect::ltrb(0, L(10), W, L(13)));
  cell->add_port("gnd", Layer::Metal1, Rect::ltrb(0, L(21), W, H));
  return cell;
}

CellPtr pla_pullup_cell(Library& lib, const Tech& t) {
  bool existed = false;
  auto cell = fresh(lib, "pla_pullup", existed);
  if (existed) return lib.get("pla_pullup");

  const Coord W = L(24), H = L(24);
  cell->add_shape(Layer::Metal1, Rect::ltrb(0, L(10), W, L(13)));  // term
  cell->add_shape(Layer::Metal1, Rect::ltrb(0, L(21), W, H));      // vdd

  StripeSpec one{1, L(6), L(6), {}};
  const Stripe s = draw_mos_stripe(*cell, t, true, {L(3.5), L(5)}, one);
  // Stretch the well over the full cell height so vertically stacked
  // pull-ups merge their wells (well-spacing rule between PLA rows).
  cell->add_shape(Layer::NWell, Rect::ltrb(s.well.lo.x, 0, s.well.hi.x, H));
  draw_wire(*cell, t, Layer::Metal1, {s.sd_pads.front().center().x, L(8)},
            {s.sd_pads.front().center().x, L(11.5)}, L(3));
  const Coord sx = s.sd_pads.back().center().x;
  draw_via1(*cell, t, {sx, L(8)});
  cell->add_shape(Layer::Metal2,
                  Rect::ltrb(sx - L(1.5), L(6.5), sx + L(1.5), L(23)));
  draw_via1(*cell, t, {sx, L(22)});
  // Pseudo-NMOS load: gate is a bias column the macro ties low.
  cell->add_port("bias", Layer::Poly,
                 Rect::ltrb(s.gates[0].lo.x, s.gates[0].lo.y,
                            s.gates[0].hi.x, s.gates[0].hi.y));
  cell->add_port("term", Layer::Metal1, Rect::ltrb(0, L(10), W, L(13)));
  cell->add_port("vdd", Layer::Metal1, Rect::ltrb(0, L(21), W, H));
  return cell;
}

CellPtr strap_cell(Library& lib, const Tech& t, double width_lambda) {
  require(width_lambda >= 8.0 && width_lambda <= 512.0,
          "strap_cell: width out of range");
  const std::string name = strfmt("strap_w%g", width_lambda);
  bool existed = false;
  auto cell = fresh(lib, name, existed);
  if (existed) return lib.get(name);

  const Coord W = L(width_lambda), H = L(kCellPitchLambda);
  // Supply rails matching the 6T cell edges plus a substrate tie row.
  cell->add_shape(Layer::Metal1, Rect::ltrb(0, 0, W, L(3)));
  cell->add_shape(Layer::Metal1, Rect::ltrb(0, L(53), W, H));
  const Coord tx = W / 2;
  cell->add_shape(Layer::NDiff, Rect::ltrb(tx - L(3), L(8), tx + L(3), L(14)));
  draw_contact(*cell, t, Layer::NDiff, {tx, L(11)});
  draw_wire(*cell, t, Layer::Metal1, {tx, L(1.5)}, {tx, L(11)}, L(3));

  cell->add_port("gnd", Layer::Metal1, Rect::ltrb(0, 0, W, L(3)));
  cell->add_port("vdd", Layer::Metal1, Rect::ltrb(0, L(53), W, H));
  return cell;
}

}  // namespace bisram::cells
