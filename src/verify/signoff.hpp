#pragma once
// Unified signoff for a generated BISR RAM: one call (and one CLI,
// examples/bisram_lint.cpp) that runs every static check the repo has —
// microprogram verification of the generated TRPLA, optionally the
// per-crosspoint static fault analysis, DRC on the assembled layout,
// ERC and LVS on the leaf cells the module instantiates, and the exact
// march-coverage analysis of the programmed test — and aggregates the
// verdicts into a single machine-readable report. This is the "is this
// module safe to tape out" gate the paper's flow (Fig. 1) implies but
// never names.

#include <cstdint>
#include <string>
#include <vector>

#include "core/bisramgen.hpp"
#include "march/analysis.hpp"
#include "sta/graph.hpp"
#include "verify/fault_analysis.hpp"
#include "verify/microprogram.hpp"

namespace bisram::verify {

struct SignoffOptions {
  /// Datapath dimensions of the microprogram product model. The
  /// controller only observes AddrLast/BgLast/TimerDone, so the default
  /// abstract space exercises every condition shape without scaling with
  /// the real array; bpw is clamped to the spec's (Johnson backgrounds
  /// beyond the real width do not exist).
  VerifyOptions micro;
  /// Also statically classify every single PLA crosspoint defect
  /// (slower: one product model-check per crosspoint site).
  bool fault_mode = false;
  bool run_drc = true;
  bool run_erc_lvs = true;
  /// Static timing on the macro access-path graph, slacked against the
  /// technology deck's `timing` budgets (sta/access_path.hpp).
  bool run_timing = true;
  /// Worst paths carried with full provenance traces in the report.
  int timing_paths = 4;
  /// DRC violation descriptions kept in the report (the count is exact).
  std::size_t max_drc_details = 10;
  int threads = 0;  ///< fault_mode / timing; <= 0 means campaign_threads()
  /// Persistent LayoutDB snapshot directory (geom::SnapshotCache).
  /// When set, the DRC-grade flatten is loaded from the cache when a
  /// valid entry exists for the spec's layout fingerprint and stored
  /// after a cold flatten; empty disables persistence.
  std::string layout_cache_dir;
};

struct SignoffReport {
  // Echo of the checked spec.
  std::uint32_t words = 0;
  int bpw = 0;
  int bpc = 0;
  int spare_rows = 0;
  std::string technology;
  std::string test_name;
  int max_passes = 0;

  MicroReport micro;
  std::vector<std::string> state_names;

  bool fault_mode = false;
  StaticFaultReport static_faults;

  bool drc_ran = false;
  std::size_t drc_violations = 0;
  std::vector<std::string> drc_details;
  /// The checked layout came from the snapshot cache (no re-flatten).
  bool layout_from_snapshot = false;

  bool erc_lvs_ran = false;
  std::vector<std::string> erc_lvs_details;  ///< empty when clean

  march::MarchAnalysis march;
  std::uint64_t test_cycles = 0;

  bool timing_ran = false;
  sta::StaReport timing;        ///< per-endpoint slack + worst paths
  double access_s = 0;          ///< worst read endpoint arrival
  double write_s = 0;           ///< worst write endpoint arrival
  double access_budget_s = 0;   ///< tech deck ceiling (0 = unconstrained)
  /// The controller watchdog budget in seconds: the microprogram
  /// verifier's derived worst-case cycle bound times the STA clock
  /// period. Tests pin that this equals worst_case_cycles * clock — the
  /// cycle-domain and time-domain signoffs must tell one story.
  double watchdog_budget_s = 0;

  double area_mm2 = 0;
  double overhead_pct = 0;

  bool drc_clean() const { return !drc_ran || drc_violations == 0; }
  bool erc_lvs_clean() const { return erc_lvs_details.empty(); }
  bool timing_clean() const {
    return !timing_ran ||
           (timing.setup_clean() &&
            (access_budget_s <= 0 || access_s <= access_budget_s));
  }
  /// The signoff verdict: microprogram proven clean, layout and circuits
  /// clean, timing closed, and the programmed march at least covers
  /// stuck-at faults.
  bool clean() const {
    return micro.clean() && drc_clean() && erc_lvs_clean() &&
           timing_clean() && march.detects_saf;
  }

  /// Human-readable multi-line rendering.
  std::string render() const;
  /// The unified machine-readable report (one JSON object).
  std::string json() const;
};

/// Generates the module for `spec` and runs the selected checks.
/// Throws bisram::SpecError on invalid specs.
SignoffReport run_signoff(const core::RamSpec& spec,
                          const SignoffOptions& options = {});

}  // namespace bisram::verify
