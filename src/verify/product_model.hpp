#pragma once
// Shared machinery of the static verifier: the exact abstract datapath
// the product model-check composes with the PLA transition table. Kept
// out of microprogram.hpp because only the analyzer and the fault
// classifier need the encoding; the semantics mirror
// sim/controller.cpp's step() cycle for cycle.

#include <cstdint>

#include "microcode/controller.hpp"
#include "util/error.hpp"
#include "verify/microprogram.hpp"

namespace bisram::verify::detail {

inline constexpr std::uint32_t cbit(microcode::Ctrl c) {
  return 1u << static_cast<int>(c);
}
inline constexpr std::uint32_t kTerminalMask =
    cbit(microcode::Ctrl::SigDone) | cbit(microcode::Ctrl::SigFail);

/// Dimensions of the datapath state space. A datapath state packs
/// (addr, up, ones, timer, dirty, overflow) into one index; the full
/// product adds the state-register code as the major axis.
struct DatapathDims {
  std::uint32_t words;
  int bpw;
  int timer_cycles;
  bool johnson;

  explicit DatapathDims(const VerifyOptions& o)
      : words(o.words), bpw(o.bpw), timer_cycles(o.timer_cycles),
        johnson(o.johnson_backgrounds) {
    require(words >= 2, "verify: abstract ADDGEN needs >= 2 words");
    require(bpw >= 1, "verify: abstract DATAGEN needs >= 1 bit");
    require(timer_cycles >= 1, "verify: timer needs >= 1 cycle");
  }

  std::size_t size() const {
    return static_cast<std::size_t>(words) * 2 *
           static_cast<std::size_t>(bpw + 1) *
           static_cast<std::size_t>(timer_cycles + 1) * 4;
  }

  std::size_t encode(std::uint32_t addr, bool up, int ones, int timer,
                     bool dirty, bool overflow) const {
    std::size_t i = addr;
    i = i * 2 + (up ? 1 : 0);
    i = i * static_cast<std::size_t>(bpw + 1) + static_cast<std::size_t>(ones);
    i = i * static_cast<std::size_t>(timer_cycles + 1) +
        static_cast<std::size_t>(timer);
    i = i * 4 + (dirty ? 2u : 0u) + (overflow ? 1u : 0u);
    return i;
  }

  /// Hardware reset: ADDGEN loaded up at 0, DATAGEN at the all-0
  /// background, timer idle, flags clear (PlaBistMachine's constructor).
  std::size_t initial() const { return encode(0, true, 0, 0, false, false); }

  /// Condition vector (bit i = Cond i) this datapath state samples at the
  /// start of a cycle — after the timer decrement, like the simulator.
  std::uint32_t conds_of(std::size_t dp) const {
    const bool overflow = (dp & 1) != 0;
    const bool dirty = (dp & 2) != 0;
    dp /= 4;
    const int timer =
        static_cast<int>(dp % static_cast<std::size_t>(timer_cycles + 1));
    dp /= static_cast<std::size_t>(timer_cycles + 1);
    const int ones = static_cast<int>(dp % static_cast<std::size_t>(bpw + 1));
    dp /= static_cast<std::size_t>(bpw + 1);
    const bool up = (dp & 1) != 0;
    const std::uint32_t addr = static_cast<std::uint32_t>(dp / 2);

    const int t1 = timer > 0 ? timer - 1 : 0;
    std::uint32_t c = 0;
    if (up ? addr == words - 1 : addr == 0)
      c |= 1u << static_cast<int>(microcode::Cond::AddrLast);
    if (!johnson || ones == bpw)
      c |= 1u << static_cast<int>(microcode::Cond::BgLast);
    if (t1 == 0) c |= 1u << static_cast<int>(microcode::Cond::TimerDone);
    if (dirty) c |= 1u << static_cast<int>(microcode::Cond::PassDirty);
    if (overflow) c |= 1u << static_cast<int>(microcode::Cond::TlbOverflow);
    return c;
  }

  /// Applies one cycle's asserted controls to datapath state `dp`,
  /// writing the possible successors to `succ` (deduplicated) and
  /// returning their count (1..3). The branching comes from the
  /// adversarial environment: `m` — does this cycle's read mismatch
  /// (possible only when DoRead is asserted) — and `n` — does the TLB
  /// record triggered by the mismatch find no free spare. Every other
  /// component evolves deterministically, in the simulator's signal
  /// order: AddrStep, then the address resets, DataStep, DataReset,
  /// ClearDirty, TimerStart.
  int step(std::size_t dp, std::uint32_t controls, std::size_t succ[3]) const {
    using microcode::Ctrl;
    const bool overflow = (dp & 1) != 0;
    const bool dirty = (dp & 2) != 0;
    dp /= 4;
    int timer =
        static_cast<int>(dp % static_cast<std::size_t>(timer_cycles + 1));
    dp /= static_cast<std::size_t>(timer_cycles + 1);
    int ones = static_cast<int>(dp % static_cast<std::size_t>(bpw + 1));
    dp /= static_cast<std::size_t>(bpw + 1);
    bool up = (dp & 1) != 0;
    std::uint32_t addr = static_cast<std::uint32_t>(dp / 2);

    const int t1 = timer > 0 ? timer - 1 : 0;
    if (controls & cbit(Ctrl::AddrStep)) {
      const bool at_last = up ? addr == words - 1 : addr == 0;
      if (!at_last) addr = up ? addr + 1 : addr - 1;
    }
    if (controls & cbit(Ctrl::AddrResetUp)) {
      addr = 0;
      up = true;
    }
    if (controls & cbit(Ctrl::AddrResetDown)) {
      addr = words - 1;
      up = false;
    }
    if ((controls & cbit(Ctrl::DataStep)) && johnson && ones < bpw) ++ones;
    if (controls & cbit(Ctrl::DataReset)) ones = 0;
    timer = (controls & cbit(Ctrl::TimerStart)) ? timer_cycles : t1;

    const bool clear_dirty = (controls & cbit(Ctrl::ClearDirty)) != 0;
    const bool can_mismatch = (controls & cbit(Ctrl::DoRead)) != 0;
    const bool can_record = (controls & cbit(Ctrl::TlbRecord)) != 0;

    int count = 0;
    auto push = [&](bool d2, bool o2) {
      const std::size_t s = encode(addr, up, ones, timer, d2, o2);
      for (int i = 0; i < count; ++i)
        if (succ[i] == s) return;
      succ[count++] = s;
    };
    // No mismatch this cycle.
    push(clear_dirty ? false : dirty, overflow);
    if (can_mismatch) {
      // Mismatch; the TLB record (if any) finds a spare...
      push(clear_dirty ? false : true, overflow);
      // ...or does not — overflow latches (it is never cleared).
      if (can_record) push(clear_dirty ? false : true, true);
    }
    return count;
  }
};

}  // namespace bisram::verify::detail
