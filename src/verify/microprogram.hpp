#pragma once
// Static verification of the microcoded TRPLA controller.
//
// The paper trusts its 59-state controller to terminate and to drive the
// IFA-9 march deterministically; until now the repo could only observe a
// runaway controller *dynamically* (the watchdog in PlaBistMachine::run
// buckets it as `hung` after the fact). This module proves those
// properties statically, from the PLA personality alone:
//
//   1. The personality is tabulated into an explicit transition graph
//      over (state-register code × condition vector) — the symbolic FSM
//      the NOR-NOR planes encode (PlaTable).
//   2. The graph is composed with an *exact* model of the datapath the
//      condition bits sample: ADDGEN position/direction, the DATAGEN
//      Johnson fill, and the retention timer evolve exactly as in
//      sim/controller.cpp, while the environment-driven flip-flops
//      (pass-dirty, TLB overflow) are adversarial within their hardware
//      constraints (dirty sets only on a read cycle and clears only on
//      ClearDirty; overflow is monotone and needs a recording read).
//   3. Exhaustive exploration of that product then decides: unreachable
//      states and dead product terms, nondeterminism (overlapping terms
//      on *reachable* inputs — the sharpening of
//      PlaPersonality::matching_terms), unspecified inputs (no matching
//      term: the pseudo-NMOS planes float every output low), and
//      hang/livelock — a reachable cycle that never asserts SigDone or
//      SigFail, which no input sequence can leave. Hang-freedom comes
//      with a sound worst-case cycle bound (longest path to a signal
//      assertion), i.e. the verifier *derives* a watchdog budget instead
//      of guessing one.
//
// Every real execution of PlaBistMachine is a trajectory of this model
// (the adversary subsumes any RAM/TLB content), so "statically hang-free"
// is a proof that no run — on any array fault pattern — trips the
// watchdog, provided the budget is at least worst_case_cycles.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "microcode/controller.hpp"
#include "microcode/pla.hpp"

namespace bisram::verify {

/// Datapath parameters of the product model. Defaults mirror the
/// simulator's defaults; the cross-validation tests set them to the exact
/// geometry of the dynamic campaign so the static verdicts are sound for
/// it. For signoff on large modules the address/data spaces are abstract
/// (the controller only observes AddrLast/BgLast, so modest spaces
/// exercise every condition trace shape).
struct VerifyOptions {
  std::uint32_t words = 8;       ///< ADDGEN address space (>= 2)
  int bpw = 4;                   ///< DATAGEN width: bpw+1 Johnson backgrounds
  int timer_cycles = 3;          ///< retention-timer reload (PlaBistMachine)
  bool johnson_backgrounds = true;
  /// Hard cap on the explored product size (codes x datapath states);
  /// analyze_controller throws SpecError when the model would exceed it.
  std::size_t max_product_states = std::size_t{1} << 22;
};

/// The explicit transition graph the planes encode: next-state code and
/// asserted-control word for every (state code, condition vector) input
/// point, plus which product terms fire there. Input point index =
/// code * 2^kCondCount + conds.
struct PlaTable {
  int state_bits = 0;
  int num_codes = 0;  ///< 2^state_bits
  std::vector<std::uint16_t> next;      ///< OR of matching terms' next codes
  std::vector<std::uint32_t> controls;  ///< bit i = Ctrl i asserted
  /// Product terms matching each input point (only when tabulated
  /// with_terms; empty otherwise).
  std::vector<std::vector<std::uint16_t>> matched;

  std::size_t index(int code, std::uint32_t conds) const {
    return static_cast<std::size_t>(code) *
               (std::size_t{1} << microcode::kCondCount) +
           conds;
  }
};

/// Tabulates `pla` (inputs = state_bits + kCondCount, outputs =
/// state_bits + kCtrlCount) into the explicit graph. `with_terms` also
/// records which terms fire at each input point (used for dead-term and
/// overlap reporting).
PlaTable tabulate(const microcode::PlaPersonality& pla, int state_bits,
                  bool with_terms = false);

/// One PLA input point: a state-register code plus a condition vector
/// (bit i = Cond i).
struct InputPoint {
  int state = 0;
  std::uint32_t conds = 0;
};

/// Two or more product terms firing together on a reachable input.
struct TermOverlap {
  InputPoint at;
  std::vector<int> terms;
  /// The overlapping terms assert different OR rows, so the merged word
  /// (their OR) is something no single term intended — in particular the
  /// next-state code can be a third state.
  bool output_conflict = false;
};

struct MicroReport {
  int state_bits = 0;
  int declared_states = 0;
  int terms = 0;

  std::vector<int> reachable_codes;       ///< sorted state codes entered
  std::vector<int> unreachable_states;    ///< declared states never entered
  std::vector<int> reachable_undeclared;  ///< codes >= declared_states entered
  /// Terms that cannot fire even in the coarse FSM view (conditions left
  /// free): stale microcode, e.g. terms of an orphaned state. A defect.
  std::vector<int> dead_terms;
  /// Terms firable in the coarse view but on no input the exact datapath
  /// model reaches — defensive covers of condition combinations the
  /// hardware invariants exclude (the FSM determinism contract demands
  /// total condition coverage, so generated controllers legitimately
  /// carry these). Informative, not an error.
  std::vector<int> vacuous_terms;
  std::vector<TermOverlap> overlaps;      ///< nondeterminism, reachable only
  std::vector<InputPoint> unspecified;    ///< reachable input, no term fires

  bool hang_free = false;
  /// Witness when !hang_free: state codes along a reachable cycle from
  /// which no input sequence asserts SigDone/SigFail.
  std::vector<int> hang_cycle;
  /// Valid when hang_free: sound upper bound on controller cycles until a
  /// done/fail signal, over every input behavior — a derived watchdog
  /// budget.
  std::uint64_t worst_case_cycles = 0;

  std::size_t product_states_explored = 0;

  bool deterministic() const { return overlaps.empty() && unspecified.empty(); }
  bool fully_reachable() const {
    return unreachable_states.empty() && reachable_undeclared.empty();
  }
  bool clean() const {
    return deterministic() && hang_free && fully_reachable() &&
           dead_terms.empty();
  }

  /// One-paragraph human rendering; pass the controller's state names to
  /// label unreachable states and the hang witness.
  std::string summary(const std::vector<std::string>& state_names = {}) const;
};

/// Statically verifies `ctrl`'s microprogram against the product model.
/// Throws SpecError when the personality's shape does not match a
/// state-assigned controller or the product exceeds
/// options.max_product_states.
MicroReport analyze_controller(const microcode::AssembledController& ctrl,
                               const VerifyOptions& options = {});

}  // namespace bisram::verify
