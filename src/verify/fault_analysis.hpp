#pragma once
// Static fault-mode analysis of the TRPLA microprogram.
//
// sim/infra_faults.hpp asks the robustness question dynamically: inject
// one PLA crosspoint defect, run the whole BIST/BISR flow, classify the
// outcome. This module answers the same question statically, for *every*
// single missing/extra crosspoint, by re-running the product model-check
// of verify/microprogram.hpp on the faulted personality:
//
//   * HangPossible — the faulted program has a reachable cycle of
//     non-signalling edges. Possible-only: whether a real run enters the
//     cycle depends on the array contents.
//   * Benign — definite: a lockstep exploration of (golden code, faulted
//     code, shared datapath) shows the faulted program asserts exactly
//     the golden control word on every reachable cycle. State codes may
//     differ (e.g. a next-state crosspoint fault into an equivalent
//     path); visible behavior cannot, so every run ends as the fault-free
//     run would.
//   * SafeFail — definite: the faulted program diverges from golden but
//     is hang-free and no reachable signalling edge asserts SigDone, so
//     every run — any array, any TLB luck — ends in "Repair
//     Unsuccessful" and the die is discarded.
//   * EscapePossible — the program diverges and some run may reach
//     SigDone; a defective die could be stamped good.
//
// Definite verdicts are sound because every PlaBistMachine run is a
// model trajectory; the cross-validation test
// (tests/test_verify_cross.cpp) checks them against the dynamic
// campaign fault by fault.

#include <array>
#include <cstdint>
#include <vector>

#include "sim/infra_faults.hpp"
#include "verify/microprogram.hpp"

namespace bisram::verify {

enum class StaticVerdict : std::uint8_t {
  Benign,         ///< control-equivalent to the fault-free program
  SafeFail,       ///< always terminates, and only ever with SigFail
  EscapePossible, ///< diverges; some trajectory asserts SigDone
  HangPossible,   ///< a reachable non-signalling cycle exists
};
inline constexpr int kStaticVerdictCount = 4;

/// Human-readable name ("benign", "safe-fail", ...).
const char* static_verdict_name(StaticVerdict v);

/// Classifies one crosspoint defect. `golden` must be tabulate(ctrl.pla,
/// ctrl.state_bits). When the verdict is not HangPossible,
/// `*worst_case_cycles` (if given) receives a sound bound on the faulted
/// program's cycles until a signal — the watchdog budget under which the
/// definite verdicts hold dynamically.
StaticVerdict classify_pla_fault(const microcode::AssembledController& ctrl,
                                 const PlaTable& golden,
                                 const sim::InfraFault& fault,
                                 const VerifyOptions& options,
                                 std::uint64_t* worst_case_cycles = nullptr);

struct FaultClassification {
  sim::InfraFault fault;
  StaticVerdict verdict = StaticVerdict::Benign;
  /// Cycle bound for this faulted program (0 when HangPossible).
  std::uint64_t worst_case_cycles = 0;
};

struct StaticFaultReport {
  /// One entry per fault of enumerate_pla_crosspoint_faults, same order.
  std::vector<FaultClassification> classified;
  std::array<std::int64_t, kStaticVerdictCount> histogram{};
  /// Max bound over the non-hang verdicts: a watchdog at least this large
  /// cannot be tripped by any statically-definite fault.
  std::uint64_t max_worst_case_cycles = 0;

  std::int64_t count(StaticVerdict v) const {
    return histogram[static_cast<std::size_t>(v)];
  }
};

/// Classifies every single PLA crosspoint defect of `ctrl`. Runs on the
/// deterministic parallel engine: bit-identical for any thread count
/// (`threads` <= 0 means campaign_threads()).
StaticFaultReport analyze_pla_faults(const microcode::AssembledController& ctrl,
                                     const VerifyOptions& options = {},
                                     int threads = 0);

}  // namespace bisram::verify
