#include "verify/signoff.hpp"

#include <algorithm>

#include "cells/leaf_cells.hpp"
#include "core/compiler.hpp"
#include "drc/drc.hpp"
#include "geom/layout_snapshot.hpp"
#include "extract/erc.hpp"
#include "extract/extract.hpp"
#include "extract/lvs.hpp"
#include "sta/access_path.hpp"
#include "util/json.hpp"
#include "util/math.hpp"
#include "util/strings.hpp"

namespace bisram::verify {

namespace {

void check_leaf_circuits(const core::RamSpec& spec, const tech::Tech& tech,
                         std::vector<std::string>& details) {
  geom::Library lib;
  const double size = spec.gate_size;
  const int decoder_bits =
      std::max(1, log2_ceil(static_cast<std::uint64_t>(
                    spec.geometry().total_rows())));

  struct Entry {
    geom::CellPtr cell;
    const extract::Schematic* golden;  ///< null = ERC only
  };
  const extract::Schematic sram = extract::sram6t_schematic();
  const extract::Schematic precharge = extract::precharge_schematic();
  const extract::Schematic mux = extract::column_mux_schematic();
  const Entry entries[] = {
      {cells::sram_cell_6t(lib, tech), &sram},
      {cells::precharge_cell(lib, tech, size), &precharge},
      {cells::column_mux_cell(lib, tech, size), &mux},
      {cells::write_driver_cell(lib, tech, size), nullptr},
      {cells::row_decoder_cell(lib, tech, decoder_bits, size), nullptr},
  };
  for (const Entry& e : entries) {
    const extract::Extracted ex = extract::extract(*e.cell, tech);
    for (const auto& v : extract::check_erc(ex))
      details.push_back(e.cell->name() + ": " + extract::describe(v));
    if (e.golden) {
      const extract::LvsResult r = extract::compare(ex, *e.golden);
      if (!r.match)
        details.push_back(e.cell->name() + ": LVS mismatch vs " +
                          e.golden->name + ": " + r.detail);
    }
  }
}

}  // namespace

SignoffReport run_signoff(const core::RamSpec& spec,
                          const SignoffOptions& options) {
  spec.validate();
  core::RamSpec build = spec;
  build.run_drc = false;  // DRC is this function's job, behind its flag
  const core::Generated g = core::generate(build);

  SignoffReport rep;
  rep.words = spec.words;
  rep.bpw = spec.bpw;
  rep.bpc = spec.bpc;
  rep.spare_rows = spec.spare_rows;
  rep.technology = g.sheet.technology;
  rep.test_name = spec.test->name();
  rep.max_passes = spec.max_passes;
  rep.state_names = g.trpla.state_names;
  rep.area_mm2 = g.sheet.area_mm2;
  rep.overhead_pct = g.sheet.overhead_pct;
  rep.test_cycles = g.sheet.test_cycles;

  VerifyOptions micro = options.micro;
  micro.bpw = std::min(micro.bpw, spec.bpw);
  micro.johnson_backgrounds = spec.johnson_backgrounds;
  rep.micro = analyze_controller(g.trpla, micro);

  if (options.fault_mode) {
    rep.fault_mode = true;
    rep.static_faults = analyze_pla_faults(g.trpla, micro, options.threads);
  }

  const tech::Tech& tech = spec.resolved_technology();
  if (options.run_drc) {
    rep.drc_ran = true;
    // One flatten into the shared layout database; the checker runs its
    // per-tile passes in parallel over it. With a snapshot directory
    // configured, a warm entry for this spec's layout fingerprint
    // replaces the flatten (the loader validates framing, CRC and
    // content hash, so a stale or damaged entry degrades to a cold
    // flatten, never to wrong geometry).
    const geom::SnapshotCache snap_cache(options.layout_cache_dir);
    std::unique_ptr<geom::LayoutDB> db;
    if (snap_cache.persistent()) {
      const std::uint64_t key = core::layout_fingerprint(spec, tech);
      db = snap_cache.load(key);
      rep.layout_from_snapshot = db != nullptr;
      if (!db) {
        db = std::make_unique<geom::LayoutDB>(*g.top,
                                              drc::tile_size_for(tech));
        snap_cache.store(key, *db);
      }
    } else {
      db = std::make_unique<geom::LayoutDB>(*g.top, drc::tile_size_for(tech));
    }
    const auto violations = drc::check(*db, tech);
    rep.drc_violations = violations.size();
    for (std::size_t i = 0;
         i < std::min(violations.size(), options.max_drc_details); ++i)
      rep.drc_details.push_back(drc::describe(violations[i]));
  }
  if (options.run_erc_lvs) {
    rep.erc_lvs_ran = true;
    check_leaf_circuits(spec, tech, rep.erc_lvs_details);
  }
  if (options.run_timing) {
    rep.timing_ran = true;
    sta::AnalyzeOptions aopt;
    aopt.clock_period_s = tech.timing.clock_period_s;
    aopt.k_paths = options.timing_paths;
    aopt.threads = options.threads;
    const sta::AccessTiming at =
        sta::analyze_access_path(tech, spec.geometry(), spec.gate_size, aopt);
    rep.timing = at.report;
    rep.access_s = at.access_s;
    rep.write_s = at.write_s;
    rep.access_budget_s = tech.timing.access_budget_s;
    // The cycle-domain watchdog bound expressed in the STA's clock
    // domain: one number both signoffs must agree on.
    if (rep.micro.hang_free)
      rep.watchdog_budget_s =
          static_cast<double>(rep.micro.worst_case_cycles) *
          rep.timing.clock_period_s;
  }

  rep.march = march::analyze(*spec.test);
  return rep;
}

std::string SignoffReport::render() const {
  std::string s = strfmt(
      "bisram_lint: %u x %d RAM (bpc %d, %d spare rows) on %s, test %s\n",
      words, bpw, bpc, spare_rows, technology.c_str(), test_name.c_str());
  s += "  " + micro.summary(state_names) + "\n";
  if (fault_mode) {
    s += strfmt(
        "  crosspoint faults: %zu sites — %lld benign, %lld safe-fail, "
        "%lld escape-possible, %lld hang-possible; watchdog budget %llu\n",
        static_faults.classified.size(),
        static_cast<long long>(static_faults.count(StaticVerdict::Benign)),
        static_cast<long long>(static_faults.count(StaticVerdict::SafeFail)),
        static_cast<long long>(
            static_faults.count(StaticVerdict::EscapePossible)),
        static_cast<long long>(
            static_faults.count(StaticVerdict::HangPossible)),
        static_cast<unsigned long long>(static_faults.max_worst_case_cycles));
  }
  if (drc_ran) {
    s += strfmt("  DRC: %zu violation(s)%s\n", drc_violations,
                layout_from_snapshot ? " (layout from snapshot cache)" : "");
    for (const auto& d : drc_details) s += "    " + d + "\n";
  } else {
    s += "  DRC: skipped\n";
  }
  if (erc_lvs_ran) {
    s += strfmt("  ERC/LVS: %s\n",
                erc_lvs_clean() ? "clean" : "VIOLATIONS");
    for (const auto& d : erc_lvs_details) s += "    " + d + "\n";
  } else {
    s += "  ERC/LVS: skipped\n";
  }
  if (timing_ran) {
    s += strfmt(
        "  timing: access %.3f ns (budget %.3f ns), write %.3f ns, "
        "WNS %+.3f ns @ clock %.3f ns — %s\n",
        access_s * 1e9, access_budget_s * 1e9, write_s * 1e9,
        timing.wns_s * 1e9, timing.clock_period_s * 1e9,
        timing_clean() ? "clean" : "VIOLATED");
    if (!timing.worst_paths.empty()) {
      const sta::CriticalPath& p = timing.worst_paths.front();
      s += strfmt("    worst path -> %s (slack %+.3f ns):\n",
                  p.endpoint.c_str(), p.slack_s * 1e9);
      for (const sta::PathStep& st : p.steps)
        s += strfmt("      %8.3f ns  +%7.3f ns  %-14s %s\n",
                    st.arrival_s * 1e9, st.incr_s * 1e9, st.node.c_str(),
                    st.tag.c_str());
    }
    if (micro.hang_free)
      s += strfmt("    watchdog budget: %llu cycles = %.1f ns\n",
                  static_cast<unsigned long long>(micro.worst_case_cycles),
                  watchdog_budget_s * 1e9);
  } else {
    s += "  timing: skipped\n";
  }
  s += strfmt("  march coverage: %s (%llu test cycles)\n",
              march.summary().c_str(),
              static_cast<unsigned long long>(test_cycles));
  s += strfmt("  area %.4f mm^2, BIST/BISR overhead %.2f%%\n", area_mm2,
              overhead_pct);
  s += strfmt("signoff: %s\n", clean() ? "CLEAN" : "DIRTY");
  return s;
}

std::string SignoffReport::json() const {
  JsonWriter j;
  j.begin_object();
  j.key("spec").begin_object();
  j.key("words").value(static_cast<std::int64_t>(words));
  j.key("bpw").value(bpw);
  j.key("bpc").value(bpc);
  j.key("spare_rows").value(spare_rows);
  j.key("technology").value(technology);
  j.key("test").value(test_name);
  j.key("max_passes").value(max_passes);
  j.end_object();

  j.key("microcode").begin_object();
  j.key("state_bits").value(micro.state_bits);
  j.key("declared_states").value(micro.declared_states);
  j.key("product_terms").value(micro.terms);
  j.key("reachable_codes").value(
      static_cast<std::int64_t>(micro.reachable_codes.size()));
  j.key("unreachable_states").begin_array();
  for (int c : micro.unreachable_states) j.value(c);
  j.end_array();
  j.key("reachable_undeclared").begin_array();
  for (int c : micro.reachable_undeclared) j.value(c);
  j.end_array();
  j.key("dead_terms").begin_array();
  for (int t : micro.dead_terms) j.value(t);
  j.end_array();
  j.key("vacuous_terms").begin_array();
  for (int t : micro.vacuous_terms) j.value(t);
  j.end_array();
  j.key("overlaps").value(static_cast<std::int64_t>(micro.overlaps.size()));
  j.key("unspecified_inputs")
      .value(static_cast<std::int64_t>(micro.unspecified.size()));
  j.key("deterministic").value(micro.deterministic());
  j.key("hang_free").value(micro.hang_free);
  if (micro.hang_free) {
    j.key("worst_case_cycles").value(micro.worst_case_cycles);
  } else {
    j.key("hang_cycle").begin_array();
    for (int c : micro.hang_cycle) j.value(c);
    j.end_array();
  }
  j.key("product_states_explored")
      .value(static_cast<std::uint64_t>(micro.product_states_explored));
  j.key("clean").value(micro.clean());
  j.end_object();

  if (fault_mode) {
    j.key("static_faults").begin_object();
    j.key("sites").value(
        static_cast<std::int64_t>(static_faults.classified.size()));
    for (int v = 0; v < kStaticVerdictCount; ++v)
      j.key(static_verdict_name(static_cast<StaticVerdict>(v)))
          .value(static_cast<std::int64_t>(
              static_faults.histogram[static_cast<std::size_t>(v)]));
    j.key("max_worst_case_cycles")
        .value(static_faults.max_worst_case_cycles);
    j.end_object();
  }

  j.key("drc").begin_object();
  j.key("ran").value(drc_ran);
  if (drc_ran) {
    j.key("violations").value(static_cast<std::int64_t>(drc_violations));
    j.key("layout_from_snapshot").value(layout_from_snapshot);
    j.key("details").begin_array();
    for (const auto& d : drc_details) j.value(d);
    j.end_array();
  }
  j.end_object();

  j.key("erc_lvs").begin_object();
  j.key("ran").value(erc_lvs_ran);
  if (erc_lvs_ran) {
    j.key("clean").value(erc_lvs_clean());
    j.key("details").begin_array();
    for (const auto& d : erc_lvs_details) j.value(d);
    j.end_array();
  }
  j.end_object();

  j.key("march").begin_object();
  j.key("summary").value(march.summary());
  j.key("detects_saf").value(march.detects_saf);
  j.key("detects_tf").value(march.detects_tf);
  j.key("detects_cfst").value(march.detects_cfst);
  j.key("detects_cfid").value(march.detects_cfid);
  j.key("detects_cfin").value(march.detects_cfin);
  j.key("detects_sof").value(march.detects_sof);
  j.key("exercises_retention").value(march.exercises_retention);
  j.key("test_cycles").value(test_cycles);
  j.end_object();

  j.key("timing").begin_object();
  j.key("ran").value(timing_ran);
  if (timing_ran) {
    j.key("constrained").value(timing.constrained);
    j.key("clock_period_s").value(timing.clock_period_s);
    j.key("access_s").value(access_s);
    j.key("write_s").value(write_s);
    j.key("access_budget_s").value(access_budget_s);
    j.key("wns_s").value(timing.wns_s);
    j.key("tns_s").value(timing.tns_s);
    j.key("watchdog_budget_s").value(watchdog_budget_s);
    j.key("endpoints").begin_array();
    for (const sta::EndpointSlack& e : timing.endpoints) {
      j.begin_object();
      j.key("name").value(e.name);
      j.key("arrival_s").value(e.arrival_s);
      j.key("slew_s").value(e.slew_s);
      j.key("slack_s").value(e.slack_s);
      j.end_object();
    }
    j.end_array();
    j.key("worst_paths").begin_array();
    for (const sta::CriticalPath& p : timing.worst_paths) {
      j.begin_object();
      j.key("endpoint").value(p.endpoint);
      j.key("arrival_s").value(p.arrival_s);
      j.key("slack_s").value(p.slack_s);
      j.key("steps").begin_array();
      for (const sta::PathStep& st : p.steps) {
        j.begin_object();
        j.key("node").value(st.node);
        j.key("tag").value(st.tag);
        j.key("incr_s").value(st.incr_s);
        j.key("arrival_s").value(st.arrival_s);
        j.end_object();
      }
      j.end_array();
      j.end_object();
    }
    j.end_array();
    j.key("clean").value(timing_clean());
  }
  j.end_object();

  j.key("datasheet").begin_object();
  j.key("area_mm2").value(area_mm2);
  j.key("overhead_pct").value(overhead_pct);
  j.end_object();

  j.key("clean").value(clean());
  j.end_object();
  return j.str();
}

}  // namespace bisram::verify
