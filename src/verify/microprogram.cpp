#include "verify/microprogram.hpp"

#include <algorithm>

#include "util/strings.hpp"
#include "verify/product_model.hpp"

namespace bisram::verify {

using microcode::kCondCount;
using microcode::kCtrlCount;

namespace {

constexpr std::uint32_t kCondSpace = 1u << kCondCount;

/// Bit-mask form of one product term, split at the state/condition and
/// next-state/control boundaries so table filling is a handful of ANDs.
struct TermMasks {
  std::uint32_t smask = 0, sval = 0;  ///< over the state-bit columns
  std::uint32_t cmask = 0, cval = 0;  ///< over the condition columns
  std::uint16_t next = 0;             ///< next-state code asserted
  std::uint32_t controls = 0;         ///< control word asserted
};

std::vector<TermMasks> term_masks(const microcode::PlaPersonality& pla,
                                  int state_bits) {
  std::vector<TermMasks> out;
  out.reserve(static_cast<std::size_t>(pla.terms()));
  for (const auto& term : pla.product_terms()) {
    TermMasks m;
    for (int i = 0; i < state_bits; ++i) {
      const char c = term.and_row[static_cast<std::size_t>(i)];
      if (c == '-') continue;
      m.smask |= 1u << i;
      if (c == '1') m.sval |= 1u << i;
    }
    for (int i = 0; i < kCondCount; ++i) {
      const char c = term.and_row[static_cast<std::size_t>(state_bits + i)];
      if (c == '-') continue;
      m.cmask |= 1u << i;
      if (c == '1') m.cval |= 1u << i;
    }
    for (int i = 0; i < state_bits; ++i)
      if (term.or_row[static_cast<std::size_t>(i)] == '1')
        m.next |= static_cast<std::uint16_t>(1u << i);
    for (int i = 0; i < kCtrlCount; ++i)
      if (term.or_row[static_cast<std::size_t>(state_bits + i)] == '1')
        m.controls |= 1u << i;
    out.push_back(m);
  }
  return out;
}

}  // namespace

PlaTable tabulate(const microcode::PlaPersonality& pla, int state_bits,
                  bool with_terms) {
  require(state_bits >= 1 && state_bits <= 14,
          "verify: state register width out of range (1..14 flip-flops)");
  require(pla.inputs() == state_bits + kCondCount,
          "verify: personality input width is not state bits + condition "
          "count — not a state-assigned controller PLA");
  require(pla.outputs() == state_bits + kCtrlCount,
          "verify: personality output width is not state bits + control "
          "count — not a state-assigned controller PLA");

  PlaTable table;
  table.state_bits = state_bits;
  table.num_codes = 1 << state_bits;
  const std::size_t entries =
      static_cast<std::size_t>(table.num_codes) * kCondSpace;
  table.next.assign(entries, 0);
  table.controls.assign(entries, 0);
  if (with_terms) table.matched.assign(entries, {});

  const auto masks = term_masks(pla, state_bits);
  for (int code = 0; code < table.num_codes; ++code) {
    const auto ucode = static_cast<std::uint32_t>(code);
    for (std::uint32_t conds = 0; conds < kCondSpace; ++conds) {
      const std::size_t at = table.index(code, conds);
      for (std::size_t t = 0; t < masks.size(); ++t) {
        const TermMasks& m = masks[t];
        if ((ucode & m.smask) != m.sval || (conds & m.cmask) != m.cval)
          continue;
        table.next[at] |= m.next;
        table.controls[at] |= m.controls;
        if (with_terms) table.matched[at].push_back(static_cast<std::uint16_t>(t));
      }
    }
  }
  return table;
}

namespace {

/// DFS frame of the hang/bound analysis.
struct Frame {
  std::size_t state;
  std::size_t at;  ///< stack position (for witness extraction)
  int nsucc;
  int visited_succ;
  std::size_t succ[3];
  bool terminal;
};

std::vector<bool> input_vector(int code, std::uint32_t conds, int state_bits) {
  std::vector<bool> in(static_cast<std::size_t>(state_bits + kCondCount));
  for (int i = 0; i < state_bits; ++i)
    in[static_cast<std::size_t>(i)] = ((code >> i) & 1) != 0;
  for (int i = 0; i < kCondCount; ++i)
    in[static_cast<std::size_t>(state_bits + i)] = ((conds >> i) & 1) != 0;
  return in;
}

}  // namespace

MicroReport analyze_controller(const microcode::AssembledController& ctrl,
                               const VerifyOptions& options) {
  const PlaTable table = tabulate(ctrl.pla, ctrl.state_bits, true);
  const detail::DatapathDims dims(options);
  const std::size_t dp_count = dims.size();
  const std::size_t product =
      dp_count * static_cast<std::size_t>(table.num_codes);
  require(product <= options.max_product_states,
          strfmt("verify: product model needs %zu states (cap %zu); shrink "
                 "VerifyOptions::words/bpw or raise max_product_states",
                 product, options.max_product_states));

  MicroReport rep;
  rep.state_bits = ctrl.state_bits;
  rep.declared_states = ctrl.num_states;
  rep.terms = ctrl.pla.terms();

  const std::size_t start =
      static_cast<std::size_t>(ctrl.initial_state) * dp_count + dims.initial();

  // --- phase 1: full reachability, clocking through done signals --------
  // Hardware never stops evaluating the planes; the DONE states hold
  // their signal via self-loop terms. Following terminal edges too keeps
  // those terms from being misreported as dead.
  std::vector<std::uint8_t> visited(product, 0);
  std::vector<std::uint8_t> point_seen(table.next.size(), 0);
  std::vector<std::uint8_t> code_seen(static_cast<std::size_t>(table.num_codes),
                                      0);
  {
    std::vector<std::size_t> stack{start};
    visited[start] = 1;
    std::size_t succ[3];
    while (!stack.empty()) {
      const std::size_t s = stack.back();
      stack.pop_back();
      ++rep.product_states_explored;
      const auto code = static_cast<int>(s / dp_count);
      const std::size_t dp = s % dp_count;
      const std::uint32_t conds = dims.conds_of(dp);
      const std::size_t at = table.index(code, conds);
      point_seen[at] = 1;
      code_seen[static_cast<std::size_t>(code)] = 1;
      const int n = dims.step(dp, table.controls[at], succ);
      for (int i = 0; i < n; ++i) {
        const std::size_t ns =
            static_cast<std::size_t>(table.next[at]) * dp_count + succ[i];
        if (!visited[ns]) {
          visited[ns] = 1;
          stack.push_back(ns);
        }
      }
    }
  }

  // --- lint over reachable input points ---------------------------------
  std::vector<std::uint8_t> fired(static_cast<std::size_t>(rep.terms), 0);
  for (int code = 0; code < table.num_codes; ++code) {
    for (std::uint32_t conds = 0; conds < kCondSpace; ++conds) {
      const std::size_t at = table.index(code, conds);
      if (!point_seen[at]) continue;
      const auto& matched = table.matched[at];
      for (std::uint16_t t : matched) fired[t] = 1;
      // Cross-check the table against the personality's own point check.
      ensure(ctrl.pla.is_deterministic_for(
                 input_vector(code, conds, ctrl.state_bits)) ==
                 (matched.size() == 1),
             "verify: transition table disagrees with matching_terms");
      if (matched.empty()) {
        rep.unspecified.push_back({code, conds});
      } else if (matched.size() >= 2) {
        TermOverlap o;
        o.at = {code, conds};
        o.terms.assign(matched.begin(), matched.end());
        const auto& first =
            ctrl.pla.product_terms()[static_cast<std::size_t>(matched[0])];
        for (std::uint16_t t : matched)
          if (ctrl.pla.product_terms()[static_cast<std::size_t>(t)].or_row !=
              first.or_row)
            o.output_conflict = true;
        rep.overlaps.push_back(std::move(o));
      }
    }
  }
  // Coarse FSM view: code-level reachability with the conditions left
  // free. A term dead even here is stale microcode; a term alive here
  // but dead in the exact model is a defensive cover of a condition
  // combination the datapath invariants exclude.
  std::vector<std::uint8_t> fired_free(static_cast<std::size_t>(rep.terms), 0);
  {
    std::vector<std::uint8_t> free_code(
        static_cast<std::size_t>(table.num_codes), 0);
    std::vector<int> stack{ctrl.initial_state};
    free_code[static_cast<std::size_t>(ctrl.initial_state)] = 1;
    while (!stack.empty()) {
      const int code = stack.back();
      stack.pop_back();
      for (std::uint32_t conds = 0; conds < kCondSpace; ++conds) {
        const std::size_t at = table.index(code, conds);
        for (std::uint16_t t : table.matched[at]) fired_free[t] = 1;
        const int next = table.next[at];
        if (!free_code[static_cast<std::size_t>(next)]) {
          free_code[static_cast<std::size_t>(next)] = 1;
          stack.push_back(next);
        }
      }
    }
  }
  for (int t = 0; t < rep.terms; ++t) {
    if (!fired_free[static_cast<std::size_t>(t)])
      rep.dead_terms.push_back(t);
    else if (!fired[static_cast<std::size_t>(t)])
      rep.vacuous_terms.push_back(t);
  }
  for (int code = 0; code < table.num_codes; ++code) {
    if (code_seen[static_cast<std::size_t>(code)]) {
      rep.reachable_codes.push_back(code);
      if (code >= ctrl.num_states) rep.reachable_undeclared.push_back(code);
    } else if (code < ctrl.num_states) {
      rep.unreachable_states.push_back(code);
    }
  }

  // --- phase 2: hang analysis -------------------------------------------
  // Restricted to edges that assert neither SigDone nor SigFail: a cycle
  // here is a reachable loop no input sequence can ever finish from; its
  // absence makes the non-terminal region a DAG whose longest path is a
  // sound watchdog budget.
  std::vector<std::uint8_t> color(product, 0);  // 0 white, 1 grey, 2 black
  std::vector<std::uint32_t> bound(product, 0);
  std::vector<Frame> frames;
  frames.reserve(1024);

  auto open_frame = [&](std::size_t s) {
    Frame f;
    f.state = s;
    f.at = frames.size();
    f.visited_succ = 0;
    const auto code = static_cast<int>(s / dp_count);
    const std::size_t dp = s % dp_count;
    const std::size_t at = table.index(code, dims.conds_of(dp));
    f.terminal = (table.controls[at] & detail::kTerminalMask) != 0;
    f.nsucc = f.terminal ? 0 : dims.step(dp, table.controls[at], f.succ);
    if (!f.terminal)
      for (int i = 0; i < f.nsucc; ++i)
        f.succ[i] =
            static_cast<std::size_t>(table.next[at]) * dp_count + f.succ[i];
    color[s] = 1;
    frames.push_back(f);
  };

  rep.hang_free = true;
  open_frame(start);
  while (!frames.empty() && rep.hang_free) {
    Frame& f = frames.back();
    if (f.visited_succ == f.nsucc) {
      // Post-order: close the frame. A terminal state costs one cycle
      // (the cycle that asserts the signal); otherwise one cycle plus
      // the worst successor.
      std::uint32_t b = 1;
      for (int i = 0; i < f.nsucc; ++i)
        b = std::max(b, 1 + bound[f.succ[i]]);
      bound[f.state] = b;
      color[f.state] = 2;
      frames.pop_back();
      continue;
    }
    const std::size_t ns = f.succ[f.visited_succ++];
    if (color[ns] == 0) {
      open_frame(ns);
    } else if (color[ns] == 1) {
      // Back edge: a reachable cycle that never signals done/fail.
      rep.hang_free = false;
      std::size_t i = frames.size();
      while (i > 0 && frames[i - 1].state != ns) --i;
      for (std::size_t k = (i > 0 ? i - 1 : 0); k < frames.size(); ++k) {
        const int code = static_cast<int>(frames[k].state / dp_count);
        if (rep.hang_cycle.empty() || rep.hang_cycle.back() != code)
          rep.hang_cycle.push_back(code);
      }
    }
  }
  if (rep.hang_free) rep.worst_case_cycles = bound[start];

  return rep;
}

std::string MicroReport::summary(
    const std::vector<std::string>& state_names) const {
  auto name_of = [&](int code) {
    if (code < static_cast<int>(state_names.size()))
      return state_names[static_cast<std::size_t>(code)];
    return strfmt("code%d", code);
  };
  std::string s = strfmt(
      "microprogram: %d states in %d flip-flops, %d product terms; "
      "reachable %zu/%d",
      declared_states, state_bits, terms, reachable_codes.size(),
      declared_states);
  if (!unreachable_states.empty()) {
    s += "; unreachable:";
    for (int c : unreachable_states) s += " " + name_of(c);
  }
  if (!reachable_undeclared.empty())
    s += strfmt("; %zu undeclared codes entered", reachable_undeclared.size());
  s += strfmt("; dead terms %zu; vacuous (defensive) terms %zu; overlaps "
              "%zu; unspecified inputs %zu",
              dead_terms.size(), vacuous_terms.size(), overlaps.size(),
              unspecified.size());
  if (hang_free) {
    s += strfmt("; hang-free (worst case %llu cycles)",
                static_cast<unsigned long long>(worst_case_cycles));
  } else {
    s += "; HANG POSSIBLE via";
    for (int c : hang_cycle) s += " " + name_of(c);
  }
  return s;
}

}  // namespace bisram::verify
