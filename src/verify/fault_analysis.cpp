#include "verify/fault_analysis.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/parallel.hpp"
#include "verify/product_model.hpp"

namespace bisram::verify {

const char* static_verdict_name(StaticVerdict v) {
  switch (v) {
    case StaticVerdict::Benign: return "benign";
    case StaticVerdict::SafeFail: return "safe-fail";
    case StaticVerdict::EscapePossible: return "escape-possible";
    case StaticVerdict::HangPossible: return "hang-possible";
  }
  return "?";
}

namespace {

using detail::cbit;
using detail::DatapathDims;
using detail::kTerminalMask;

/// Solo exploration of one program over the non-signalling edges:
/// hang-freedom, whether any reachable signalling edge asserts SigDone
/// (SigDone wins over SigFail, as in the simulator), and the longest
/// path to a signal when hang-free.
struct SoloResult {
  bool hang_free = true;
  bool any_done = false;
  std::uint64_t bound = 0;
};

SoloResult explore_solo(const PlaTable& table, const DatapathDims& dims,
                        int start_code) {
  const std::size_t dp_count = dims.size();
  const std::size_t product =
      dp_count * static_cast<std::size_t>(table.num_codes);

  struct Frame {
    std::size_t state;
    int nsucc;
    int visited_succ;
    std::size_t succ[3];
  };
  std::vector<std::uint8_t> color(product, 0);
  std::vector<std::uint32_t> bound(product, 0);
  std::vector<Frame> frames;
  SoloResult res;

  auto open_frame = [&](std::size_t s) {
    Frame f;
    f.state = s;
    f.visited_succ = 0;
    const auto code = static_cast<int>(s / dp_count);
    const std::size_t dp = s % dp_count;
    const std::size_t at = table.index(code, dims.conds_of(dp));
    const std::uint32_t controls = table.controls[at];
    if (controls & kTerminalMask) {
      f.nsucc = 0;
      if (controls & cbit(microcode::Ctrl::SigDone)) res.any_done = true;
    } else {
      f.nsucc = dims.step(dp, controls, f.succ);
      for (int i = 0; i < f.nsucc; ++i)
        f.succ[i] =
            static_cast<std::size_t>(table.next[at]) * dp_count + f.succ[i];
    }
    color[s] = 1;
    frames.push_back(f);
  };

  const std::size_t start =
      static_cast<std::size_t>(start_code) * dp_count + dims.initial();
  open_frame(start);
  while (!frames.empty()) {
    Frame& f = frames.back();
    if (f.visited_succ == f.nsucc) {
      std::uint32_t b = 1;
      for (int i = 0; i < f.nsucc; ++i)
        b = std::max(b, 1 + bound[f.succ[i]]);
      bound[f.state] = b;
      color[f.state] = 2;
      frames.pop_back();
      continue;
    }
    const std::size_t ns = f.succ[f.visited_succ++];
    if (color[ns] == 0) {
      open_frame(ns);
    } else if (color[ns] == 1) {
      res.hang_free = false;
      return res;
    }
  }
  res.bound = bound[start];
  return res;
}

/// Lockstep exploration of golden × faulted over a shared datapath,
/// valid while the two programs assert identical control words (the
/// datapath and environment then evolve identically for both). Returns
/// true when no reachable lockstep state diverges — the faulted program
/// is control-equivalent to golden, hence behaviorally identical.
bool control_equivalent(const PlaTable& golden, const PlaTable& faulted,
                        const DatapathDims& dims, int start_code) {
  const std::size_t dp_count = dims.size();
  const std::size_t codes = static_cast<std::size_t>(golden.num_codes);
  const std::size_t pairs = codes * codes * dp_count;
  std::vector<std::uint64_t> visited((pairs + 63) / 64, 0);
  auto test_and_set = [&](std::size_t p) {
    const std::uint64_t m = std::uint64_t{1} << (p & 63);
    const bool was = (visited[p >> 6] & m) != 0;
    visited[p >> 6] |= m;
    return was;
  };

  std::vector<std::size_t> stack;
  const std::size_t start =
      (static_cast<std::size_t>(start_code) * codes +
       static_cast<std::size_t>(start_code)) *
          dp_count +
      dims.initial();
  test_and_set(start);
  stack.push_back(start);
  std::size_t succ[3];
  while (!stack.empty()) {
    const std::size_t s = stack.back();
    stack.pop_back();
    const std::size_t dp = s % dp_count;
    const std::size_t cf = (s / dp_count) % codes;
    const std::size_t cg = s / dp_count / codes;
    const std::uint32_t conds = dims.conds_of(dp);
    const std::size_t at_g = golden.index(static_cast<int>(cg), conds);
    const std::size_t at_f = faulted.index(static_cast<int>(cf), conds);
    if (golden.controls[at_g] != faulted.controls[at_f]) return false;
    // Identical controls: if they signal, both machines stop here with
    // the same outcome; otherwise both datapaths take the same step.
    if (golden.controls[at_g] & kTerminalMask) continue;
    const int n = dims.step(dp, golden.controls[at_g], succ);
    for (int i = 0; i < n; ++i) {
      const std::size_t ns =
          (static_cast<std::size_t>(golden.next[at_g]) * codes +
           static_cast<std::size_t>(faulted.next[at_f])) *
              dp_count +
          succ[i];
      if (!test_and_set(ns)) stack.push_back(ns);
    }
  }
  return true;
}

}  // namespace

StaticVerdict classify_pla_fault(const microcode::AssembledController& ctrl,
                                 const PlaTable& golden,
                                 const sim::InfraFault& fault,
                                 const VerifyOptions& options,
                                 std::uint64_t* worst_case_cycles) {
  const microcode::PlaPersonality faulted_pla =
      sim::apply_pla_fault(ctrl.pla, fault);
  const PlaTable faulted = tabulate(faulted_pla, ctrl.state_bits);
  const DatapathDims dims(options);
  require(dims.size() * static_cast<std::size_t>(faulted.num_codes) <=
              options.max_product_states,
          "verify: fault product model exceeds max_product_states");

  if (worst_case_cycles) *worst_case_cycles = 0;
  const SoloResult solo = explore_solo(faulted, dims, ctrl.initial_state);
  if (!solo.hang_free) return StaticVerdict::HangPossible;
  if (worst_case_cycles) *worst_case_cycles = solo.bound;
  if (control_equivalent(golden, faulted, dims, ctrl.initial_state))
    return StaticVerdict::Benign;
  return solo.any_done ? StaticVerdict::EscapePossible
                       : StaticVerdict::SafeFail;
}

StaticFaultReport analyze_pla_faults(const microcode::AssembledController& ctrl,
                                     const VerifyOptions& options,
                                     int threads) {
  const std::vector<sim::InfraFault> faults =
      sim::enumerate_pla_crosspoint_faults(ctrl.pla);
  const PlaTable golden = tabulate(ctrl.pla, ctrl.state_bits);

  // Fold on the deterministic engine: per-fault classifications are
  // appended in strict index order, so the report is bit-identical for
  // any thread count.
  StaticFaultReport report = parallel_reduce<StaticFaultReport>(
      static_cast<std::int64_t>(faults.size()), /*chunk=*/8,
      StaticFaultReport{},
      [&](std::int64_t i) {
        FaultClassification c;
        c.fault = faults[static_cast<std::size_t>(i)];
        c.verdict = classify_pla_fault(ctrl, golden, c.fault, options,
                                       &c.worst_case_cycles);
        StaticFaultReport one;
        one.classified.push_back(c);
        return one;
      },
      [](StaticFaultReport acc, StaticFaultReport part) {
        for (auto& c : part.classified)
          acc.classified.push_back(std::move(c));
        return acc;
      },
      threads);

  for (const auto& c : report.classified) {
    ++report.histogram[static_cast<std::size_t>(c.verdict)];
    report.max_worst_case_cycles =
        std::max(report.max_worst_case_cycles, c.worst_case_cycles);
  }
  return report;
}

}  // namespace bisram::verify
