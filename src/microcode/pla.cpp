#include "microcode/pla.hpp"

#include <cstring>
#include <istream>
#include <ostream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bisram::microcode {

PlaPersonality::PlaPersonality(int num_inputs, int num_outputs)
    : inputs_(num_inputs), outputs_(num_outputs) {
  require(num_inputs >= 1 && num_outputs >= 1,
          "PlaPersonality: need at least one input and output");
}

void PlaPersonality::add_term(const std::string& and_row,
                              const std::string& or_row) {
  require(static_cast<int>(and_row.size()) == inputs_,
          "PLA: AND row width mismatch");
  require(static_cast<int>(or_row.size()) == outputs_,
          "PLA: OR row width mismatch");
  for (char c : and_row)
    require(c == '0' || c == '1' || c == '-', "PLA: bad AND plane character");
  for (char c : or_row)
    require(c == '0' || c == '1', "PLA: bad OR plane character");
  terms_.push_back({and_row, or_row});
}

std::vector<bool> PlaPersonality::evaluate(const std::vector<bool>& in) const {
  ensure(static_cast<int>(in.size()) == inputs_, "PLA: input width mismatch");
  std::vector<bool> out(static_cast<std::size_t>(outputs_), false);
  for (const auto& term : terms_) {
    bool match = true;
    for (int i = 0; i < inputs_ && match; ++i) {
      const char c = term.and_row[static_cast<std::size_t>(i)];
      if (c == '-') continue;
      match = (c == '1') == in[static_cast<std::size_t>(i)];
    }
    if (!match) continue;
    for (int j = 0; j < outputs_; ++j)
      if (term.or_row[static_cast<std::size_t>(j)] == '1')
        out[static_cast<std::size_t>(j)] = true;
  }
  return out;
}

int PlaPersonality::matching_terms(const std::vector<bool>& in) const {
  ensure(static_cast<int>(in.size()) == inputs_, "PLA: input width mismatch");
  int count = 0;
  for (const auto& term : terms_) {
    bool match = true;
    for (int i = 0; i < inputs_ && match; ++i) {
      const char c = term.and_row[static_cast<std::size_t>(i)];
      if (c == '-') continue;
      match = (c == '1') == in[static_cast<std::size_t>(i)];
    }
    if (match) ++count;
  }
  return count;
}

void PlaPersonality::write_and_plane(std::ostream& os) const {
  os << "# BISRAMGEN TRPLA AND plane: " << inputs_ << " inputs, " << terms()
     << " product terms\n";
  for (const auto& t : terms_) os << t.and_row << '\n';
}

void PlaPersonality::write_or_plane(std::ostream& os) const {
  os << "# BISRAMGEN TRPLA OR plane: " << outputs_ << " outputs, " << terms()
     << " product terms\n";
  for (const auto& t : terms_) os << t.or_row << '\n';
}

namespace {
struct PlaneRow {
  std::string text;
  int line;  ///< 1-based file line, comments and blanks counted
};
}  // namespace

PlaPersonality PlaPersonality::read_planes(std::istream& and_plane,
                                           std::istream& or_plane,
                                           DiagEngine* diag) {
  DiagEngine local("<pla>");
  DiagEngine& eng = diag ? *diag : local;
  auto read_rows = [](std::istream& is) {
    std::vector<PlaneRow> rows;
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
      ++lineno;
      const std::string t = trim(line);
      if (t.empty() || t[0] == '#') continue;
      rows.push_back({t, lineno});
    }
    return rows;
  };
  // Validate each plane in isolation first so the diagnostic names the
  // exact plane, file line and column — the personality files are meant
  // to be edited by hand, and "width mismatch" alone is not actionable.
  auto check_plane = [&eng](const std::vector<PlaneRow>& rows,
                            const char* plane, const char* alphabet) {
    if (rows.empty()) {
      eng.error("pla-empty-plane",
                std::string("empty ") + plane + " plane (no personality "
                "rows; a truncated or comment-only file?)");
      return;
    }
    const std::size_t width = rows[0].text.size();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].text.size() != width) {
        eng.error("pla-ragged-row",
                  strfmt("%s plane term %zu is %zu columns wide but term 0 "
                         "has %zu (ragged plane file)",
                         plane, i, rows[i].text.size(), width),
                  rows[i].line);
        continue;  // column checks on a ragged row would double-report
      }
      for (std::size_t c = 0; c < rows[i].text.size(); ++c)
        if (std::strchr(alphabet, rows[i].text[c]) == nullptr)
          eng.error("pla-bad-character",
                    strfmt("%s plane term %zu column %zu holds '%c' "
                           "(expected one of \"%s\")",
                           plane, i, c, rows[i].text[c], alphabet),
                    rows[i].line, static_cast<int>(c) + 1);
    }
  };
  const auto and_rows = read_rows(and_plane);
  const auto or_rows = read_rows(or_plane);
  check_plane(and_rows, "AND", "01-");
  check_plane(or_rows, "OR", "01");
  if (eng.ok() && and_rows.size() != or_rows.size())
    eng.error("pla-term-count-mismatch",
              strfmt("AND plane has %zu terms but OR plane has %zu (planes "
                     "must pair term-for-term; is one file truncated?)",
                     and_rows.size(), or_rows.size()));
  if (!eng.ok()) {
    if (!diag) eng.throw_if_errors();
    // Non-throwing mode: a valid-but-empty placeholder; the caller must
    // gate on diag->ok() before using it.
    return PlaPersonality(1, 1);
  }
  PlaPersonality pla(static_cast<int>(and_rows[0].text.size()),
                     static_cast<int>(or_rows[0].text.size()));
  for (std::size_t i = 0; i < and_rows.size(); ++i)
    pla.add_term(and_rows[i].text, or_rows[i].text);
  return pla;
}

}  // namespace bisram::microcode
