#include "microcode/pla.hpp"

#include <cstring>
#include <istream>
#include <ostream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bisram::microcode {

PlaPersonality::PlaPersonality(int num_inputs, int num_outputs)
    : inputs_(num_inputs), outputs_(num_outputs) {
  require(num_inputs >= 1 && num_outputs >= 1,
          "PlaPersonality: need at least one input and output");
}

void PlaPersonality::add_term(const std::string& and_row,
                              const std::string& or_row) {
  require(static_cast<int>(and_row.size()) == inputs_,
          "PLA: AND row width mismatch");
  require(static_cast<int>(or_row.size()) == outputs_,
          "PLA: OR row width mismatch");
  for (char c : and_row)
    require(c == '0' || c == '1' || c == '-', "PLA: bad AND plane character");
  for (char c : or_row)
    require(c == '0' || c == '1', "PLA: bad OR plane character");
  terms_.push_back({and_row, or_row});
}

std::vector<bool> PlaPersonality::evaluate(const std::vector<bool>& in) const {
  ensure(static_cast<int>(in.size()) == inputs_, "PLA: input width mismatch");
  std::vector<bool> out(static_cast<std::size_t>(outputs_), false);
  for (const auto& term : terms_) {
    bool match = true;
    for (int i = 0; i < inputs_ && match; ++i) {
      const char c = term.and_row[static_cast<std::size_t>(i)];
      if (c == '-') continue;
      match = (c == '1') == in[static_cast<std::size_t>(i)];
    }
    if (!match) continue;
    for (int j = 0; j < outputs_; ++j)
      if (term.or_row[static_cast<std::size_t>(j)] == '1')
        out[static_cast<std::size_t>(j)] = true;
  }
  return out;
}

int PlaPersonality::matching_terms(const std::vector<bool>& in) const {
  ensure(static_cast<int>(in.size()) == inputs_, "PLA: input width mismatch");
  int count = 0;
  for (const auto& term : terms_) {
    bool match = true;
    for (int i = 0; i < inputs_ && match; ++i) {
      const char c = term.and_row[static_cast<std::size_t>(i)];
      if (c == '-') continue;
      match = (c == '1') == in[static_cast<std::size_t>(i)];
    }
    if (match) ++count;
  }
  return count;
}

void PlaPersonality::write_and_plane(std::ostream& os) const {
  os << "# BISRAMGEN TRPLA AND plane: " << inputs_ << " inputs, " << terms()
     << " product terms\n";
  for (const auto& t : terms_) os << t.and_row << '\n';
}

void PlaPersonality::write_or_plane(std::ostream& os) const {
  os << "# BISRAMGEN TRPLA OR plane: " << outputs_ << " outputs, " << terms()
     << " product terms\n";
  for (const auto& t : terms_) os << t.or_row << '\n';
}

PlaPersonality PlaPersonality::read_planes(std::istream& and_plane,
                                           std::istream& or_plane) {
  auto read_rows = [](std::istream& is) {
    std::vector<std::string> rows;
    std::string line;
    while (std::getline(is, line)) {
      const std::string t = trim(line);
      if (t.empty() || t[0] == '#') continue;
      rows.push_back(t);
    }
    return rows;
  };
  // Validate each plane in isolation first so the message names the
  // exact plane, term row and column — the personality files are meant
  // to be edited by hand, and "width mismatch" alone is not actionable.
  auto check_plane = [](const std::vector<std::string>& rows,
                        const char* plane, const char* alphabet) {
    require(!rows.empty(), std::string("PLA: empty ") + plane +
                               " plane (no personality rows; a truncated "
                               "or comment-only file?)");
    const std::size_t width = rows[0].size();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      require(rows[i].size() == width,
              strfmt("PLA: %s plane term %zu is %zu columns wide but term 0 "
                     "has %zu (ragged plane file)",
                     plane, i, rows[i].size(), width));
      for (std::size_t c = 0; c < rows[i].size(); ++c)
        require(std::strchr(alphabet, rows[i][c]) != nullptr,
                strfmt("PLA: %s plane term %zu column %zu holds '%c' "
                       "(expected one of \"%s\")",
                       plane, i, c, rows[i][c], alphabet));
    }
  };
  const auto and_rows = read_rows(and_plane);
  const auto or_rows = read_rows(or_plane);
  check_plane(and_rows, "AND", "01-");
  check_plane(or_rows, "OR", "01");
  require(and_rows.size() == or_rows.size(),
          strfmt("PLA: AND plane has %zu terms but OR plane has %zu (planes "
                 "must pair term-for-term; is one file truncated?)",
                 and_rows.size(), or_rows.size()));
  PlaPersonality pla(static_cast<int>(and_rows[0].size()),
                     static_cast<int>(or_rows[0].size()));
  for (std::size_t i = 0; i < and_rows.size(); ++i)
    pla.add_term(and_rows[i], or_rows[i]);
  return pla;
}

}  // namespace bisram::microcode
