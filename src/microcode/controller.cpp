#include "microcode/controller.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/math.hpp"
#include "util/strings.hpp"

namespace bisram::microcode {

namespace {

std::uint32_t bit(Cond c) { return 1u << static_cast<int>(c); }

/// Builder that keeps name -> index bookkeeping while states are created
/// before their successors exist (two-phase: declare, then wire).
class FsmBuilder {
 public:
  int declare(const std::string& name) {
    fsm_.states.push_back({name, {}});
    return static_cast<int>(fsm_.states.size()) - 1;
  }
  void wire(int from, std::uint32_t mask, std::uint32_t value, int to,
            std::vector<Ctrl> controls) {
    ensure(from >= 0 && from < static_cast<int>(fsm_.states.size()) &&
               to >= 0 && to < static_cast<int>(fsm_.states.size()),
           "FsmBuilder: bad state index");
    fsm_.states[static_cast<std::size_t>(from)].transitions.push_back(
        {mask, value, to, std::move(controls)});
  }
  ControllerFsm take() { return std::move(fsm_); }

 private:
  ControllerFsm fsm_;
};

}  // namespace

void ControllerFsm::check_deterministic() const {
  const std::uint32_t all = 1u << kCondCount;
  for (const auto& state : states) {
    for (std::uint32_t conds = 0; conds < all; ++conds) {
      int matches = 0;
      for (const auto& t : state.transitions)
        if ((conds & t.cond_mask) == t.cond_value) ++matches;
      ensure(matches == 1,
             "controller state '" + state.name + "' has " +
                 std::to_string(matches) + " transitions for condition " +
                 std::to_string(conds));
    }
  }
}

ControllerFsm compile_controller(const march::MarchTest& test,
                                 int max_passes) {
  require(max_passes >= 2, "compile_controller: needs >= 2 passes");
  const auto& elements = test.elements();
  require(!elements.back().is_delay,
          "compile_controller: march must not end with a delay element");

  FsmBuilder b;

  // --- declare all states -------------------------------------------------
  // Per pass: one entry per element op (or one timer state per delay
  // element), plus the end-of-pass CHECK state. Plus global DONE/FAIL.
  struct ElemStates {
    std::vector<int> ops;  // per op; single entry for a delay element
  };
  std::vector<std::vector<ElemStates>> per_pass(
      static_cast<std::size_t>(max_passes));
  std::vector<int> check_state(static_cast<std::size_t>(max_passes));

  for (int p = 0; p < max_passes; ++p) {
    auto& elems = per_pass[static_cast<std::size_t>(p)];
    for (std::size_t e = 0; e < elements.size(); ++e) {
      ElemStates es;
      if (elements[e].is_delay) {
        es.ops.push_back(b.declare(strfmt("P%d_E%zu_WAIT", p + 1, e)));
      } else {
        for (std::size_t o = 0; o < elements[e].ops.size(); ++o)
          es.ops.push_back(b.declare(strfmt(
              "P%d_E%zu_%s", p + 1, e,
              march::op_name(elements[e].ops[o]).c_str())));
      }
      elems.push_back(std::move(es));
    }
    check_state[static_cast<std::size_t>(p)] =
        b.declare(strfmt("P%d_CHECK", p + 1));
  }
  const int init = b.declare("P1_INIT");
  const int done_ok = b.declare("DONE_OK");
  const int done_fail = b.declare("DONE_FAIL");

  // --- wiring helpers -------------------------------------------------
  // Controls asserted when *entering* element e (address counter load or
  // retention-timer start).
  auto entry_controls = [&](std::size_t e) -> std::vector<Ctrl> {
    if (elements[e].is_delay) return {Ctrl::TimerStart};
    return {elements[e].order == march::Order::Down ? Ctrl::AddrResetDown
                                                    : Ctrl::AddrResetUp};
  };
  auto entry_state = [&](int p, std::size_t e) {
    return per_pass[static_cast<std::size_t>(p)][e].ops.front();
  };

  // Controls asserted while executing op o of element e in pass p.
  auto op_controls = [&](int p, std::size_t e, std::size_t o) {
    std::vector<Ctrl> c;
    const march::Op op = elements[e].ops[o];
    c.push_back(march::is_read(op) ? Ctrl::DoRead : Ctrl::DoWrite);
    if (march::op_value(op)) c.push_back(Ctrl::Invert);
    if (march::is_read(op)) {
      c.push_back(Ctrl::TlbRecord);
      if (p > 0) c.push_back(Ctrl::TlbForceNew);
    }
    if (p > 0) c.push_back(Ctrl::RepairOn);
    return c;
  };

  auto append = [](std::vector<Ctrl> base, std::initializer_list<Ctrl> more) {
    base.insert(base.end(), more);
    return base;
  };

  // --- wire each pass ---------------------------------------------------
  for (int p = 0; p < max_passes; ++p) {
    for (std::size_t e = 0; e < elements.size(); ++e) {
      const auto& es = per_pass[static_cast<std::size_t>(p)][e];
      const bool last_elem = e + 1 == elements.size();
      const int after_elem =
          last_elem ? check_state[static_cast<std::size_t>(p)]
                    : entry_state(p, e + 1);
      const std::vector<Ctrl> after_entry =
          last_elem ? std::vector<Ctrl>{} : entry_controls(e + 1);

      if (elements[e].is_delay) {
        const int wait = es.ops.front();
        b.wire(wait, bit(Cond::TimerDone), 0, wait, {});  // keep waiting
        // Timer done -> next element / check. Background stepping never
        // happens after a delay in practice (delays are not last), but
        // handle it uniformly: delays pass through to the next element.
        b.wire(wait, bit(Cond::TimerDone), bit(Cond::TimerDone), after_elem,
               after_entry);
        continue;
      }

      for (std::size_t o = 0; o < es.ops.size(); ++o) {
        const int st = es.ops[o];
        const auto ctrl = op_controls(p, e, o);
        if (o + 1 < es.ops.size()) {
          // More ops at this address: unconditional advance.
          b.wire(st, 0, 0, es.ops[o + 1], ctrl);
          continue;
        }
        // Last op of the element: step the address or move on.
        b.wire(st, bit(Cond::AddrLast), 0, es.ops.front(),
               append(ctrl, {Ctrl::AddrStep}));
        if (!last_elem) {
          std::vector<Ctrl> cc = ctrl;
          cc.insert(cc.end(), after_entry.begin(), after_entry.end());
          b.wire(st, bit(Cond::AddrLast), bit(Cond::AddrLast), after_elem,
                 std::move(cc));
        } else {
          // End of the march: next background, or end of pass.
          b.wire(st, bit(Cond::AddrLast) | bit(Cond::BgLast),
                 bit(Cond::AddrLast), entry_state(p, 0),
                 append(ctrl, {Ctrl::DataStep, entry_controls(0).front()}));
          b.wire(st, bit(Cond::AddrLast) | bit(Cond::BgLast),
                 bit(Cond::AddrLast) | bit(Cond::BgLast),
                 check_state[static_cast<std::size_t>(p)], ctrl);
        }
      }
    }

    // End-of-pass decision.
    const int chk = check_state[static_cast<std::size_t>(p)];
    const std::uint32_t m = bit(Cond::PassDirty) | bit(Cond::TlbOverflow);
    // Clean pass: done (repair verified, or never needed).
    b.wire(chk, m, 0, done_ok, {Ctrl::SigDone});
    b.wire(chk, m, bit(Cond::TlbOverflow), done_fail, {Ctrl::SigFail});
    b.wire(chk, m, bit(Cond::PassDirty) | bit(Cond::TlbOverflow), done_fail,
           {Ctrl::SigFail});
    if (p + 1 < max_passes) {
      // Dirty but repairable: start the next pass fresh.
      b.wire(chk, m, bit(Cond::PassDirty), entry_state(p + 1, 0),
             append(entry_controls(0),
                    {Ctrl::DataReset, Ctrl::ClearDirty}));
    } else {
      b.wire(chk, m, bit(Cond::PassDirty), done_fail, {Ctrl::SigFail});
    }
  }

  // Hardware reset lands in INIT, which loads the address counter for
  // the first element, clears DATAGEN and the dirty flag, then enters
  // the march.
  b.wire(init, 0, 0, entry_state(0, 0),
         append(entry_controls(0), {Ctrl::DataReset, Ctrl::ClearDirty}));

  b.wire(done_ok, 0, 0, done_ok, {Ctrl::SigDone});
  b.wire(done_fail, 0, 0, done_fail, {Ctrl::SigFail});

  ControllerFsm fsm = b.take();
  fsm.initial = init;
  fsm.done_ok = done_ok;
  fsm.done_fail = done_fail;
  fsm.check_deterministic();
  return fsm;
}

AssembledController assemble(const ControllerFsm& fsm, int min_state_bits) {
  const int n = static_cast<int>(fsm.states.size());
  require(n >= 1, "assemble: empty FSM");
  const int needed = log2_ceil(static_cast<std::uint64_t>(std::max(n, 2)));
  const int sbits = std::max(needed, min_state_bits);

  const int inputs = sbits + kCondCount;
  const int outputs = sbits + kCtrlCount;
  PlaPersonality pla(inputs, outputs);

  auto encode_state = [&](int s) {
    std::string bits(static_cast<std::size_t>(sbits), '0');
    for (int i = 0; i < sbits; ++i)
      if (s & (1 << i)) bits[static_cast<std::size_t>(i)] = '1';
    return bits;
  };

  for (int s = 0; s < n; ++s) {
    for (const auto& t : fsm.states[static_cast<std::size_t>(s)].transitions) {
      std::string and_row = encode_state(s);
      for (int c = 0; c < kCondCount; ++c) {
        const std::uint32_t cb = 1u << c;
        if (!(t.cond_mask & cb))
          and_row += '-';
        else
          and_row += (t.cond_value & cb) ? '1' : '0';
      }
      std::string or_row(static_cast<std::size_t>(outputs), '0');
      const std::string next = encode_state(t.next);
      for (int i = 0; i < sbits; ++i)
        or_row[static_cast<std::size_t>(i)] = next[static_cast<std::size_t>(i)];
      for (Ctrl ctrl : t.controls)
        or_row[static_cast<std::size_t>(sbits + static_cast<int>(ctrl))] = '1';
      pla.add_term(and_row, or_row);
    }
  }

  AssembledController out{std::move(pla), sbits, n, {}, fsm.initial,
                          fsm.done_ok, fsm.done_fail};
  for (const auto& s : fsm.states) out.state_names.push_back(s.name);
  return out;
}

AssembledController build_trpla(const march::MarchTest& test, int max_passes) {
  return assemble(compile_controller(test, max_passes));
}

}  // namespace bisram::microcode
