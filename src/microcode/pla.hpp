#pragma once
// Pseudo-NMOS NOR-NOR PLA personality: the storage format of the TRPLA
// control program. As in the paper, the control code is kept in two
// plane files (AND plane, OR plane) that BISRAMGEN reads at run time —
// "changing these files to implement a different test algorithm is a
// simple and straightforward matter."

#include <iosfwd>
#include <string>
#include <vector>

#include "util/diag.hpp"

namespace bisram::microcode {

/// One product term: `and_row` over the inputs ('1' input true,
/// '0' input false, '-' don't care) and `or_row` over the outputs
/// ('1' asserted by this term, '0' not).
struct ProductTerm {
  std::string and_row;
  std::string or_row;
};

class PlaPersonality {
 public:
  PlaPersonality(int num_inputs, int num_outputs);

  int inputs() const { return inputs_; }
  int outputs() const { return outputs_; }
  int terms() const { return static_cast<int>(terms_.size()); }
  const std::vector<ProductTerm>& product_terms() const { return terms_; }

  /// Adds a term; validates row lengths and characters.
  void add_term(const std::string& and_row, const std::string& or_row);

  /// Evaluates the NOR-NOR array: output j is the OR of or_row[j] over
  /// all matching terms.
  std::vector<bool> evaluate(const std::vector<bool>& in) const;

  /// Number of product terms whose AND cube matches `in` — the fan-in of
  /// the OR plane for that input point. A deterministic controller
  /// personality activates exactly one term per input: 0 means the input
  /// is unspecified (pseudo-NMOS pulls every output low), >= 2 that terms
  /// overlap and their OR rows merge. verify/microprogram.hpp sharpens
  /// this point check to *reachable* inputs only.
  int matching_terms(const std::vector<bool>& in) const;

  /// True when exactly one product term matches `in` — the per-input
  /// determinism contract generated controllers rely on (used by the
  /// static verifier to cross-check its transition table).
  bool is_deterministic_for(const std::vector<bool>& in) const {
    return matching_terms(in) == 1;
  }

  /// Writes/reads the two plane files (text; '#' comment lines allowed).
  /// read_planes reports the offending plane, the 1-based *file* line of
  /// the bad row (comments and blanks counted, so the number matches the
  /// editor) and the column on ragged rows, bad characters, and
  /// truncated or empty planes — the control store is user-editable, so
  /// the loader must say exactly what is wrong with a hand-modified
  /// program. With a DiagEngine the reader records every problem and
  /// never throws (callers gate on diag->ok(); the returned personality
  /// is a valid empty placeholder when errors were found); without one
  /// it throws bisram::DiagError (a SpecError) listing them all.
  void write_and_plane(std::ostream& os) const;
  void write_or_plane(std::ostream& os) const;
  static PlaPersonality read_planes(std::istream& and_plane,
                                    std::istream& or_plane,
                                    DiagEngine* diag = nullptr);

  /// Grid dimensions of the physical PLA: (rows = terms,
  /// columns = 2 * inputs + outputs) — used by the macro generator.
  int grid_rows() const { return terms(); }
  int grid_cols() const { return 2 * inputs_ + outputs_; }

 private:
  int inputs_;
  int outputs_;
  std::vector<ProductTerm> terms_;
};

}  // namespace bisram::microcode
