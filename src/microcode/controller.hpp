#pragma once
// The Test and Repair Controller (TRPLA) microassembler.
//
// Compiles a march test plus the two-pass (or 2k-pass) repair flow into a
// finite state machine, binary state-assigns it into the state register
// (STREG — six flip-flops in the paper, more if the program needs them),
// and emits the pseudo-NMOS NOR-NOR PLA personality. The datapath
// simulator (sim/controller.hpp) then executes the BIST/BISR flow by
// evaluating this PLA every cycle — the microprogram, not C++ control
// flow, drives the test.

#include <cstdint>
#include <string>
#include <vector>

#include "march/march.hpp"
#include "microcode/pla.hpp"

namespace bisram::microcode {

/// Condition inputs sampled from the datapath each cycle (PLA inputs
/// after the state bits, in this order).
enum class Cond : int {
  AddrLast = 0,  ///< ADDGEN sits on the final address of its sweep
  BgLast,        ///< DATAGEN sits on the final background
  TimerDone,     ///< data-retention wait elapsed
  PassDirty,     ///< a mismatch occurred somewhere in the current pass
  TlbOverflow,   ///< the TLB ran out of spare entries
  Count
};
inline constexpr int kCondCount = static_cast<int>(Cond::Count);

/// Control outputs asserted by product terms (PLA outputs after the
/// next-state bits, in this order).
enum class Ctrl : int {
  DoRead = 0,    ///< issue a RAM read and compare against DATAGEN
  DoWrite,       ///< issue a RAM write of the DATAGEN pattern
  Invert,        ///< the op uses the complemented background (r1/w1)
  AddrResetUp,   ///< load ADDGEN with 0, direction up
  AddrResetDown, ///< load ADDGEN with words-1, direction down
  AddrStep,      ///< advance ADDGEN after this cycle's op
  DataReset,     ///< reset DATAGEN to the all-0 background
  DataStep,      ///< shift DATAGEN to the next background
  ClearDirty,    ///< clear the pass-dirty flip-flop (start of a pass)
  TlbRecord,     ///< on mismatch, record the address in the TLB
  TlbForceNew,   ///< record supersedes an existing mapping (pass >= 2)
  RepairOn,      ///< access goes through the TLB diversion (pass >= 2)
  TimerStart,    ///< begin the data-retention wait
  SigDone,       ///< test complete, repair successful (or not needed)
  SigFail,       ///< "Repair Unsuccessful"
  Count
};
inline constexpr int kCtrlCount = static_cast<int>(Ctrl::Count);

/// One FSM transition: taken when (conds & mask) == value.
struct Transition {
  std::uint32_t cond_mask = 0;
  std::uint32_t cond_value = 0;
  int next = 0;
  std::vector<Ctrl> controls;
};

/// Symbolic controller before state assignment.
struct ControllerFsm {
  struct State {
    std::string name;
    std::vector<Transition> transitions;
  };
  std::vector<State> states;
  int initial = 0;
  int done_ok = 0;
  int done_fail = 0;

  /// Checks that every state's transitions are mutually exclusive and
  /// cover all 2^kCondCount condition combinations; throws otherwise.
  void check_deterministic() const;
};

/// Compiles the BIST+BISR control flow for `test` with `max_passes`
/// passes (>= 2). The FSM layout mirrors the paper's controller:
/// per-pass op states, delay states, background stepping, and the
/// end-of-pass decision state.
ControllerFsm compile_controller(const march::MarchTest& test, int max_passes);

/// Binary state assignment + PLA personality generation. The PLA inputs
/// are [state bits | condition bits]; outputs are [next-state bits |
/// control bits]. `min_state_bits` pads the state register (the paper
/// uses 6 flip-flops).
struct AssembledController {
  PlaPersonality pla;
  int state_bits = 0;
  int num_states = 0;
  std::vector<std::string> state_names;
  int initial_state = 0;
  int done_ok_state = 0;
  int done_fail_state = 0;
};
AssembledController assemble(const ControllerFsm& fsm, int min_state_bits = 6);

/// One-call convenience: compile + assemble.
AssembledController build_trpla(const march::MarchTest& test, int max_passes);

}  // namespace bisram::microcode
