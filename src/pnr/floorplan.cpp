#include "pnr/floorplan.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <tuple>

#include "geom/layout_db.hpp"
#include "util/error.hpp"

namespace bisram::pnr {

namespace {

/// Absolute rect of a block port under a placement.
Rect port_rect(const Block& block, const Transform& t,
               const std::string& port) {
  return t.apply(block.cell->port(port).rect);
}

/// Half-perimeter wirelength of one net under the current placements
/// (unplaced pins are skipped).
double net_hpwl(const Net& net, const std::vector<Block>& blocks,
                const std::map<int, Transform>& placed) {
  // Track min/max directly: pin centres are degenerate (zero-area)
  // rects, which Rect::united would treat as empty and drop.
  Coord min_x = 0, max_x = 0, min_y = 0, max_y = 0;
  bool any = false;
  for (const auto& [bi, port] : net.pins) {
    auto it = placed.find(bi);
    if (it == placed.end()) continue;
    const Rect r = port_rect(blocks[static_cast<std::size_t>(bi)], it->second,
                             port);
    const geom::Point c = r.center();
    if (!any) {
      min_x = max_x = c.x;
      min_y = max_y = c.y;
      any = true;
    } else {
      min_x = std::min(min_x, c.x);
      max_x = std::max(max_x, c.x);
      min_y = std::min(min_y, c.y);
      max_y = std::max(max_y, c.y);
    }
  }
  if (!any) return 0.0;
  return static_cast<double>((max_x - min_x) + (max_y - min_y));
}

double total_hpwl(const std::vector<Net>& nets,
                  const std::vector<Block>& blocks,
                  const std::map<int, Transform>& placed) {
  double sum = 0.0;
  for (const auto& net : nets) sum += net_hpwl(net, blocks, placed);
  return sum;
}

}  // namespace

FloorplanResult floorplan(const std::vector<Block>& blocks,
                          const std::vector<Net>& nets,
                          const FloorplanOptions& options) {
  require(!blocks.empty(), "floorplan: no blocks");

  // Decreasing-area order (the paper's first heuristic).
  std::vector<int> order(blocks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return blocks[static_cast<std::size_t>(a)].cell->bbox().area() >
           blocks[static_cast<std::size_t>(b)].cell->bbox().area();
  });

  std::map<int, Transform> placed;
  std::vector<Rect> outlines;
  Rect bbox{};

  auto overlaps_any = [&](const Rect& r) {
    for (const Rect& o : outlines)
      if (r.overlaps(o)) return true;
    return false;
  };

  for (std::size_t k = 0; k < order.size(); ++k) {
    const int bi = order[k];
    const Block& block = blocks[static_cast<std::size_t>(bi)];
    const Rect local = block.cell->bbox();

    if (k == 0) {
      const Transform t = Transform::translate(-local.lo.x, -local.lo.y);
      placed[bi] = t;
      outlines.push_back(t.apply(local));
      bbox = outlines.back();
      continue;
    }

    // Candidate origins: to the right of and above the current bbox,
    // bottom- and left-aligned, plus port-aligned variants for every net
    // joining this block to a placed one.
    const Coord s = options.spacing;
    std::vector<geom::Point> candidates = {
        {bbox.hi.x + s - local.lo.x, bbox.lo.y - local.lo.y},
        {bbox.lo.x - local.lo.x, bbox.hi.y + s - local.lo.y},
        {bbox.hi.x + s - local.lo.x, bbox.hi.y - local.hi.y},
        {bbox.hi.x - local.hi.x, bbox.hi.y + s - local.lo.y},
    };
    for (const auto& net : nets) {
      for (const auto& [pa, porta] : net.pins) {
        if (pa != bi) continue;
        for (const auto& [pb, portb] : net.pins) {
          auto it = placed.find(pb);
          if (it == placed.end()) continue;
          const Rect target = port_rect(blocks[static_cast<std::size_t>(pb)],
                                        it->second, portb);
          const Rect mine = block.cell->port(porta).rect;
          // Right abutment with y alignment, and top abutment with x
          // alignment.
          candidates.push_back({bbox.hi.x + s - local.lo.x,
                                target.center().y - mine.center().y});
          candidates.push_back({target.center().x - mine.center().x,
                                bbox.hi.y + s - local.lo.y});
        }
      }
    }

    double best_cost = std::numeric_limits<double>::infinity();
    Transform best_t;
    Rect best_outline{};
    for (const auto& origin : candidates) {
      const Transform t = Transform::translate(origin.x, origin.y);
      const Rect outline = t.apply(local);
      if (overlaps_any(outline)) continue;
      const Rect nb = bbox.united(outline);
      const double w = static_cast<double>(nb.width());
      const double h = static_cast<double>(nb.height());
      const double squareness = std::max(w, h) / std::min(w, h) - 1.0;
      const double area_term = nb.area() / bbox.area() - 1.0;
      placed[bi] = t;
      const double wl = total_hpwl(nets, blocks, placed);
      placed.erase(bi);
      const double cost = options.squareness_weight * (squareness + area_term) +
                          options.wirelength_weight * wl;
      if (cost < best_cost) {
        best_cost = cost;
        best_t = t;
        best_outline = outline;
      }
    }
    ensure(best_cost < std::numeric_limits<double>::infinity(),
           "floorplan: no legal candidate for block " + block.name);
    placed[bi] = best_t;
    outlines.push_back(best_outline);
    bbox = bbox.united(best_outline);
  }

  FloorplanResult result;
  result.placements.reserve(blocks.size());
  double area_sum = 0.0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    result.placements.push_back({static_cast<int>(i),
                                 placed.at(static_cast<int>(i))});
    area_sum += blocks[i].cell->bbox().area();
  }
  result.bbox = bbox;
  result.rectangularity = area_sum / bbox.area();
  result.wirelength_dbu = total_hpwl(nets, blocks, placed);
  return result;
}

namespace {

/// One abutting connected pin pair under a plan: blocks a and b sit
/// side by side (outline gap <= reach) and the net asks their ports to
/// line up along the shared edge.
struct AbutPair {
  int block_a = 0;
  int block_b = 0;
  bool slide_y = false;  ///< true: horizontal neighbors, align in y
  Coord offset = 0;      ///< port-centre offset along the edge (a - b)
};

/// Visits every abutting connected pin pair of `nets` under the given
/// outlines/placements, in net order then pin-pair order (deterministic).
template <typename Fn>
void for_each_abutting_pair(const std::vector<Block>& blocks,
                            const std::vector<Net>& nets,
                            const std::vector<Transform>& placements,
                            const std::vector<Rect>& outlines, Coord reach,
                            Fn&& fn) {
  for (const auto& net : nets) {
    for (std::size_t i = 0; i < net.pins.size(); ++i) {
      for (std::size_t j = i + 1; j < net.pins.size(); ++j) {
        const auto& [ba, porta] = net.pins[i];
        const auto& [bb, portb] = net.pins[j];
        if (ba == bb) continue;
        const Rect& oa = outlines[static_cast<std::size_t>(ba)];
        const Rect& ob = outlines[static_cast<std::size_t>(bb)];
        if (geom::rect_gap(oa, ob) > reach) continue;
        // Side-by-side when the outlines share a span on exactly one
        // axis; diagonal neighbors have no common edge to slide along.
        const bool share_y = oa.lo.y < ob.hi.y && ob.lo.y < oa.hi.y;
        const bool share_x = oa.lo.x < ob.hi.x && ob.lo.x < oa.hi.x;
        if (share_y == share_x) continue;
        const Rect ra = port_rect(blocks[static_cast<std::size_t>(ba)],
                                  placements[static_cast<std::size_t>(ba)],
                                  porta);
        const Rect rb = port_rect(blocks[static_cast<std::size_t>(bb)],
                                  placements[static_cast<std::size_t>(bb)],
                                  portb);
        AbutPair pair;
        pair.block_a = ba;
        pair.block_b = bb;
        pair.slide_y = share_y;  // horizontal neighbors slide vertically
        pair.offset = share_y ? ra.center().y - rb.center().y
                              : ra.center().x - rb.center().x;
        fn(pair);
      }
    }
  }
}

std::vector<Transform> placement_transforms(const FloorplanResult& plan,
                                            std::size_t nblocks) {
  std::vector<Transform> ts(nblocks);
  for (const auto& p : plan.placements)
    ts[static_cast<std::size_t>(p.block)] = p.transform;
  return ts;
}

std::vector<Rect> placement_outlines(const std::vector<Block>& blocks,
                                     const std::vector<Transform>& ts) {
  std::vector<Rect> outlines;
  outlines.reserve(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i)
    outlines.push_back(ts[i].apply(blocks[i].cell->bbox()));
  return outlines;
}

double misalignment_of(const std::vector<Block>& blocks,
                       const std::vector<Net>& nets,
                       const std::vector<Transform>& ts,
                       const std::vector<Rect>& outlines, Coord reach) {
  double sum = 0.0;
  for_each_abutting_pair(blocks, nets, ts, outlines, reach,
                         [&](const AbutPair& p) {
                           sum += static_cast<double>(
                               p.offset < 0 ? -p.offset : p.offset);
                         });
  return sum;
}

}  // namespace

double port_misalignment(const std::vector<Block>& blocks,
                         const std::vector<Net>& nets,
                         const FloorplanResult& plan, Coord abut_reach) {
  const auto ts = placement_transforms(plan, blocks.size());
  return misalignment_of(blocks, nets, ts, placement_outlines(blocks, ts),
                         abut_reach);
}

FloorplanResult stretch(const std::vector<Block>& blocks,
                        const std::vector<Net>& nets,
                        const FloorplanResult& plan, Coord abut_reach,
                        StretchStats* stats) {
  auto ts = placement_transforms(plan, blocks.size());
  auto outlines = placement_outlines(blocks, ts);

  StretchStats local;
  local.misalignment_before_dbu =
      misalignment_of(blocks, nets, ts, outlines, abut_reach);
  double current = local.misalignment_before_dbu;

  // Greedy passes: slide the pair's second block along the shared edge to
  // zero its offset, keeping a move only when no outlines overlap and the
  // total misalignment strictly drops (integer coordinates, so the strict
  // drop bounds the loop). Repeat until a pass applies nothing.
  bool changed = true;
  while (changed && current > 0.0) {
    changed = false;
    // Collect this pass's candidates first: applying a move invalidates
    // the outlines the visitor iterates over.
    std::vector<AbutPair> pairs;
    for_each_abutting_pair(blocks, nets, ts, outlines, abut_reach,
                           [&](const AbutPair& p) { pairs.push_back(p); });
    for (const AbutPair& p : pairs) {
      if (p.offset == 0) continue;
      const auto bi = static_cast<std::size_t>(p.block_b);
      const Coord dx = p.slide_y ? 0 : p.offset;
      const Coord dy = p.slide_y ? p.offset : 0;
      const Transform moved = Transform::translate(dx, dy).compose(ts[bi]);
      const Rect outline = moved.apply(blocks[bi].cell->bbox());
      bool collides = false;
      for (std::size_t o = 0; o < outlines.size(); ++o)
        if (o != bi && outline.overlaps(outlines[o])) collides = true;
      if (collides) continue;
      const Transform prev_t = ts[bi];
      const Rect prev_o = outlines[bi];
      ts[bi] = moved;
      outlines[bi] = outline;
      const double next =
          misalignment_of(blocks, nets, ts, outlines, abut_reach);
      if (next < current) {
        current = next;
        ++local.moves;
        changed = true;
      } else {
        ts[bi] = prev_t;
        outlines[bi] = prev_o;
      }
    }
  }

  FloorplanResult out;
  out.placements.reserve(blocks.size());
  Rect bbox{};
  double area_sum = 0.0;
  std::map<int, Transform> placed;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    out.placements.push_back({static_cast<int>(i), ts[i]});
    bbox = bbox.united(outlines[i]);
    area_sum += blocks[i].cell->bbox().area();
    placed[static_cast<int>(i)] = ts[i];
  }
  out.bbox = bbox;
  out.rectangularity = area_sum / bbox.area();
  out.wirelength_dbu = total_hpwl(nets, blocks, placed);

  local.misalignment_after_dbu = current;
  if (stats) *stats = local;
  return out;
}

namespace {

/// Draws a via stack from `layer` up to metal3 at the given point.
void via_stack_to_m3(geom::Cell& top, const tech::Tech& t, geom::Layer layer,
                     geom::Point at) {
  using geom::Layer;
  auto pad = [&](Layer l, Coord size) {
    top.add_shape(l, Rect::ltrb(at.x - size, at.y - size, at.x + size,
                                at.y + size));
  };
  const Coord cut1 = t.via1_size / 2;
  const Coord cut2 = t.via2_size / 2;
  const Coord pad1 = cut1 + t.via1_encl;
  const Coord pad2 = cut2 + t.via2_encl;
  if (layer == Layer::Poly) {
    const Coord cutc = t.contact_size / 2;
    pad(Layer::Poly, cutc + t.contact_encl_poly);
    pad(Layer::Contact, cutc);
    pad(Layer::Metal1, cutc + t.contact_encl_m1);
    layer = Layer::Metal1;
  }
  if (layer == Layer::Metal1) {
    pad(Layer::Metal1, pad1);
    pad(Layer::Via1, cut1);
    pad(Layer::Metal2, pad1);
    layer = Layer::Metal2;
  }
  if (layer == Layer::Metal2) {
    pad(Layer::Metal2, pad2);
    pad(Layer::Via2, cut2);
    // The metal3 landing must also satisfy metal3's (wide) minimum width.
    pad(Layer::Metal3,
        std::max(pad2, t.rule(Layer::Metal3).min_width / 2 + 1));
  }
}

/// Short straight wire on `layer` connecting a port point to the via
/// stack in the halo (minimum width of that layer).
void draw_bridge(geom::Cell& top, const tech::Tech& t, geom::Layer layer,
                 geom::Point a, geom::Point b) {
  const Coord w = t.rule(layer).min_width;
  top.add_shape(layer, Rect::ltrb(std::min(a.x, b.x) - w / 2,
                                  std::min(a.y, b.y) - w / 2,
                                  std::max(a.x, b.x) + w / 2,
                                  std::max(a.y, b.y) + w / 2));
}

}  // namespace

CellPtr build_top(geom::Library& lib, const tech::Tech& t,
                  const std::string& name, const std::vector<Block>& blocks,
                  const std::vector<Net>& nets, const FloorplanResult& plan,
                  RouteStats* stats) {
  auto top = lib.create(name);
  std::vector<Rect> outlines;
  for (const auto& p : plan.placements) {
    const auto& block = blocks[static_cast<std::size_t>(p.block)];
    top->add_instance(block.name, block.cell, p.transform);
    outlines.push_back(p.transform.apply(block.cell->bbox()));
  }

  // Snapshot the placed blocks before any route shape exists: the
  // over-the-cell wires are validated against this database (one
  // flatten) instead of re-flattening the finished top.
  std::unique_ptr<geom::LayoutDB> block_db;
  if (stats) {
    *stats = RouteStats{};
    block_db = std::make_unique<geom::LayoutDB>(*top);
  }
  std::vector<Rect> route_wires;

  const Coord w3 = t.rule(geom::Layer::Metal3).min_width;
  int net_ordinal = 0;
  for (const auto& net : nets) {
    if (net.pins.size() < 2) continue;
    // Stagger taps per net so two nets sharing a port (or adjacent ports)
    // do not drop their via stacks on top of each other.
    const Coord stagger = geom::dbu(8.0 * net_ordinal++);
    // Collect absolute pin rects and their owning block outlines.
    std::vector<std::tuple<Rect, geom::Layer, Rect>> pins;
    for (const auto& [bi, port] : net.pins) {
      const auto& block = blocks[static_cast<std::size_t>(bi)];
      const auto& pr = block.cell->port(port);
      pins.push_back(
          {plan.placements[static_cast<std::size_t>(bi)].transform.apply(
               pr.rect),
           pr.layer, outlines[static_cast<std::size_t>(bi)]});
    }
    // Pin tap: pick a point on the port (edge buses carry their first
    // wire 4 lambda from the corner), then push the via stack just
    // *outside* the block outline, into the floorplan halo, so the
    // stack's landing pads cannot collide with block-internal wiring. A
    // short port-layer bridge connects the port to the stack.
    const Coord four = geom::dbu(4);
    const Coord push = geom::dbu(6);
    auto tap = [&](const Rect& r, geom::Layer layer,
                   const Rect& outline) -> geom::Point {
      geom::Point on_port = r.center();
      if (r.width() > 4 * r.height())
        on_port = {std::min(r.lo.x + four + stagger, r.hi.x - four),
                   r.center().y};
      else if (r.height() > 4 * r.width())
        on_port = {r.center().x,
                   std::min(r.lo.y + four + stagger, r.hi.y - four)};
      // Outward direction: toward the nearest outline edge.
      const Coord d_left = on_port.x - outline.lo.x;
      const Coord d_right = outline.hi.x - on_port.x;
      const Coord d_bot = on_port.y - outline.lo.y;
      const Coord d_top = outline.hi.y - on_port.y;
      const Coord dmin = std::min({d_left, d_right, d_bot, d_top});
      geom::Point outside = on_port;
      if (dmin == d_left) outside.x = outline.lo.x - push;
      else if (dmin == d_right) outside.x = outline.hi.x + push;
      else if (dmin == d_bot) outside.y = outline.lo.y - push;
      else outside.y = outline.hi.y + push;
      // Bridge on the port's own layer from the port to the stack.
      draw_bridge(*top, t, layer, on_port, outside);
      return outside;
    };
    // Chain pins: route pin i to pin i+1 unless they abut (or face each
    // other across the floorplan halo, where a production tool would
    // stretch the blocks into contact — the paper's stretching
    // heuristic).
    const Coord abut_reach = geom::dbu(16);
    for (std::size_t i = 0; i + 1 < pins.size(); ++i) {
      const auto& [ra, la, oa] = pins[i];
      const auto& [rb, lbl, ob] = pins[i + 1];
      if (geom::rect_gap(ra, rb) <= abut_reach) continue;
      const geom::Point a = tap(ra, la, oa);
      const geom::Point b = tap(rb, lbl, ob);
      via_stack_to_m3(*top, t, la, a);
      via_stack_to_m3(*top, t, lbl, b);
      // L route on metal3 (over-the-cell).
      const geom::Point corner{b.x, a.y};
      auto add_wire = [&](geom::Point p0, geom::Point p1) {
        if (p0.x == p1.x && p0.y == p1.y) return;
        const Rect wire = Rect::ltrb(std::min(p0.x, p1.x) - w3 / 2,
                                     std::min(p0.y, p1.y) - w3 / 2,
                                     std::max(p0.x, p1.x) + w3 / 2,
                                     std::max(p0.y, p1.y) + w3 / 2);
        top->add_shape(geom::Layer::Metal3, wire);
        if (stats) {
          ++stats->m3_wires;
          stats->m3_length_dbu += static_cast<double>(
              std::max(std::max(p0.x, p1.x) - std::min(p0.x, p1.x),
                       std::max(p0.y, p1.y) - std::min(p0.y, p1.y)));
          route_wires.push_back(wire);
        }
      };
      add_wire(a, corner);
      add_wire(corner, b);
      if (stats) {
        ++stats->routed_spans;
        stats->via_stacks += 2;
      }
    }
  }

  if (stats) {
    // Indexed overlap check of every route wire against block-internal
    // metal3; a positive-area overlap is a genuine over-the-cell
    // conflict, reported with the offending instance's path.
    const auto& m3 = block_db->rects(geom::Layer::Metal3);
    for (const Rect& wire : route_wires) {
      block_db->for_each_in(geom::Layer::Metal3, wire, [&](std::uint32_t id) {
        if (!wire.overlaps(m3[id])) return;
        ++stats->m3_conflicts;
        stats->conflict_paths.push_back(
            block_db->shape_path(geom::Layer::Metal3, id));
      });
    }
  }
  return top;
}

ChannelRoute left_edge_route(const std::vector<ChannelPin>& pins) {
  // Interval per net.
  std::map<int, std::pair<Coord, Coord>> spans;
  for (const auto& pin : pins) {
    auto it = spans.find(pin.net);
    if (it == spans.end()) {
      spans[pin.net] = {pin.x, pin.x};
    } else {
      it->second.first = std::min(it->second.first, pin.x);
      it->second.second = std::max(it->second.second, pin.x);
    }
  }
  struct Interval {
    int net;
    Coord lo, hi;
  };
  std::vector<Interval> intervals;
  for (const auto& [net, span] : spans)
    intervals.push_back({net, span.first, span.second});
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });

  ChannelRoute route;
  std::vector<Coord> track_end;  // rightmost occupied x per track
  for (const auto& iv : intervals) {
    int track = -1;
    for (std::size_t tr = 0; tr < track_end.size(); ++tr) {
      if (track_end[tr] < iv.lo) {
        track = static_cast<int>(tr);
        break;
      }
    }
    if (track < 0) {
      track = static_cast<int>(track_end.size());
      track_end.push_back(std::numeric_limits<Coord>::min());
    }
    track_end[static_cast<std::size_t>(track)] = iv.hi;
    route.segments.push_back({iv.net, track, iv.lo, iv.hi});
  }
  route.tracks = static_cast<int>(track_end.size());
  return route;
}

}  // namespace bisram::pnr
