#pragma once
// Macrocell place-and-route, following the paper's heuristics:
//
//  * blocks are placed in decreasing order of area;
//  * candidate positions keep the growing floorplan "as rectangular as
//    possible" (the squareness term of the cost);
//  * port alignment: when a block's ports connect to an already-placed
//    block, candidates that bring those ports face-to-face are generated
//    and wirelength-scored — this "avoids the long computation involved
//    in trying out all 64 pairs of orientations";
//  * stretching: a post-pass slides blocks along their abutment edge to
//    zero out remaining port misalignment when no overlap results;
//  * connections between non-abutting ports are routed over-the-cell in
//    metal3 rather than through channels wherever possible.
//
// A classic left-edge channel router is provided for the control-signal
// channel between the TRPLA and the datapath generators.

#include <string>
#include <vector>

#include "geom/cell.hpp"
#include "tech/tech.hpp"

namespace bisram::pnr {

using geom::CellPtr;
using geom::Coord;
using geom::Rect;
using geom::Transform;

/// One macro to place.
struct Block {
  std::string name;
  CellPtr cell;
};

/// A logical connection: pins are (block index, port name).
struct Net {
  std::string name;
  std::vector<std::pair<int, std::string>> pins;
};

struct FloorplanOptions {
  double squareness_weight = 1.0;
  double wirelength_weight = 1e-6;  ///< per-DBU; bbox term dominates
  Coord spacing = 0;                ///< margin inserted between blocks
};

struct Placement {
  int block = 0;
  Transform transform;
};

struct FloorplanResult {
  std::vector<Placement> placements;  ///< one per block, block order
  Rect bbox;
  double rectangularity = 0;  ///< sum(block areas) / bbox area, <= 1
  double wirelength_dbu = 0;  ///< HPWL over all nets
};

/// Places the blocks. Throws on empty input.
FloorplanResult floorplan(const std::vector<Block>& blocks,
                          const std::vector<Net>& nets,
                          const FloorplanOptions& options = {});

/// Total remaining port misalignment of `plan` in DBU: for every
/// connected pin pair whose block outlines abut (outline gap <=
/// abut_reach) side-by-side, the offset of the two port centres along
/// the shared edge. Zero means every abutting connection lines up.
double port_misalignment(const std::vector<Block>& blocks,
                         const std::vector<Net>& nets,
                         const FloorplanResult& plan,
                         Coord abut_reach = geom::dbu(16));

struct StretchStats {
  int moves = 0;  ///< block translations applied
  double misalignment_before_dbu = 0;
  double misalignment_after_dbu = 0;
};

/// The paper's stretching post-pass: slides blocks along their abutment
/// edge to zero out remaining port misalignment, applying a slide only
/// when it introduces no block overlap and strictly reduces the total
/// misalignment (which also bounds the pass). Opt-in — callers that
/// want the seed placement untouched simply skip it. Returns the
/// adjusted plan with bbox/rectangularity/wirelength recomputed.
FloorplanResult stretch(const std::vector<Block>& blocks,
                        const std::vector<Net>& nets,
                        const FloorplanResult& plan,
                        Coord abut_reach = geom::dbu(16),
                        StretchStats* stats = nullptr);

/// Statistics from build_top's over-the-cell metal3 routing, validated
/// against a LayoutDB snapshot of the placed blocks (built once, before
/// any route shape is added).
struct RouteStats {
  int routed_spans = 0;  ///< pin-to-pin spans given an L-route
  int via_stacks = 0;
  int m3_wires = 0;
  double m3_length_dbu = 0;  ///< centreline length of the route wires
  /// Route wires overlapping block-internal metal3 with positive area —
  /// true over-the-cell conflicts; conflict_paths names the offending
  /// instance (LayoutDB provenance), one entry per conflicting pair.
  int m3_conflicts = 0;
  std::vector<std::string> conflict_paths;
};

/// Builds the placed top-level cell and routes every non-abutting net
/// with an L-shaped over-the-cell metal3 wire (via stacks at the pins).
/// When `stats` is non-null, the routes are validated against the
/// placed-blocks LayoutDB and the tallies filled in.
CellPtr build_top(geom::Library& lib, const tech::Tech& t,
                  const std::string& name, const std::vector<Block>& blocks,
                  const std::vector<Net>& nets, const FloorplanResult& plan,
                  RouteStats* stats = nullptr);

// --- channel routing ---------------------------------------------------------

/// A pin entering a routing channel at position x; `net` groups pins.
struct ChannelPin {
  Coord x = 0;
  int net = 0;
};

struct ChannelSegment {
  int net = 0;
  int track = 0;
  Coord x0 = 0, x1 = 0;
};

struct ChannelRoute {
  std::vector<ChannelSegment> segments;  ///< one horizontal trunk per net
  int tracks = 0;
};

/// Left-edge channel routing: each net gets one horizontal trunk spanning
/// its pins, packed greedily into tracks. The track count equals the
/// channel density for pin sets without vertical constraints.
ChannelRoute left_edge_route(const std::vector<ChannelPin>& pins);

}  // namespace bisram::pnr
