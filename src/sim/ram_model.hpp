#pragma once
// Word-level behavioural model of the BISR RAM that BISRAMGEN generates:
// a column-multiplexed array with spare rows, fronted by the TLB address
// diversion. Geometry follows the paper exactly: rows = words / bpc,
// columns = bpw * bpc; bit k of the word at address a lives at
// (row = a / bpc, column = k * bpc + a % bpc) — each I/O subarray owns
// bpc adjacent columns, and the column decoder picks one of them.

#include <cstdint>
#include <vector>

#include "sim/faults.hpp"
#include "sim/tlb.hpp"

namespace bisram::sim {

/// Word pattern (bit 0 first).
using Word = std::vector<bool>;

/// Logical geometry of the RAM array.
struct RamGeometry {
  std::uint32_t words = 0;  ///< number of addressable words (NW)
  int bpw = 0;              ///< bits per word
  int bpc = 0;              ///< bits per column (column-mux factor)
  int spare_rows = 0;       ///< redundant rows (4, 8 or 16 in the tool)

  int rows() const { return static_cast<int>(words) / bpc; }
  int cols() const { return bpw * bpc; }
  int total_rows() const { return rows() + spare_rows; }
  int spare_words() const { return spare_rows * bpc; }
  std::uint64_t bits() const {
    return static_cast<std::uint64_t>(words) * static_cast<std::uint64_t>(bpw);
  }

  /// Physical location of bit `bit` of word `addr`.
  CellAddr cell_of(std::uint32_t addr, int bit) const;
  /// Physical location of bit `bit` of spare word `spare`.
  CellAddr spare_cell_of(int spare, int bit) const;

  /// Throws SpecError unless bpc is a power of two, words divides evenly
  /// into rows, and all values are positive.
  void validate() const;
};

/// The fault-injectable BISR RAM.
class RamModel {
 public:
  explicit RamModel(const RamGeometry& geo);

  const RamGeometry& geometry() const { return geo_; }
  FaultyArray& array() { return array_; }
  const FaultyArray& array() const { return array_; }
  Tlb& tlb() { return tlb_; }
  const Tlb& tlb() const { return tlb_; }

  /// Enables/disables TLB address diversion (normal mode after repair, or
  /// pass >= 2 of the BIST).
  void set_repair_enabled(bool on) { repair_enabled_ = on; }
  bool repair_enabled() const { return repair_enabled_; }

  /// Word access through the address path (TLB diversion when enabled).
  Word read_word(std::uint32_t addr);
  void write_word(std::uint32_t addr, const Word& data);

  /// Allocation-free read into a caller-owned buffer (resized to bpw).
  /// The march inner loops run millions of reads; the by-value
  /// read_word() costs one heap allocation per call, which dominated the
  /// scalar profile.
  void read_word_into(std::uint32_t addr, Word& out);

  /// Direct spare-word access (used by tests and diagnostics).
  Word read_spare(int spare);
  void write_spare(int spare, const Word& data);
  void read_spare_into(int spare, Word& out);

  /// Data-retention wait (delegates to the array's clock).
  void elapse(double seconds) { array_.elapse(seconds); }

 private:
  RamGeometry geo_;
  FaultyArray array_;
  Tlb tlb_;
  bool repair_enabled_ = false;
};

/// Injects a fault described at word granularity: makes bit `bit` of word
/// `addr` stuck-at the complement of what every test expects — a
/// convenience for yield/repair experiments.
Fault stuck_bit_fault(const RamGeometry& geo, std::uint32_t addr, int bit,
                      bool stuck_at_one);

}  // namespace bisram::sim
