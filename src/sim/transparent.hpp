#pragma once
// Transparent BIST engine (the Kebichi-Nicolaidis scheme the paper
// compares against in Section III — test-only, no repair, but the RAM's
// normal-mode contents survive the self-test).
//
// Because expected read values depend on the unknown initial data, the
// engine runs two phases:
//   1. signature prediction — walk the test's read sequence over the
//      *current* contents, computing each predicted read value from the
//      initial data and the op's inversion flag, and compact the stream
//      into a MISR;
//   2. execution — run the transparent test for real, compacting the
//      actual read data into a second MISR.
// A signature mismatch flags a fault. Aliasing probability is the usual
// 2^-k for a k-bit MISR.

#include <cstdint>

#include "march/transparent.hpp"
#include "sim/ram_model.hpp"

namespace bisram::sim {

/// Multiple-input signature register over GF(2) (Fibonacci LFSR with the
/// read word XORed into the low bits each step).
class Misr {
 public:
  explicit Misr(int bits);

  void reset(std::uint64_t seed = 0x1);
  void absorb(const Word& word);
  std::uint64_t signature() const { return state_; }
  int bits() const { return bits_; }

 private:
  int bits_;
  std::uint64_t state_ = 1;
  std::uint64_t taps_ = 0;
  std::uint64_t mask_ = 0;
};

struct TransparentResult {
  bool fault_detected = false;
  bool contents_preserved = false;  ///< verified against a snapshot
  std::uint64_t predicted_signature = 0;
  std::uint64_t actual_signature = 0;
  std::uint64_t cycles = 0;
};

/// Runs the transparent test on `ram` (repair disabled — this scheme has
/// none). The RAM is left with its pre-test contents when the test's
/// write parity restores them and the array is fault-free.
TransparentResult run_transparent_bist(RamModel& ram,
                                       const march::TransparentTest& test);

/// Convenience: transparent IFA-9.
TransparentResult transparent_ifa9(RamModel& ram);

}  // namespace bisram::sim
