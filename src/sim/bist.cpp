#include "sim/bist.hpp"

#include "sim/generators.hpp"

namespace bisram::sim {

BistEngine::BistEngine(RamModel& ram, BistConfig config)
    : ram_(ram), config_(config) {
  require(config_.test != nullptr, "BistEngine: null march test");
  require(config_.max_passes >= 2, "BistEngine: needs at least two passes");
}

bool BistEngine::run_pass(int pass, BistResult& result) {
  const march::MarchTest& test = *config_.test;
  const RamGeometry& geo = ram_.geometry();

  // Pass 1 tests the raw array; later passes test through the repair map.
  ram_.set_repair_enabled(pass >= 2);

  bool clean = true;
  DataGen datagen(geo.bpw);
  datagen.reset();
  const int backgrounds = config_.johnson_backgrounds
                              ? datagen.background_count()
                              : 1;
  Word readback;  // reused across the whole pass: no per-read allocation
  for (int bg = 0; bg < backgrounds; ++bg) {
    // The generator state is constant within one background, so both
    // write patterns are too; materializing them per word was a heap
    // allocation on every write op.
    const Word pattern = datagen.word(false);
    const Word pattern_c = datagen.word(true);
    for (const auto& element : test.elements()) {
      if (element.is_delay) {
        // The embedded processor tristates the bus and waits; our clock
        // simply advances so retention faults can decay.
        ram_.elapse(config_.retention_wait_s);
        continue;
      }
      AddGen addgen(geo.words);
      addgen.reset(march::ascending(element.order));
      for (;;) {
        const std::uint32_t addr = addgen.address();
        for (march::Op op : element.ops) {
          ++result.cycles;
          if (!march::is_read(op)) {
            ram_.write_word(addr, march::op_value(op) ? pattern_c : pattern);
            continue;
          }
          ram_.read_word_into(addr, readback);
          if (!datagen.mismatch(readback, march::op_value(op))) continue;
          clean = false;
          // Record exactly as the hardware does, on every mismatching
          // read: in pass 1 the TLB's own address compare dedups repeat
          // detections; in pass >= 2 the mapped spare itself proved bad,
          // so a new entry supersedes it — and once remapped, subsequent
          // ops divert to the fresh spare and stop mismatching, so no
          // spare is burned twice.
          const auto spare = ram_.tlb().record(addr, /*force_new=*/pass >= 2);
          if (!spare) result.tlb_overflow = true;
        }
        if (addgen.at_last()) break;
        addgen.step();
      }
    }
    if (config_.johnson_backgrounds && !datagen.at_last()) datagen.step();
  }
  return clean;
}

BistResult BistEngine::run() {
  BistResult result;
  for (int pass = 1; pass <= config_.max_passes; ++pass) {
    const bool clean = run_pass(pass, result);
    ++result.passes_run;
    if (pass == 1) result.pass1_clean = clean;
    result.spares_used = ram_.tlb().used();

    if (clean) {
      // Either the array was fault-free (pass 1 clean, nothing mapped) or
      // a verification pass confirmed the repair.
      result.repair_successful = true;
      break;
    }
    if (result.tlb_overflow) break;  // cannot repair: too many faults
  }
  // Leave the RAM in normal mode with diversion active so that the
  // repaired module is usable immediately after BIST.
  ram_.set_repair_enabled(true);
  return result;
}

BistResult self_test_and_repair(RamModel& ram, BistConfig config) {
  return BistEngine(ram, config).run();
}

}  // namespace bisram::sim
