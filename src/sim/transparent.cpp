#include "sim/transparent.hpp"

#include "sim/generators.hpp"
#include "util/error.hpp"

namespace bisram::sim {

namespace {
// Primitive-ish tap masks for common widths; fall back to a dense mask.
std::uint64_t taps_for(int bits) {
  switch (bits) {
    case 8: return 0x8E;
    case 16: return 0xD008;
    case 32: return 0x80200003;
    default: {
      // x^k + x + 1 style fallback (not necessarily maximal; fine for
      // fault compaction).
      return (1ull << (bits - 1)) | 0x3;
    }
  }
}
}  // namespace

Misr::Misr(int bits) : bits_(bits) {
  require(bits >= 2 && bits <= 64, "Misr: width out of range");
  taps_ = taps_for(bits);
  mask_ = bits == 64 ? ~0ull : (1ull << bits) - 1;
  reset();
}

void Misr::reset(std::uint64_t seed) { state_ = (seed | 1) & mask_; }

void Misr::absorb(const Word& word) {
  // Shift with feedback, then XOR the data word in.
  const bool fb = state_ & (1ull << (bits_ - 1));
  state_ = (state_ << 1) & mask_;
  if (fb) state_ ^= taps_;
  std::uint64_t data = 0;
  for (std::size_t i = 0; i < word.size() && i < 64; ++i)
    if (word[i]) data |= 1ull << (i % static_cast<std::size_t>(bits_));
  state_ ^= data & mask_;
}

namespace {

Word invert_word(const Word& w) {
  Word out(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) out[i] = !w[i];
  return out;
}

}  // namespace

TransparentResult run_transparent_bist(RamModel& ram,
                                       const march::TransparentTest& test) {
  const RamGeometry& geo = ram.geometry();
  ram.set_repair_enabled(false);
  TransparentResult result;

  // Snapshot the initial contents: used as the prediction basis, and at
  // the end to verify transparency. (Hardware predicts on the fly with
  // one extra read pass; the snapshot is the simulator's equivalent.)
  std::vector<Word> initial;
  initial.reserve(geo.words);
  for (std::uint32_t a = 0; a < geo.words; ++a)
    initial.push_back(ram.read_word(a));

  const int misr_bits = std::min(32, std::max(8, geo.bpw));
  Misr predicted(misr_bits), actual(misr_bits);

  // Phase 1: predicted signature from the initial data.
  for (const auto& element : test.elements()) {
    if (element.is_delay) continue;
    AddGen addgen(geo.words);
    addgen.reset(element.order != march::Order::Down);
    for (;;) {
      const std::uint32_t addr = addgen.address();
      for (const auto& op : element.ops) {
        if (!op.read) continue;
        const Word expect = op.invert
                                ? invert_word(initial[addr])
                                : initial[addr];
        predicted.absorb(expect);
      }
      if (addgen.at_last()) break;
      addgen.step();
    }
  }

  // Phase 2: execute for real.
  for (const auto& element : test.elements()) {
    if (element.is_delay) {
      ram.elapse(0.1);
      continue;
    }
    AddGen addgen(geo.words);
    addgen.reset(element.order != march::Order::Down);
    for (;;) {
      const std::uint32_t addr = addgen.address();
      for (const auto& op : element.ops) {
        ++result.cycles;
        if (op.read) {
          actual.absorb(ram.read_word(addr));
        } else {
          const Word value = op.invert ? invert_word(initial[addr])
                                       : initial[addr];
          ram.write_word(addr, value);
        }
      }
      if (addgen.at_last()) break;
      addgen.step();
    }
  }

  result.predicted_signature = predicted.signature();
  result.actual_signature = actual.signature();
  result.fault_detected =
      result.predicted_signature != result.actual_signature;

  result.contents_preserved = true;
  for (std::uint32_t a = 0; a < geo.words; ++a) {
    if (ram.read_word(a) != initial[a]) {
      result.contents_preserved = false;
      break;
    }
  }
  return result;
}

TransparentResult transparent_ifa9(RamModel& ram) {
  const march::TransparentTest t = march::make_transparent(march::ifa9());
  return run_transparent_bist(ram, t);
}

}  // namespace bisram::sim
