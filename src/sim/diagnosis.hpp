#pragma once
// Fault diagnosis: beyond the pass/fail and TLB contents the BIST flow
// produces, a manufacturing engineer wants the fault map — which word
// addresses and bit positions failed, and whether the pattern points at
// a whole-column defect. The paper (Section VI) is explicit that column
// failures swamp the row redundancy and can be *detected* but not
// repaired; this module implements that detection: a diagnostic march
// that logs every mismatching bit and classifies the damage.

#include <string>
#include <vector>

#include "march/march.hpp"
#include "sim/ram_model.hpp"

namespace bisram::sim {

/// One failing bit observed during the diagnostic march.
struct BitSyndrome {
  std::uint32_t addr = 0;
  int bit = 0;
  int physical_row = 0;
  int physical_col = 0;
  int fail_count = 0;  ///< mismatching reads at this bit
};

struct DiagnosisReport {
  std::vector<BitSyndrome> failing_bits;     ///< sorted by (addr, bit)
  std::vector<std::uint32_t> faulty_words;   ///< distinct addresses
  bool repairable = false;                   ///< words <= spare words
  bool column_failure = false;               ///< one column dominates
  int suspect_column = -1;
  std::uint64_t reads = 0;

  /// Human-readable fault map.
  std::string render() const;
};

/// Runs `test` diagnostically (pass-1 semantics, repair disabled, all
/// Johnson backgrounds) and collects every mismatching bit. The RAM's
/// fault state is unchanged; its contents are overwritten by the march.
DiagnosisReport diagnose(RamModel& ram,
                         const march::MarchTest& test = march::ifa9());

}  // namespace bisram::sim
