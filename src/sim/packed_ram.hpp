#pragma once
// Bit-plane fault-simulation kernel.
//
// The scalar path (RamModel + BistEngine) executes a march one cell at a
// time: every op touches bpw cells through hash-map fault lookups and a
// heap-allocated Word. But BIST write patterns are address-independent —
// within one march op every cell of a physical column receives the same
// Johnson-background bit — so for the overwhelming majority of cells a
// march op is a single masked 64-bit splat or compare per column.
//
// PackedRam exploits that: the (regular + spare) array is stored as
// uint64_t bit-planes, one plane per physical column, 64 rows per plane
// word. Injected faults become *sparse overlays*: the word addresses
// whose cells host an overlay victim or aggressor form a small "special"
// set that is simulated cell-exactly (mirroring FaultyArray's write/read
// semantics, including coupling side effects and TLB diversion), while
// every other address is handled by the word-parallel kernels. Because
// no fault ever touches a non-special regular cell, and bulk writes
// store exactly the written pattern, the packed run is bit-identical to
// the scalar engine — BistResult, TLB contents and final array state —
// which tests/test_packed_equivalence.cpp enforces on random geometries
// and fault lists.
//
// Overlay-expressible kinds: stuck-at, transition, and all three
// coupling models. StuckOpen (reads depend on the column's last sensed
// value — an address-order-dependent global) and Retention (wall-clock
// decay) are not expressible as sparse overlays; run_bist() dispatches
// those fault lists to the scalar model. The packed engine also aborts
// (returns nullopt) if a word-parallel read ever observes a bulk cell
// deviating from its pattern — impossible in any flow that starts each
// background with a write, but the abort keeps the dispatcher safe for
// ill-formed marches: the caller simply reruns the trial on the scalar
// path from scratch.

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/bist.hpp"
#include "sim/campaign.hpp"
#include "sim/ram_model.hpp"

namespace bisram::sim {

/// True when `kind` can run on the bit-plane kernel as a sparse overlay.
bool packed_supported(FaultKind kind);

/// True when every fault in the list is overlay-expressible.
bool packed_supported(const std::vector<Fault>& faults);

/// Precomputed plane images of the Johnson backgrounds for one geometry:
/// for each (ones, complemented) pair, the full [col][w] bit-plane image
/// every bulk cell would hold after a clean write of that background.
/// The bulk march kernels reduce to one masked stream assign/compare
/// against these images (util/simd.hpp), and because the images depend
/// only on the geometry, one table is shared by every die of a batch.
/// Images are built lazily on first use; the table is not thread-safe
/// and is meant to live inside one trial (or one die batch).
class PackedPatternTable {
 public:
  explicit PackedPatternTable(const RamGeometry& geo);

  /// The plane image (cols * plane-words-per-column 64-bit words) of the
  /// background with Johnson fill `ones`, sense `complemented`.
  const std::uint64_t* pattern(int ones, bool complemented) const;

  std::size_t words_per_die() const { return words_; }

 private:
  RamGeometry geo_;
  int pw_ = 0;
  std::size_t words_ = 0;
  mutable std::vector<std::vector<std::uint64_t>> cache_;
};

/// The bit-plane RAM: planes indexed [column][row / 64], spares included,
/// plus the overlay fault set and the BISR TLB. Construction validates
/// the geometry and the fault list (throws SpecError when a fault kind is
/// not overlay-expressible or a cell is out of range).
class PackedRam {
 public:
  PackedRam(const RamGeometry& geo, const std::vector<Fault>& faults);

  /// Batch form: shares a caller-owned pattern table instead of building
  /// one per die. `patterns` must outlive the PackedRam and match `geo`.
  PackedRam(const RamGeometry& geo, const std::vector<Fault>& faults,
            const PackedPatternTable* patterns);

  const RamGeometry& geometry() const { return geo_; }
  Tlb& tlb() { return tlb_; }
  const Tlb& tlb() const { return tlb_; }

  void set_repair_enabled(bool on) { repair_enabled_ = on; }
  bool repair_enabled() const { return repair_enabled_; }

  /// Raw cell value bypassing fault semantics (the packed counterpart of
  /// FaultyArray::peek; row may address spare rows).
  bool peek(int row, int col) const { return get_bit(row, col); }

  /// Word addresses containing an overlay victim or aggressor cell, in
  /// ascending order — the addresses the march kernels must simulate
  /// cell-exactly.
  const std::vector<std::uint32_t>& special_addresses() const {
    return specials_;
  }

  // --- word-parallel march kernels (bulk cells) -----------------------------
  // `ones` is the Johnson fill count of the active background (pattern
  // bit of column c is (c / bpc < ones)); `complemented` is the op's data
  // sense (r1/w1). Both kernels cover every non-special regular cell; the
  // special addresses and all spare rows are masked out.

  /// Writes the pattern into all bulk cells: one masked splat per plane
  /// word.
  void kernel_write(int ones, bool complemented);

  /// True when every bulk cell matches the pattern (one masked XOR per
  /// plane word). False signals a broken bulk invariant — the caller must
  /// abandon the packed run (see header comment).
  bool kernel_read_clean(int ones, bool complemented) const;

  // --- cell-exact path (special addresses and spares) -----------------------

  /// Writes the pattern word to `addr` through the address path (TLB
  /// diversion when repair is enabled), mirroring RamModel::write_word +
  /// FaultyArray::write bit for bit.
  void write_word_exact(std::uint32_t addr, int ones, bool complemented);

  /// Reads the word at `addr` through the address path, applying read
  /// fault semantics (including CouplingState's stored-value mutation),
  /// and returns true when every bit matches the expected pattern.
  bool read_word_matches(std::uint32_t addr, int ones, bool complemented);

 private:
  std::size_t plane_index(int col, int w) const {
    return static_cast<std::size_t>(col) * static_cast<std::size_t>(pw_) +
           static_cast<std::size_t>(w);
  }
  bool get_bit(int row, int col) const;
  void set_bit(int row, int col, bool v);
  std::int64_t cell_index(int row, int col) const {
    return static_cast<std::int64_t>(row) * geo_.cols() + col;
  }
  bool pattern_bit(int col, int ones, bool complemented) const {
    return (col / geo_.bpc < ones) != complemented;
  }

  /// FaultyArray::write semantics restricted to the overlay kinds.
  void write_cell(int row, int col, bool v);
  /// FaultyArray::read semantics restricted to the overlay kinds.
  bool read_cell(int row, int col);

  RamGeometry geo_;
  int pw_ = 0;  ///< plane words per column: ceil(total_rows / 64)
  std::vector<std::uint64_t> planes_;      ///< [col * pw_ + w]
  std::vector<std::uint64_t> write_mask_;  ///< bulk cells per plane word
  std::unique_ptr<PackedPatternTable> owned_patterns_;
  const PackedPatternTable* patterns_ = nullptr;
  std::vector<Fault> faults_;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> by_victim_;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> by_aggressor_;
  std::vector<std::uint32_t> specials_;
  Tlb tlb_;
  bool repair_enabled_ = false;
};

/// The BIST/BISR flow of sim/bist.hpp executed on the bit-plane kernel.
/// Mirrors BistEngine pass for pass: pass 1 marches the raw array and
/// records mismatching addresses, pass >= 2 re-marches with diversion.
class PackedBistEngine {
 public:
  PackedBistEngine(PackedRam& ram, BistConfig config = {});

  /// Runs the complete flow. Returns nullopt when the bulk invariant
  /// broke mid-run (rerun the trial on the scalar engine); the result is
  /// otherwise bit-identical to BistEngine::run() on an equally-faulted
  /// RamModel.
  std::optional<BistResult> run();

 private:
  std::optional<bool> run_pass(int pass, BistResult& result);

  PackedRam& ram_;
  BistConfig config_;
};

/// Kernel dispatch: runs the BIST/BISR flow for a RAM of geometry `geo`
/// carrying `faults`, on the requested kernel.
///   * Auto — packed when the fault list is overlay-expressible, scalar
///     otherwise (per-trial dispatch; both produce identical results);
///   * Packed — forced; throws SpecError when a fault cannot be expressed
///     as an overlay;
///   * Scalar — forced reference path.
/// A packed run that aborts falls back to a fresh scalar run. When
/// `kernel_used` is non-null it receives the kernel that produced the
/// returned result (Packed or Scalar).
BistResult run_bist(const RamGeometry& geo, const std::vector<Fault>& faults,
                    const BistConfig& config = {},
                    SimKernel kernel = SimKernel::Auto,
                    SimKernel* kernel_used = nullptr);

/// SIMD-batched multi-die dispatch: runs the BIST/BISR flow for
/// `fault_lists.size()` dies of identical geometry in lockstep on the
/// bit-plane kernel. All batched dies share one pattern table and their
/// bulk march ops stream back to back through the runtime-dispatched
/// SIMD lanes (util/simd.hpp), which is where the dies/sec over the
/// one-die-at-a-time packed path comes from.
///
/// Result i is bit-identical to run_bist(geo, fault_lists[i], config,
/// kernel) for every batch size: dies whose fault list is not
/// overlay-expressible, or whose packed run aborts on a broken bulk
/// invariant, are rerun on the scalar reference engine exactly as the
/// single-die dispatcher would (SimKernel::Packed still throws on
/// inexpressible lists). `kernels_used`, when non-null, receives the
/// kernel that produced each die's result.
std::vector<BistResult> run_bist_batch(
    const RamGeometry& geo, const std::vector<std::vector<Fault>>& fault_lists,
    const BistConfig& config = {}, SimKernel kernel = SimKernel::Auto,
    std::vector<SimKernel>* kernels_used = nullptr);

}  // namespace bisram::sim
