#pragma once
// Behavioural BIST + BISR engine implementing the paper's flow:
//
//   pass 1: march the array (IFA-9 by default, over the Johnson data
//           backgrounds); every mismatching word address is recorded in
//           the TLB against the next spare in the strictly increasing
//           sequence.
//   pass 2: re-march with the TLB diversion active, so the mapped spare
//           words are tested in place of the faulty words. Any residual
//           mismatch means faulty spares or too many faults.
//
// The classic scheme stops here and raises "Repair Unsuccessful"; the
// paper notes the flow "can be easily converted to a 2k-pass algorithm"
// that iterates to repair faults within the spares themselves — set
// `max_passes > 2` for that behaviour.
//
// This engine interprets the march directly; the microprogrammed TRPLA
// path (src/microcode + sim/controller.hpp) drives the same datapath from
// a PLA personality, and the two are proven equivalent in tests.

#include <cstdint>

#include "march/march.hpp"
#include "sim/ram_model.hpp"

namespace bisram::sim {

struct BistConfig {
  const march::MarchTest* test = &march::ifa9();
  /// Apply all bpw+1 Johnson backgrounds; false = single all-0 background
  /// (the ablation the paper argues against Chen-Sunada's generator).
  bool johnson_backgrounds = true;
  /// 2 = the paper's standard flow; 2k allows k repair rounds.
  int max_passes = 2;
  /// Data-retention wait per Delay element (paper suggests ~100 ms).
  double retention_wait_s = 0.1;
};

struct BistResult {
  bool pass1_clean = false;        ///< no mismatch in the first pass
  bool repair_successful = false;  ///< a verification pass ran clean
  bool tlb_overflow = false;       ///< more faulty words than spares
  int spares_used = 0;             ///< TLB entries consumed
  int passes_run = 0;
  std::uint64_t cycles = 0;        ///< RAM read+write operations issued
  /// Watchdog trip: the controller never reached DONE_OK/DONE_FAIL
  /// within its cycle budget (a defective controller can loop forever —
  /// see sim/infra_faults.hpp). The machine degrades gracefully: the
  /// result reports the hang and BISR is left disabled. Always false for
  /// the behavioural engine and for any fault-free controller.
  bool hung = false;

  /// The paper's status signal.
  bool repair_unsuccessful() const { return !repair_successful; }
};

class BistEngine {
 public:
  BistEngine(RamModel& ram, BistConfig config = {});

  /// Runs the complete self-test / self-repair flow. On success the RAM
  /// is left with repair enabled (normal mode uses the TLB diversion).
  BistResult run();

 private:
  /// One full march over all backgrounds. Returns true when clean.
  bool run_pass(int pass, BistResult& result);

  RamModel& ram_;
  BistConfig config_;
};

/// Convenience: run BIST/BISR with defaults and return the result.
BistResult self_test_and_repair(RamModel& ram, BistConfig config = {});

}  // namespace bisram::sim
