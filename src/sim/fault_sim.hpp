#pragma once
// Single-fault injection campaigns measuring march-test coverage: the
// evidence behind the paper's claims that IFA-9 "detects a wide range of
// functional faults caused by layout defects" and that the Johnson
// backgrounds "improve the fault coverage for coupling faults between
// bits of the same word".

#include <vector>

#include "march/march.hpp"
#include "sim/bist.hpp"
#include "sim/campaign.hpp"
#include "sim/ram_model.hpp"
#include "util/rng.hpp"

namespace bisram::sim {

/// Where the two cells of a coupling fault live relative to each other.
enum class CouplingScope {
  IntraWord,       ///< aggressor and victim are bits of the same word
  PhysicalNeighbor ///< adjacent columns in the same row (different words
                   ///< under column multiplexing)
};

/// Draws a random fault of the given kind within the regular array.
Fault random_fault(FaultKind kind, const RamGeometry& geo, Rng& rng,
                   CouplingScope scope = CouplingScope::PhysicalNeighbor);

/// True when running `test` (pass 1 semantics) on a RAM containing only
/// `fault` flags at least one mismatch. Runs on the requested simulation
/// kernel (sim/packed_ram.hpp dispatch): Auto picks the bit-plane kernel
/// whenever the fault is overlay-expressible and falls back to the
/// scalar model otherwise; results are kernel-independent. When
/// `kernel_used` is non-null it receives the kernel that actually ran.
bool detects(const march::MarchTest& test, const RamGeometry& geo,
             const Fault& fault, bool johnson_backgrounds,
             SimKernel kernel = SimKernel::Auto,
             SimKernel* kernel_used = nullptr);

/// Coverage of one fault kind over `trials` random instances.
struct Coverage {
  FaultKind kind = FaultKind::StuckAt0;
  CouplingScope scope = CouplingScope::PhysicalNeighbor;
  int detected = 0;
  int total = 0;
  double fraction() const {
    return total == 0 ? 0.0 : static_cast<double>(detected) / total;
  }
};

/// Runs a campaign for each kind in `kinds` under the unified campaign
/// API (sim/campaign.hpp): `spec` fixes trials-per-kind, seed, worker
/// threads and the simulation kernel. Trials execute on the deterministic
/// parallel engine — trial i of kind k draws from sub-stream
/// k * spec.trials + i, so the report is bit-identical for any thread
/// count (and for any kernel choice; the equivalence tests enforce it).
/// The provenance's trial counters sum over all kinds.
CampaignResult<std::vector<Coverage>> fault_coverage(
    const march::MarchTest& test, const RamGeometry& geo,
    const std::vector<FaultKind>& kinds, bool johnson_backgrounds,
    const CampaignSpec& spec,
    CouplingScope scope = CouplingScope::PhysicalNeighbor);

}  // namespace bisram::sim
