#pragma once
// Cell-level fault models and the fault-injectable bit array.
//
// IFA-9 (the test BISRAMGEN microprograms) targets the functional faults
// that inductive fault analysis derives from layout defects: stuck-at,
// transition, coupling (state/idempotent/inversion), stuck-open, and
// data-retention faults. This module implements those semantics at the
// bit level so the BIST engine can be evaluated for coverage.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace bisram::sim {

/// Physical bit position inside the (regular + spare) cell array.
struct CellAddr {
  int row = 0;
  int col = 0;
  friend bool operator==(const CellAddr&, const CellAddr&) = default;
};

enum class FaultKind : std::uint8_t {
  StuckAt0,       ///< cell always 0
  StuckAt1,       ///< cell always 1
  TransitionUp,   ///< cell cannot make a 0 -> 1 transition
  TransitionDown, ///< cell cannot make a 1 -> 0 transition
  CouplingIdem,   ///< aggressor transition (dir_rising) forces victim to value
  CouplingInv,    ///< aggressor transition (dir_rising) inverts victim
  CouplingState,  ///< aggressor entering state `value` forces victim to value2
  StuckOpen,      ///< cell disconnected; reads return the column's last sensed value
  Retention,      ///< cell decays to `value` after the retention time elapses
};

/// Human-readable fault name ("SAF0", "CFid", ...).
const char* fault_name(FaultKind kind);

/// One injected fault. `victim` is the affected cell; `aggressor` is used
/// by the coupling kinds only.
struct Fault {
  FaultKind kind = FaultKind::StuckAt0;
  CellAddr victim;
  CellAddr aggressor;
  bool dir_rising = true;  ///< aggressor transition direction (CFid/CFin)
  bool value = false;      ///< forced/decay value (CFid/CFst/DRF); CFst trigger state
  bool value2 = false;     ///< CFst forced victim value
};

/// A rows x cols array of bits with injectable faults. Reads and writes go
/// through the fault semantics; peek/poke bypass them (for tests).
class FaultyArray {
 public:
  FaultyArray(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Adds a fault; throws when its cells are out of range.
  void inject(const Fault& fault);
  void clear_faults();
  std::size_t fault_count() const { return faults_.size(); }

  /// Functional write with fault semantics (transition faults may mask the
  /// write; the write may trigger coupling faults on other cells).
  void write(int row, int col, bool v);

  /// Functional read with fault semantics (stuck values, stuck-open
  /// returning stale column data, retention decay).
  bool read(int row, int col);

  /// Advances simulated wall-clock time (data-retention decay).
  void elapse(double seconds);

  /// The retention threshold after which an unfreshed Retention-faulty
  /// cell decays (default 80 ms; the paper waits ~100 ms per delay).
  void set_retention_threshold(double seconds);

  // Raw access bypassing all fault semantics.
  bool peek(int row, int col) const;
  void poke(int row, int col, bool v);

 private:
  std::size_t index(int row, int col) const;
  void check(const CellAddr& a) const;
  void apply_aggressor_effects(const CellAddr& aggr, bool old_v, bool new_v);

  int rows_, cols_;
  std::vector<std::uint8_t> bits_;
  std::vector<Fault> faults_;
  // victim-index and aggressor-index keyed by flat cell index.
  std::unordered_map<std::size_t, std::vector<std::size_t>> by_victim_;
  std::unordered_map<std::size_t, std::vector<std::size_t>> by_aggressor_;
  std::vector<std::uint8_t> column_last_sense_;
  double now_s_ = 0.0;
  double retention_threshold_s_ = 0.08;
  // Last refresh time per Retention fault (parallel to faults_).
  std::vector<double> refresh_time_;
};

}  // namespace bisram::sim
