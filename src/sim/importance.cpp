#include "sim/importance.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace bisram::sim {

StrataPlan plan_strata(double mean, double alpha, int budget,
                       const SamplingSpec& sampling) {
  require(budget >= 1, "plan_strata: needs a positive trial budget");
  require(mean >= 0.0, "plan_strata: negative defect mean");
  require(alpha > 0.0, "plan_strata: non-positive alpha");
  require(sampling.tail_mass > 0.0 && sampling.tail_mass < 1.0,
          "plan_strata: tail_mass must be in (0, 1)");
  require(sampling.min_stratum_trials >= 1,
          "plan_strata: min_stratum_trials must be >= 1");

  StrataPlan plan;
  plan.zero_probability = negbin_pmf(0, mean, alpha);
  if (mean <= 0.0) return plan;  // pure zero stratum, nothing to simulate

  // Retain strata until the residual tail is below tail_mass. The hard
  // cap mirrors bisr_yield()'s truncation bound: mean + 12 sd + 64 is
  // astronomically past the point where the pmf underflows for any
  // tail_mass a caller can express in a double.
  const double sd = std::sqrt(mean * (1.0 + mean / alpha));
  const std::int64_t kmax =
      static_cast<std::int64_t>(mean + 12.0 * sd) + 64;
  double tail = 1.0 - plan.zero_probability;
  for (std::int64_t k = 1; k <= kmax && tail > sampling.tail_mass; ++k) {
    const double pk = negbin_pmf(k, mean, alpha);
    tail -= pk;
    if (pk <= 0.0) continue;
    plan.strata.push_back(Stratum{k, pk, 0});
  }
  plan.tail_probability = tail < 0.0 ? 0.0 : tail;

  // Allocation proportional to the *unconditional* probability — stratum
  // k gets the trials plain MC would spend there in expectation, so the
  // whole plan simulates ~ budget * (1 - P0) dies: the entire zero
  // stratum's share of the budget is simply not spent. By the law of
  // total variance the stratified SE at this allocation is never worse
  // than plain MC's at the full budget (the between-strata variance term
  // drops out), so the saving is a free >= 10x at production densities
  // where P0 > 0.9. Proportional (as opposed to Neyman) allocation needs
  // no variance forecast and is unbiased for any split; the floor keeps
  // a variance estimate alive in the far strata that carry almost no
  // probability.
  for (Stratum& s : plan.strata) {
    const int proportional = static_cast<int>(
        std::llround(static_cast<double>(budget) * s.probability));
    s.trials = proportional > sampling.min_stratum_trials
                   ? proportional
                   : sampling.min_stratum_trials;
  }
  return plan;
}

std::uint64_t stratum_stream_offset(std::size_t s) {
  return (static_cast<std::uint64_t>(s) + 1) << 32;
}

WeightedEstimate combine_strata_bernoulli(
    const StrataPlan& plan, const std::vector<StratumCount>& counts,
    double zero_value, double tail_value) {
  require(counts.size() == plan.strata.size(),
          "combine_strata_bernoulli: counts/strata mismatch");
  WeightedEstimate out;
  out.value = plan.zero_probability * zero_value +
              plan.tail_probability * tail_value;
  double var = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double pk = plan.strata[i].probability;
    const std::int64_t n = counts[i].trials;
    require(n >= 0, "combine_strata_bernoulli: negative stratum count");
    if (n == 0) {
      // Unsimulated stratum (a cancelled campaign stopped before reaching
      // it): count it pessimistically, like the truncated tail, so the
      // partial estimate stays a conservative lower bound on the optimistic
      // outcome rather than silently pretending the stratum is empty.
      out.value += pk * tail_value;
      continue;
    }
    require(counts[i].successes >= 0 && counts[i].successes <= n,
            "combine_strata_bernoulli: success count out of range");
    const double p_hat =
        static_cast<double>(counts[i].successes) / static_cast<double>(n);
    out.value += pk * p_hat;
    if (n >= 2) {
      // Unbiased Bernoulli sample variance n/(n-1) * p(1-p).
      const double s2 = static_cast<double>(n) / static_cast<double>(n - 1) *
                        p_hat * (1.0 - p_hat);
      var += pk * pk * s2 / static_cast<double>(n);
    }
  }
  out.std_error = std::sqrt(var);
  return out;
}

WeightedEstimate combine_strata(const StrataPlan& plan,
                                const std::vector<StratumMoments>& moments,
                                double zero_value, double tail_value) {
  require(moments.size() == plan.strata.size(),
          "combine_strata: moments/strata mismatch");
  WeightedEstimate out;
  out.value = plan.zero_probability * zero_value +
              plan.tail_probability * tail_value;
  double var = 0.0;
  for (std::size_t i = 0; i < moments.size(); ++i) {
    const double pk = plan.strata[i].probability;
    require(moments[i].trials >= 0, "combine_strata: negative stratum count");
    if (moments[i].trials == 0) {
      out.value += pk * tail_value;  // unsimulated: pessimistic, like tail
      continue;
    }
    out.value += pk * moments[i].mean;
    var += pk * pk * moments[i].std_error * moments[i].std_error;
  }
  out.std_error = std::sqrt(var);
  return out;
}

}  // namespace bisram::sim
