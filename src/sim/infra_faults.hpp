#pragma once
// Fault injection for the BIST/BISR machinery *itself*.
//
// The paper's yield argument (Sec. V, Table 4) treats the repair
// circuitry — TLB, ADDGEN, DATAGEN, TRPLA/STREG — as defect-free, yet
// those blocks occupy real silicon and the same layout defects IFA
// derives for the cell array can land in them. This module models that
// blind spot: stuck-at defects in the TLB CAM slots, the address and
// data generators and the state register, plus missing/extra crosspoints
// in the PLA control planes. An outcome classifier then answers the
// robustness question the array-only fault models cannot: does a broken
// repair engine fail safe (DONE_FAIL — the die is discarded), or does it
// silently *escape* (DONE_OK on a RAM that a marched readback still
// shows to be bad — the dangerous case), or does it hang (watchdog)?
//
// The campaign runs on the deterministic parallel engine
// (util/parallel.hpp): results are bit-identical for any BISRAM_THREADS
// value, enforced by tests/test_parallel_campaigns.cpp.

#include <array>
#include <cstdint>
#include <vector>

#include "microcode/controller.hpp"
#include "sim/bist.hpp"
#include "sim/campaign.hpp"
#include "sim/ram_model.hpp"
#include "util/rng.hpp"

namespace bisram::sim {

enum class InfraFaultKind : std::uint8_t {
  TlbEntryBitStuck,     ///< CAM address bit of a TLB slot stuck at value
  TlbValidStuck,        ///< valid flip-flop of a TLB slot stuck at value
  TlbMatchStuck,        ///< match line of a TLB slot stuck at value
  AddgenBitStuck,       ///< ADDGEN counter flip-flop stuck at value
  DatagenBitStuck,      ///< DATAGEN (Johnson) register bit stuck at value
  StregBitStuck,        ///< STREG state flip-flop stuck at value
  PlaCrosspointMissing, ///< AND/OR plane transistor absent
  PlaCrosspointExtra,   ///< spurious AND/OR plane transistor
};
inline constexpr int kInfraFaultKindCount = 8;

/// Human-readable name ("TLB-entry-SA", "PLA-xpt-missing", ...).
const char* infra_fault_name(InfraFaultKind kind);

/// One defect in the repair machinery. Field use by kind:
///   Tlb*:             index = slot, bit = address bit (EntryBit only)
///   AddgenBitStuck:   bit = counter bit
///   DatagenBitStuck:  bit = register bit
///   StregBitStuck:    bit = flip-flop index
///   PlaCrosspoint*:   index = product term, bit = plane column
///                     (AND plane: input index; OR plane: output index),
///                     and_plane selects the plane; for an extra AND
///                     crosspoint `value` is the literal polarity.
/// `value` is the stuck-at value for the stuck kinds.
struct InfraFault {
  InfraFaultKind kind = InfraFaultKind::TlbEntryBitStuck;
  int index = 0;
  int bit = 0;
  bool value = false;
  bool and_plane = true;
};

/// Returns a copy of `pla` with the crosspoint defect applied:
///   * missing AND crosspoint — the term loses that literal ('-');
///   * missing OR crosspoint — the term no longer asserts that output;
///   * extra AND crosspoint — a '-' gains a literal; on a cell already
///     holding the opposite literal both transistors pull the term line
///     down for every input, so the term can never fire (it is dropped);
///   * extra OR crosspoint — the term additionally asserts that output.
microcode::PlaPersonality apply_pla_fault(const microcode::PlaPersonality& pla,
                                          const InfraFault& fault);

/// Draws a random infrastructure fault, uniform over the fault classes
/// and then over each class's sites, sized for `geo` and `ctrl`.
InfraFault random_infra_fault(const RamGeometry& geo,
                              const microcode::AssembledController& ctrl,
                              Rng& rng);

/// Every single-crosspoint defect of `pla`, in a fixed deterministic
/// order (term-major, AND columns before OR columns): a populated cell
/// yields its missing-crosspoint fault; an empty AND cell yields both
/// extra-literal polarities; a populated AND cell additionally yields the
/// opposite-polarity extra (both transistors present — the term can never
/// fire); an empty OR cell yields one extra fault. This is the exhaustive
/// site list the static verifier (verify/fault_analysis.hpp) classifies
/// and the dynamic campaign samples from.
std::vector<InfraFault> enumerate_pla_crosspoint_faults(
    const microcode::PlaPersonality& pla);

// --- outcome classification -------------------------------------------------

enum class InfraOutcome : std::uint8_t {
  Benign,    ///< DONE_OK and the normal-mode readback is clean
  SafeFail,  ///< DONE_FAIL — possibly a false alarm, but the die is
             ///< discarded, so the defect cannot reach the field
  Escape,    ///< DONE_OK but the readback mismatches — the dangerous case
  Hung,      ///< the watchdog tripped; BISR left disabled
};
inline constexpr int kInfraOutcomeCount = 4;

const char* infra_outcome_name(InfraOutcome outcome);

/// Golden readback: marches solid and address-dependent checkerboard
/// patterns through normal-mode word accesses (TLB diversion active,
/// exactly as a deployed system would) and reports whether every word
/// stores and returns its data. Independent of the — possibly broken —
/// BIST machinery, so it is the arbiter for escape classification.
bool normal_mode_readback_clean(RamModel& ram);

/// Per-trial knobs of the infra-fault campaign.
struct InfraTrialConfig {
  BistConfig bist;
  /// Random stuck-at cell faults additionally injected into the array
  /// each trial (0 = clean array; infra faults only).
  int array_faults = 0;
  /// Watchdog budget in controller cycles; 0 = auto-sized from a
  /// fault-free run of the same controller.
  std::uint64_t watchdog_cycles = 0;
};

/// Runs BIST+BISR on a RAM carrying `array_faults` plus the single
/// infrastructure defect `fault`, and classifies the outcome.
struct InfraTrial {
  InfraOutcome outcome = InfraOutcome::Benign;
  BistResult bist;
};
InfraTrial run_infra_trial(const RamGeometry& geo,
                           const microcode::AssembledController& ctrl,
                           const InfraFault& fault,
                           const std::vector<Fault>& array_faults,
                           const InfraTrialConfig& config);

/// Watchdog budget a fault-free controller run implies for `geo`/`config`
/// (generous multiple of the clean cycle count — legitimate repair runs
/// never approach it, runaway controllers trip it quickly).
std::uint64_t auto_watchdog_cycles(const RamGeometry& geo,
                                   const microcode::AssembledController& ctrl,
                                   const InfraTrialConfig& config);

// --- the campaign -----------------------------------------------------------

/// Outcome histogram of an infra-fault campaign, bucketed by fault kind.
struct InfraCampaignReport {
  std::array<std::array<std::int64_t, kInfraOutcomeCount>,
             kInfraFaultKindCount>
      counts{};
  std::int64_t trials = 0;

  std::int64_t count(InfraFaultKind kind, InfraOutcome outcome) const {
    return counts[static_cast<std::size_t>(kind)]
                 [static_cast<std::size_t>(outcome)];
  }
  std::int64_t total(InfraOutcome outcome) const;
  double rate(InfraOutcome outcome) const;
};

/// Monte-Carlo campaign under the unified campaign API
/// (sim/campaign.hpp): each trial injects one random infrastructure
/// fault (plus `config.array_faults` random array faults), runs the full
/// microprogrammed BIST/BISR flow under the watchdog and classifies the
/// outcome. Deterministic-parallel: bit-identical for any thread count.
/// Infrastructure faults live in the TLB/controller machinery, which the
/// bit-plane kernel cannot express as cell overlays, so every trial runs
/// the scalar PlaBistMachine; forcing SimKernel::Packed is rejected with
/// SpecError.
CampaignResult<InfraCampaignReport> infra_fault_campaign(
    const RamGeometry& geo, const InfraTrialConfig& config,
    const CampaignSpec& spec);

}  // namespace bisram::sim
