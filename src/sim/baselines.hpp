#pragma once
// The BISR schemes the paper compares against (Section III):
//
//  * Sawada et al. 1989 — a single fail-address register; repairs one
//    faulty address location.
//  * Chen & Sunada 1993 — hierarchical subblocks, each with a fault
//    signature block holding TWO fault-capture registers (so two
//    repairable addresses per subblock), sequential address comparison,
//    and a top-level "fault assembler" that swaps dead subblocks for
//    spare subblocks.
//  * Kebichi & Nicolaidis 1992 — transparent BIST only, no repair.
//
// These are modelled at repair-analysis granularity: given a set of
// faulty word addresses, can the scheme repair the pattern, and what
// address-path delay does it add? The BISRAMGEN TLB analysis lives here
// too so benchmarks can compare all schemes uniformly.

#include <cstdint>
#include <vector>

#include "sim/ram_model.hpp"

namespace bisram::sim {

/// Result of a repair-capability analysis.
struct RepairAnalysis {
  bool repairable = false;
  int repairs_used = 0;     ///< spare words / capture registers consumed
  int dead_subblocks = 0;   ///< Chen-Sunada: subblocks beyond local repair
};

/// BISRAMGEN: repairable iff the number of distinct faulty words does not
/// exceed spare_words() and (per the paper's strict "goodness") the
/// spares named by the strictly increasing sequence are fault-free —
/// callers pass faulty spare indices separately.
RepairAnalysis bisramgen_repair(const RamGeometry& geo,
                                const std::vector<std::uint32_t>& faulty_words,
                                const std::vector<int>& faulty_spares = {});

/// Sawada: one fail-address register; repairable iff at most one faulty
/// word (and the single spare location is good).
RepairAnalysis sawada_repair(const std::vector<std::uint32_t>& faulty_words,
                             bool spare_good = true);

/// Chen-Sunada: the word space is divided into `subblocks` equal blocks;
/// each block repairs at most `captures_per_block` (2 in the paper)
/// faulty addresses; blocks with more faults are dead and must be covered
/// by one of `spare_blocks` spare subblocks (the fault assembler).
RepairAnalysis chen_sunada_repair(
    const RamGeometry& geo, const std::vector<std::uint32_t>& faulty_words,
    int subblocks, int captures_per_block = 2, int spare_blocks = 0);

/// Address-path delay models (normal-mode penalty), in gate delays of
/// `tau_s` each. BISRAMGEN compares all entries in parallel: one CAM
/// match + priority-encode + mux. Chen-Sunada compares its capture
/// registers sequentially: delay grows linearly in the register count.
double parallel_compare_delay_s(int entries, double tau_s);
double sequential_compare_delay_s(int entries, double tau_s);

/// Monte-Carlo repair-success comparison: injects `defects` uniformly
/// random faulty words (with `spare_fault_prob` chance of each spare word
/// being bad) and returns the fraction of `trials` patterns each scheme
/// repairs: {bisramgen, chen_sunada, sawada}.
struct SchemeComparison {
  double bisramgen = 0;
  double chen_sunada = 0;
  double sawada = 0;
};
SchemeComparison compare_schemes(const RamGeometry& geo, int defects,
                                 int trials, std::uint64_t seed,
                                 int cs_subblocks, int cs_spare_blocks = 0,
                                 double spare_fault_prob = 0.0);

}  // namespace bisram::sim
