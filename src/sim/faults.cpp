#include "sim/faults.hpp"

namespace bisram::sim {

const char* fault_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::StuckAt0: return "SAF0";
    case FaultKind::StuckAt1: return "SAF1";
    case FaultKind::TransitionUp: return "TF<0->1>";
    case FaultKind::TransitionDown: return "TF<1->0>";
    case FaultKind::CouplingIdem: return "CFid";
    case FaultKind::CouplingInv: return "CFin";
    case FaultKind::CouplingState: return "CFst";
    case FaultKind::StuckOpen: return "SOF";
    case FaultKind::Retention: return "DRF";
  }
  return "?";
}

FaultyArray::FaultyArray(int rows, int cols)
    : rows_(rows), cols_(cols),
      bits_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0),
      column_last_sense_(static_cast<std::size_t>(cols), 0) {
  require(rows > 0 && cols > 0, "FaultyArray: non-positive dimensions");
}

std::size_t FaultyArray::index(int row, int col) const {
  ensure(row >= 0 && row < rows_ && col >= 0 && col < cols_,
         "FaultyArray: cell out of range");
  return static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
         static_cast<std::size_t>(col);
}

void FaultyArray::check(const CellAddr& a) const { (void)index(a.row, a.col); }

void FaultyArray::inject(const Fault& fault) {
  check(fault.victim);
  const bool coupling = fault.kind == FaultKind::CouplingIdem ||
                        fault.kind == FaultKind::CouplingInv ||
                        fault.kind == FaultKind::CouplingState;
  if (coupling) {
    check(fault.aggressor);
    require(!(fault.aggressor == fault.victim),
            "FaultyArray: coupling fault with aggressor == victim");
  }
  const std::size_t id = faults_.size();
  faults_.push_back(fault);
  refresh_time_.push_back(now_s_);
  by_victim_[index(fault.victim.row, fault.victim.col)].push_back(id);
  if (coupling)
    by_aggressor_[index(fault.aggressor.row, fault.aggressor.col)].push_back(id);
}

void FaultyArray::clear_faults() {
  faults_.clear();
  refresh_time_.clear();
  by_victim_.clear();
  by_aggressor_.clear();
}

void FaultyArray::set_retention_threshold(double seconds) {
  require(seconds > 0, "retention threshold must be positive");
  retention_threshold_s_ = seconds;
}

void FaultyArray::elapse(double seconds) {
  require(seconds >= 0, "elapse: negative time");
  now_s_ += seconds;
}

void FaultyArray::apply_aggressor_effects(const CellAddr& aggr, bool old_v,
                                          bool new_v) {
  auto it = by_aggressor_.find(index(aggr.row, aggr.col));
  if (it == by_aggressor_.end()) return;
  for (std::size_t id : it->second) {
    const Fault& f = faults_[id];
    const std::size_t vi = index(f.victim.row, f.victim.col);
    switch (f.kind) {
      case FaultKind::CouplingIdem:
        if (old_v != new_v && new_v == f.dir_rising)
          bits_[vi] = f.value ? 1 : 0;
        break;
      case FaultKind::CouplingInv:
        if (old_v != new_v && new_v == f.dir_rising) bits_[vi] ^= 1;
        break;
      default:
        // CouplingState is a *static* condition evaluated when the victim
        // is read (see read()); write-time application would be masked by
        // the word-parallel write of the victim's own bit.
        break;
    }
  }
}

void FaultyArray::write(int row, int col, bool v) {
  const std::size_t i = index(row, col);
  const bool old_v = bits_[i] != 0;
  bool effective = v;
  bool stored = true;

  auto it = by_victim_.find(i);
  if (it != by_victim_.end()) {
    for (std::size_t id : it->second) {
      Fault& f = faults_[id];
      switch (f.kind) {
        case FaultKind::StuckAt0: effective = false; break;
        case FaultKind::StuckAt1: effective = true; break;
        case FaultKind::TransitionUp:
          if (!old_v && v) effective = old_v;  // cannot rise
          break;
        case FaultKind::TransitionDown:
          if (old_v && !v) effective = old_v;  // cannot fall
          break;
        case FaultKind::StuckOpen:
          stored = false;  // cell is disconnected; write is lost
          break;
        case FaultKind::Retention:
          refresh_time_[id] = now_s_;  // a write refreshes the cell
          break;
        default:
          break;
      }
    }
  }

  if (stored) bits_[i] = effective ? 1 : 0;
  const bool new_v = bits_[i] != 0;
  if (new_v != old_v || v != old_v)
    apply_aggressor_effects({row, col}, old_v, new_v);
}

bool FaultyArray::read(int row, int col) {
  const std::size_t i = index(row, col);
  bool value = bits_[i] != 0;

  auto it = by_victim_.find(i);
  if (it != by_victim_.end()) {
    for (std::size_t id : it->second) {
      Fault& f = faults_[id];
      switch (f.kind) {
        case FaultKind::StuckAt0: value = false; break;
        case FaultKind::StuckAt1: value = true; break;
        case FaultKind::Retention:
          if (now_s_ - refresh_time_[id] >= retention_threshold_s_) {
            bits_[i] = f.value ? 1 : 0;
            value = f.value;
          }
          break;
        case FaultKind::StuckOpen:
          // The bit line keeps its previous sensed value; the sense
          // amplifier re-latches that stale level.
          value = column_last_sense_[static_cast<std::size_t>(col)] != 0;
          break;
        case FaultKind::CouplingState: {
          // Victim forced to value2 while the aggressor sits in its
          // trigger state.
          const std::size_t ai = index(f.aggressor.row, f.aggressor.col);
          if ((bits_[ai] != 0) == f.value) {
            bits_[i] = f.value2 ? 1 : 0;
            value = f.value2;
          }
          break;
        }
        default:
          break;
      }
    }
  }
  column_last_sense_[static_cast<std::size_t>(col)] = value ? 1 : 0;
  return value;
}

bool FaultyArray::peek(int row, int col) const {
  return bits_[index(row, col)] != 0;
}

void FaultyArray::poke(int row, int col, bool v) {
  bits_[index(row, col)] = v ? 1 : 0;
}

}  // namespace bisram::sim
