#include "sim/ram_model.hpp"

#include "util/math.hpp"

namespace bisram::sim {

CellAddr RamGeometry::cell_of(std::uint32_t addr, int bit) const {
  ensure(addr < words, "RamGeometry: address out of range");
  ensure(bit >= 0 && bit < bpw, "RamGeometry: bit out of range");
  const int row = static_cast<int>(addr) / bpc;
  const int colgroup = static_cast<int>(addr) % bpc;
  return {row, bit * bpc + colgroup};
}

CellAddr RamGeometry::spare_cell_of(int spare, int bit) const {
  ensure(spare >= 0 && spare < spare_words(),
         "RamGeometry: spare index out of range");
  ensure(bit >= 0 && bit < bpw, "RamGeometry: bit out of range");
  const int row = rows() + spare / bpc;
  const int colgroup = spare % bpc;
  return {row, bit * bpc + colgroup};
}

void RamGeometry::validate() const {
  require(words >= 1, "RamGeometry: words must be >= 1");
  require(bpw >= 1, "RamGeometry: bpw must be >= 1");
  require(bpc >= 1 && is_pow2(static_cast<std::uint64_t>(bpc)),
          "RamGeometry: bpc must be a power of two");
  require(words % static_cast<std::uint32_t>(bpc) == 0,
          "RamGeometry: words must be a multiple of bpc");
  require(spare_rows >= 0, "RamGeometry: negative spare rows");
}

RamModel::RamModel(const RamGeometry& geo)
    : geo_([&] {
        geo.validate();
        return geo;
      }()),
      array_(geo_.total_rows(), geo_.cols()),
      tlb_(std::max(1, geo_.spare_words())) {}

Word RamModel::read_word(std::uint32_t addr) {
  Word w;
  read_word_into(addr, w);
  return w;
}

void RamModel::read_word_into(std::uint32_t addr, Word& out) {
  if (repair_enabled_) {
    if (const auto spare = tlb_.lookup(addr)) {
      read_spare_into(*spare, out);
      return;
    }
  }
  out.resize(static_cast<std::size_t>(geo_.bpw));
  for (int bit = 0; bit < geo_.bpw; ++bit) {
    const CellAddr c = geo_.cell_of(addr, bit);
    out[static_cast<std::size_t>(bit)] = array_.read(c.row, c.col);
  }
}

void RamModel::write_word(std::uint32_t addr, const Word& data) {
  ensure(static_cast<int>(data.size()) == geo_.bpw,
         "RamModel::write_word: width mismatch");
  if (repair_enabled_) {
    if (const auto spare = tlb_.lookup(addr)) {
      write_spare(*spare, data);
      return;
    }
  }
  for (int bit = 0; bit < geo_.bpw; ++bit) {
    const CellAddr c = geo_.cell_of(addr, bit);
    array_.write(c.row, c.col, data[static_cast<std::size_t>(bit)]);
  }
}

Word RamModel::read_spare(int spare) {
  Word w;
  read_spare_into(spare, w);
  return w;
}

void RamModel::read_spare_into(int spare, Word& out) {
  out.resize(static_cast<std::size_t>(geo_.bpw));
  for (int bit = 0; bit < geo_.bpw; ++bit) {
    const CellAddr c = geo_.spare_cell_of(spare, bit);
    out[static_cast<std::size_t>(bit)] = array_.read(c.row, c.col);
  }
}

void RamModel::write_spare(int spare, const Word& data) {
  ensure(static_cast<int>(data.size()) == geo_.bpw,
         "RamModel::write_spare: width mismatch");
  for (int bit = 0; bit < geo_.bpw; ++bit) {
    const CellAddr c = geo_.spare_cell_of(spare, bit);
    array_.write(c.row, c.col, data[static_cast<std::size_t>(bit)]);
  }
}

Fault stuck_bit_fault(const RamGeometry& geo, std::uint32_t addr, int bit,
                      bool stuck_at_one) {
  Fault f;
  f.kind = stuck_at_one ? FaultKind::StuckAt1 : FaultKind::StuckAt0;
  f.victim = geo.cell_of(addr, bit);
  return f;
}

}  // namespace bisram::sim
