#include "sim/fault_sim.hpp"

#include "sim/packed_ram.hpp"
#include "util/parallel.hpp"

namespace bisram::sim {

Fault random_fault(FaultKind kind, const RamGeometry& geo, Rng& rng,
                   CouplingScope scope) {
  Fault f;
  f.kind = kind;
  const bool coupling = kind == FaultKind::CouplingIdem ||
                        kind == FaultKind::CouplingInv ||
                        kind == FaultKind::CouplingState;
  if (!coupling) {
    f.victim = {static_cast<int>(rng.below(static_cast<std::uint64_t>(geo.rows()))),
                static_cast<int>(rng.below(static_cast<std::uint64_t>(geo.cols())))};
  } else if (scope == CouplingScope::IntraWord) {
    const auto addr = static_cast<std::uint32_t>(rng.below(geo.words));
    const int bi = static_cast<int>(rng.below(static_cast<std::uint64_t>(geo.bpw)));
    int bj = static_cast<int>(rng.below(static_cast<std::uint64_t>(geo.bpw)));
    if (geo.bpw > 1) {
      while (bj == bi)
        bj = static_cast<int>(rng.below(static_cast<std::uint64_t>(geo.bpw)));
    } else {
      // Degenerate 1-bit words cannot host intra-word coupling; fall back
      // to a neighbouring word's cell.
      return random_fault(kind, geo, rng, CouplingScope::PhysicalNeighbor);
    }
    f.aggressor = geo.cell_of(addr, bi);
    f.victim = geo.cell_of(addr, bj);
  } else {
    // Adjacent columns of the same row: under column multiplexing these
    // belong to different words (or different bit positions).
    const int row = static_cast<int>(rng.below(static_cast<std::uint64_t>(geo.rows())));
    const int col = static_cast<int>(rng.below(static_cast<std::uint64_t>(geo.cols() - 1)));
    f.aggressor = {row, col};
    f.victim = {row, col + 1};
    if (rng.chance(0.5)) std::swap(f.aggressor, f.victim);
  }
  f.dir_rising = rng.chance(0.5);
  f.value = rng.chance(0.5);
  f.value2 = rng.chance(0.5);
  return f;
}

bool detects(const march::MarchTest& test, const RamGeometry& geo,
             const Fault& fault, bool johnson_backgrounds, SimKernel kernel,
             SimKernel* kernel_used) {
  BistConfig config;
  config.test = &test;
  config.johnson_backgrounds = johnson_backgrounds;
  const BistResult result =
      run_bist(geo, {fault}, config, kernel, kernel_used);
  return !result.pass1_clean;
}

CampaignResult<std::vector<Coverage>> fault_coverage(
    const march::MarchTest& test, const RamGeometry& geo,
    const std::vector<FaultKind>& kinds, bool johnson_backgrounds,
    const CampaignSpec& spec, CouplingScope scope) {
  // Trial i of kind k draws from sub-stream k * trials + i of the
  // campaign seed, so the faults sampled are a pure function of the
  // (seed, kind, trial) triple — never of thread placement or of the
  // kernel the trial dispatched to.
  require(!spec.checkpoint.enabled() && !spec.checkpoint.resuming(),
          "fault_coverage: checkpointing is not supported here — use "
          "cancel/deadline for bounded runs");
  CampaignResult<std::vector<Coverage>> out;
  std::int64_t requested = 0, done_total = 0;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    if (spec.cancel && spec.cancel->stop_requested() && k > 0) break;
    const FaultKind kind = kinds[k];
    Coverage cov;
    cov.kind = kind;
    cov.scope = scope;
    std::int64_t done = 0;
    cov.detected = run_campaign<int>(
        spec, /*chunk=*/4, 0,
        [&](Rng& rng, std::int64_t, KernelTally& tally) {
          const Fault f = random_fault(kind, geo, rng, scope);
          SimKernel used = SimKernel::Scalar;
          const bool hit =
              detects(test, geo, f, johnson_backgrounds, spec.kernel, &used);
          tally.note(used);
          return hit ? 1 : 0;
        },
        [](int a, int b) { return a + b; }, &out.provenance,
        /*stream_offset=*/static_cast<std::uint64_t>(k) *
            static_cast<std::uint64_t>(spec.trials),
        &done);
    // A cancelled kind reports coverage over the trials it completed; a
    // kind the campaign never reached is simply absent from the result.
    cov.total = static_cast<int>(done);
    done_total += done;
    out.value.push_back(cov);
  }
  requested = static_cast<std::int64_t>(kinds.size()) * spec.trials;
  out.termination =
      resolve_termination(done_total, requested, spec.cancel, false);
  return out;
}

}  // namespace bisram::sim
