#pragma once
// Cycle-accurate execution of the microprogrammed TRPLA controller: the
// state register (STREG), the NOR-NOR PLA, and the BIST/BISR datapath
// (ADDGEN, DATAGEN, comparator, TLB, retention timer) wired to a
// fault-injectable RAM. Unlike sim/bist.hpp, nothing here interprets the
// march test — every control decision comes out of the PLA personality,
// exactly as in the generated hardware.
//
// The machine is itself fault-injectable: inject() plants an
// infrastructure defect (sim/infra_faults.hpp) into the TLB, ADDGEN,
// DATAGEN, STREG or the PLA planes, and run() degrades gracefully when
// the corrupted controller no longer terminates — the watchdog returns a
// `hung` BistResult with BISR disabled instead of throwing.

#include <cstdint>
#include <optional>

#include "microcode/controller.hpp"
#include "sim/bist.hpp"
#include "sim/generators.hpp"
#include "sim/infra_faults.hpp"
#include "sim/ram_model.hpp"

namespace bisram::sim {

class PlaBistMachine {
 public:
  /// `johnson_backgrounds` false pins DATAGEN to the all-0 background
  /// (the bg_last condition reads constant-true).
  PlaBistMachine(RamModel& ram, const microcode::AssembledController& ctrl,
                 double retention_wait_s = 0.1,
                 bool johnson_backgrounds = true, int timer_cycles = 3);

  /// Plants a defect in the repair machinery itself. TLB faults land in
  /// the RAM's TLB (they persist into normal mode — silicon does not
  /// heal); the rest corrupt this machine's datapath or control store.
  /// May be called repeatedly to accumulate defects.
  void inject(const InfraFault& fault);

  /// Executes one controller cycle; returns true when the controller has
  /// reached DONE_OK or DONE_FAIL.
  bool step();

  /// Runs to completion, bounded by the `max_cycles` watchdog. A healthy
  /// controller always terminates well inside any sane budget; a
  /// defective one may not, in which case the result comes back with
  /// `hung` set and BISR disabled (safe degradation). Pass
  /// `strict_runaway` to restore the historical InternalError throw.
  BistResult run(std::uint64_t max_cycles = 1ull << 34,
                 bool strict_runaway = false);

  int state() const { return state_; }
  std::uint64_t controller_cycles() const { return controller_cycles_; }

 private:
  std::vector<bool> sample_conditions() const;
  const microcode::PlaPersonality& active_pla() const {
    return pla_override_ ? *pla_override_ : ctrl_.pla;
  }
  int apply_streg_stuck(int state) const {
    return (state & ~streg_stuck_mask_) | streg_stuck_value_;
  }

  RamModel& ram_;
  const microcode::AssembledController& ctrl_;
  AddGen addgen_;
  DataGen datagen_;
  double retention_wait_s_;
  bool johnson_;
  int timer_cycles_;

  int state_ = 0;
  bool dirty_ = false;
  bool overflow_ = false;
  int timer_remaining_ = 0;
  bool pass1_clean_seen_ = true;  // no mismatch observed during pass 1
  int passes_started_ = 0;        // INIT's ClearDirty starts pass 1
  std::uint64_t ram_ops_ = 0;
  std::uint64_t controller_cycles_ = 0;
  bool finished_ = false;
  bool success_ = false;
  // Infrastructure faults local to the controller.
  int streg_stuck_mask_ = 0;
  int streg_stuck_value_ = 0;
  std::optional<microcode::PlaPersonality> pla_override_;
  Word readback_;  ///< reused read buffer: no per-cycle allocation
};

/// Convenience: build the TRPLA for `config.test`/`config.max_passes`,
/// execute it, and return the same BistResult shape as the behavioural
/// engine (tests prove the two agree).
BistResult run_microcoded_bist(RamModel& ram, const BistConfig& config = {});

}  // namespace bisram::sim
