#include "sim/tlb.hpp"

#include "util/error.hpp"

namespace bisram::sim {

Tlb::Tlb(int capacity) : capacity_(capacity) {
  require(capacity >= 1, "Tlb: capacity must be >= 1");
}

std::optional<int> Tlb::lookup(std::uint32_t addr) const {
  if (!slot_faults_.empty()) return faulted_lookup(addr);
  // Newest entry wins: scan from the back.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it)
    if (it->addr == addr) return it->spare;
  return std::nullopt;
}

std::optional<int> Tlb::faulted_lookup(std::uint32_t addr) const {
  // The hardware compares every physical slot in parallel and a priority
  // encoder picks the newest (highest-index) match. Scan all capacity_
  // slots — not just the recorded ones — because a valid or match line
  // stuck at 1 activates a slot nothing was ever written to.
  for (int slot = capacity_ - 1; slot >= 0; --slot) {
    bool valid = slot < used();
    // Powered-up CAM contents of an unwritten slot: all zeros.
    std::uint32_t stored =
        valid ? entries_[static_cast<std::size_t>(slot)].addr : 0u;
    std::optional<bool> match_override;
    for (const SlotFault& f : slot_faults_) {
      if (f.slot != slot) continue;
      switch (f.site) {
        case SlotFault::Site::EntryBit:
          if (f.value)
            stored |= 1u << f.bit;
          else
            stored &= ~(1u << f.bit);
          break;
        case SlotFault::Site::Valid:
          valid = f.value;
          break;
        case SlotFault::Site::Match:
          match_override = f.value;
          break;
      }
    }
    const bool match =
        match_override ? *match_override : (valid && stored == addr);
    if (match) return slot;  // spare index == slot index
  }
  return std::nullopt;
}

std::optional<int> Tlb::record(std::uint32_t addr, bool force_new) {
  if (!force_new) {
    // Pass-1 dedup rides the same (possibly faulty) comparators the
    // normal-mode diversion uses.
    if (const auto existing = lookup(addr)) return existing;
  }
  if (full()) return std::nullopt;
  const int spare = used();  // strictly increasing sequence 0, 1, 2, ...
  entries_.push_back({addr, spare});
  return spare;
}

void Tlb::clear() { entries_.clear(); }

void Tlb::add_fault(SlotFault f) {
  require(f.slot >= 0 && f.slot < capacity_, "Tlb: fault slot out of range");
  require(f.bit >= 0 && f.bit < 32, "Tlb: fault bit out of range");
  slot_faults_.push_back(f);
}

void Tlb::inject_entry_bit_stuck(int slot, int bit, bool value) {
  add_fault({SlotFault::Site::EntryBit, slot, bit, value});
}

void Tlb::inject_valid_stuck(int slot, bool value) {
  add_fault({SlotFault::Site::Valid, slot, 0, value});
}

void Tlb::inject_match_stuck(int slot, bool value) {
  add_fault({SlotFault::Site::Match, slot, 0, value});
}

}  // namespace bisram::sim
