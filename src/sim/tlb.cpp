#include "sim/tlb.hpp"

#include "util/error.hpp"

namespace bisram::sim {

Tlb::Tlb(int capacity) : capacity_(capacity) {
  require(capacity >= 1, "Tlb: capacity must be >= 1");
}

std::optional<int> Tlb::lookup(std::uint32_t addr) const {
  // Newest entry wins: scan from the back.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it)
    if (it->addr == addr) return it->spare;
  return std::nullopt;
}

std::optional<int> Tlb::record(std::uint32_t addr, bool force_new) {
  if (!force_new) {
    if (const auto existing = lookup(addr)) return existing;
  }
  if (full()) return std::nullopt;
  const int spare = used();  // strictly increasing sequence 0, 1, 2, ...
  entries_.push_back({addr, spare});
  return spare;
}

void Tlb::clear() { entries_.clear(); }

}  // namespace bisram::sim
