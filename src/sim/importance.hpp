#pragma once
// Stratified importance sampling over the per-die defect count.
//
// Every Monte-Carlo yield estimator in the repo shares one structure: a
// die draws its defect count K from the Gamma-Poisson mixture (so K is
// negative-binomial with Stapper clustering alpha), places the K defects
// uniformly, and simulates the outcome. At realistic defect densities
// the expensive part — the BIST/BISR simulation — is almost always spent
// on the *boring* stratum: P(K = 0) is 0.9+ and a zero-defect die's
// outcome is known analytically. Plain MC burns a full die simulation on
// every one of those trials and its estimator variance is dominated by
// the Bernoulli noise of rare faulty dies.
//
// The stratified estimator decomposes the expectation exactly:
//
//   E[f(die)] = P(K=0) * f0  +  sum_k P(K=k) * E[f | K=k]  +  tail
//
//   * the k = 0 stratum is resolved in closed form (f0 is known: a
//     defect-free die is good), costing zero simulations;
//   * each k >= 1 stratum is simulated *conditionally* — K is pinned to
//     k, and because the conditional placement of k defects is uniform
//     iid regardless of the mixed Gamma rate, the conditional trial
//     needs no rate draw at all — then reweighted with the exact
//     negative-binomial pmf (util/math.hpp);
//   * the residual tail beyond the last retained stratum (mass below
//     SamplingSpec::tail_mass, default 1e-12) is counted
//     *pessimistically* (as the worst outcome), so the estimator's
//     deterministic bias is bounded by that mass — far below the
//     resolution of any statistical test at feasible trial counts.
//
// Both estimators are unbiased for the same quantity up to that bound;
// tests/test_yield_statistics.cpp proves the agreement statistically
// (z-tests against the analytic Stapper/occupancy closed forms) and
// pins the variance reduction and the >= 10x die-simulation saving.
//
// Determinism: stratum s draws from seed sub-streams offset by
// stratum_stream_offset(s), so strata never share a trial stream with
// each other or with a plain campaign, and the combined estimate is
// bit-identical for any thread count (inherited from run_campaign).

#include <cstdint>
#include <vector>

#include "sim/campaign.hpp"

namespace bisram::sim {

/// One retained defect-count stratum.
struct Stratum {
  std::int64_t defects = 0;  ///< the pinned count k (>= 1)
  double probability = 0.0;  ///< exact P(K = k)
  int trials = 0;            ///< conditional trials allocated to it
};

/// The complete sampling plan for one campaign.
struct StrataPlan {
  double zero_probability = 0.0;  ///< P(K = 0), resolved analytically
  double tail_probability = 0.0;  ///< truncated mass, counted pessimistically
  std::vector<Stratum> strata;    ///< k >= 1 strata in ascending k
  /// Total conditional die simulations the plan will spend.
  std::int64_t total_trials() const {
    std::int64_t n = 0;
    for (const Stratum& s : strata) n += s.trials;
    return n;
  }
};

/// Builds the plan for K ~ NegBin(mean, alpha): walks k upward until the
/// residual tail drops below sampling.tail_mass, then gives stratum k
/// the trials plain MC would spend there in expectation (budget * P(K =
/// k), floored at sampling.min_stratum_trials so rare strata still
/// carry a variance estimate). The plan therefore simulates only
/// ~ budget * (1 - P(K=0)) dies while its SE is never worse than plain
/// MC's at the full budget (law of total variance: the between-strata
/// term drops out). mean == 0 degenerates to the pure zero stratum.
/// Throws SpecError on a non-positive budget or invalid sampling
/// parameters.
StrataPlan plan_strata(double mean, double alpha, int budget,
                       const SamplingSpec& sampling);

/// Seed-stream offset for stratum index s. Strata use disjoint 2^32-wide
/// stream windows (offset (s + 1) << 32), far above any realistic trial
/// count, so no stratum shares a sub-stream with another stratum or with
/// a plain campaign at offset 0.
std::uint64_t stratum_stream_offset(std::size_t s);

/// Bernoulli tally of one stratum's conditional trials. Integer counts —
/// not running floating-point means — so the fold is exactly associative
/// and the combined estimate is bit-identical for any thread count and
/// any SIMD batch width.
struct StratumCount {
  std::int64_t successes = 0;
  std::int64_t trials = 0;
};

/// A stratified estimate with its standard error.
struct WeightedEstimate {
  double value = 0.0;
  double std_error = 0.0;
};

/// Combines per-stratum Bernoulli counts into the stratified estimator:
///   value = P0 * zero_value + sum_k Pk * p_hat_k + tail * tail_value
///   SE^2  = sum_k Pk^2 * s_k^2 / n_k   (s_k^2 the unbiased Bernoulli
///                                       sample variance)
/// `zero_value` is the analytic outcome of a defect-free die and
/// `tail_value` the pessimistic outcome assigned to the truncated tail.
/// `counts` must be parallel to plan.strata. A stratum with zero trials
/// (a cancelled campaign never reached it) contributes tail_value — the
/// same pessimistic treatment as the truncated tail — so a partial
/// stratified estimate is a valid conservative bound, not an error.
WeightedEstimate combine_strata_bernoulli(const StrataPlan& plan,
                                          const std::vector<StratumCount>& counts,
                                          double zero_value, double tail_value);

/// Same combination for a non-Bernoulli per-trial statistic summarised
/// per stratum as (mean, std_error, count) — e.g. a Welford accumulator
/// per stratum: value = P0 * zero_value + sum Pk * mean_k + tail *
/// tail_value, SE^2 = sum Pk^2 * se_k^2.
struct StratumMoments {
  double mean = 0.0;
  double std_error = 0.0;
  std::int64_t trials = 0;
};
WeightedEstimate combine_strata(const StrataPlan& plan,
                                const std::vector<StratumMoments>& moments,
                                double zero_value, double tail_value);

}  // namespace bisram::sim
