#include "sim/campaign.hpp"

#include <chrono>

#include "util/error.hpp"

namespace bisram::sim {

namespace {

double steady_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* kernel_name(SimKernel kernel) {
  switch (kernel) {
    case SimKernel::Auto:
      return "auto";
    case SimKernel::Packed:
      return "packed";
    case SimKernel::Scalar:
      return "scalar";
  }
  throw InternalError("kernel_name: unknown SimKernel");
}

SimKernel kernel_by_name(const std::string& name) {
  if (name == "auto") return SimKernel::Auto;
  if (name == "packed") return SimKernel::Packed;
  if (name == "scalar") return SimKernel::Scalar;
  throw SpecError("unknown simulation kernel '" + name +
                  "' (expected auto, packed, or scalar)");
}

const char* sampling_name(SamplingMode mode) {
  switch (mode) {
    case SamplingMode::Plain:
      return "plain";
    case SamplingMode::Stratified:
      return "stratified";
  }
  throw InternalError("sampling_name: unknown SamplingMode");
}

SamplingMode sampling_by_name(const std::string& name) {
  if (name == "plain") return SamplingMode::Plain;
  if (name == "stratified") return SamplingMode::Stratified;
  throw SpecError("unknown sampling mode '" + name +
                  "' (expected plain or stratified)");
}

int resolve_campaign_threads(const CampaignSpec& spec) {
  return spec.threads > 0 ? spec.threads : campaign_threads();
}

std::int64_t checkpoint_segment_trials(const CheckpointSpec& ck,
                                       std::int64_t chunk,
                                       std::int64_t total) {
  if (!ck.enabled() && ck.pause_after <= 0) return total;
  std::int64_t iv = ck.interval > 0 ? ck.interval : total / 16;
  if (iv < chunk) iv = chunk;
  return (iv + chunk - 1) / chunk * chunk;
}

CheckpointCadence::CheckpointCadence() : last_ms_(steady_ms()) {}

bool CheckpointCadence::due(const CheckpointSpec& ck, bool force) const {
  if (!ck.enabled()) return false;
  return force || ck.min_period_ms <= 0 ||
         steady_ms() - last_ms_ >= ck.min_period_ms;
}

void CheckpointCadence::note_write() { last_ms_ = steady_ms(); }

}  // namespace bisram::sim
