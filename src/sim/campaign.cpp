#include "sim/campaign.hpp"

#include "util/error.hpp"

namespace bisram::sim {

const char* kernel_name(SimKernel kernel) {
  switch (kernel) {
    case SimKernel::Auto:
      return "auto";
    case SimKernel::Packed:
      return "packed";
    case SimKernel::Scalar:
      return "scalar";
  }
  throw InternalError("kernel_name: unknown SimKernel");
}

SimKernel kernel_by_name(const std::string& name) {
  if (name == "auto") return SimKernel::Auto;
  if (name == "packed") return SimKernel::Packed;
  if (name == "scalar") return SimKernel::Scalar;
  throw SpecError("unknown simulation kernel '" + name +
                  "' (expected auto, packed, or scalar)");
}

const char* sampling_name(SamplingMode mode) {
  switch (mode) {
    case SamplingMode::Plain:
      return "plain";
    case SamplingMode::Stratified:
      return "stratified";
  }
  throw InternalError("sampling_name: unknown SamplingMode");
}

SamplingMode sampling_by_name(const std::string& name) {
  if (name == "plain") return SamplingMode::Plain;
  if (name == "stratified") return SamplingMode::Stratified;
  throw SpecError("unknown sampling mode '" + name +
                  "' (expected plain or stratified)");
}

int resolve_campaign_threads(const CampaignSpec& spec) {
  return spec.threads > 0 ? spec.threads : campaign_threads();
}

}  // namespace bisram::sim
