#pragma once
// The BIST datapath generators:
//  * ADDGEN — a binary up/down counter producing the forward and reverse
//    address sequences required by march elements;
//  * DATAGEN — a Johnson counter stepping through the data backgrounds
//    and comparing read data against expectations (XOR tree + OR gate in
//    the hardware; modelled functionally here).

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace bisram::sim {

/// Binary up/down address counter over [0, words).
class AddGen {
 public:
  explicit AddGen(std::uint32_t words) : words_(words) {
    require(words >= 1, "AddGen: empty address space");
  }

  /// Loads 0 (up) or words-1 (down) and sets the direction.
  void reset(bool up) {
    up_ = up;
    addr_ = up ? 0 : words_ - 1;
    done_ = false;
  }

  std::uint32_t address() const { return addr_; }
  /// True once the counter has stepped past the final address.
  bool done() const { return done_; }
  /// True while the counter sits on the last address of the sweep.
  bool at_last() const { return up_ ? addr_ == words_ - 1 : addr_ == 0; }

  /// Advances one step; sets done() when the sweep is exhausted.
  void step() {
    if (at_last()) {
      done_ = true;
      return;
    }
    addr_ = up_ ? addr_ + 1 : addr_ - 1;
  }

 private:
  std::uint32_t words_;
  std::uint32_t addr_ = 0;
  bool up_ = true;
  bool done_ = false;
};

/// Johnson-counter data background generator for bpw-bit words.
/// Steps through the bpw+1 backgrounds all-0, 10...0, ..., all-1.
class DataGen {
 public:
  explicit DataGen(int bpw);

  void reset();
  /// Shifts in the next background; returns false when already at the
  /// last one (all-1).
  bool step();
  /// True when positioned at the final background.
  bool at_last() const { return ones_ == bpw_; }
  int background_index() const { return ones_; }
  int background_count() const { return bpw_ + 1; }

  /// Current background pattern, bit i of the word.
  bool bit(int i) const;
  /// The full pattern, optionally complemented (r1/w1 ops).
  std::vector<bool> word(bool complemented) const;

  /// Comparator: true when `data` differs from the expected pattern
  /// (background or complement) in any bit — the XOR/OR network.
  bool mismatch(const std::vector<bool>& data, bool complemented) const;

 private:
  int bpw_;
  int ones_ = 0;  // Johnson fill count: background = 1^ones 0^(bpw-ones)
};

}  // namespace bisram::sim
