#pragma once
// The BIST datapath generators:
//  * ADDGEN — a binary up/down counter producing the forward and reverse
//    address sequences required by march elements;
//  * DATAGEN — a Johnson counter stepping through the data backgrounds
//    and comparing read data against expectations (XOR tree + OR gate in
//    the hardware; modelled functionally here).
//
// Both blocks carry stuck-at injection hooks (sim/infra_faults.hpp): a
// defective counter flip-flop makes the generator skip, alias or never
// reach addresses/backgrounds — which is exactly how a broken BIST
// engine hangs or lets real faults escape. The fault-free paths are
// unchanged when nothing is injected.

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace bisram::sim {

/// Binary up/down address counter over [0, words).
class AddGen {
 public:
  explicit AddGen(std::uint32_t words) : words_(words) {
    require(words >= 1, "AddGen: empty address space");
  }

  /// Loads 0 (up) or words-1 (down) and sets the direction.
  void reset(bool up) {
    up_ = up;
    addr_ = up ? 0 : words_ - 1;
    done_ = false;
    apply_stuck();
  }

  std::uint32_t address() const { return addr_; }
  /// True once the counter has stepped past the final address.
  bool done() const { return done_; }
  /// True while the counter sits on the last address of the sweep.
  bool at_last() const { return up_ ? addr_ == words_ - 1 : addr_ == 0; }

  /// Advances one step; sets done() when the sweep is exhausted.
  void step() {
    if (at_last()) {
      done_ = true;
      return;
    }
    addr_ = up_ ? addr_ + 1 : addr_ - 1;
    apply_stuck();
  }

  /// Infra-fault hook: counter flip-flop `bit` is stuck at `value`. The
  /// stuck bit lives in the stored state, so the increment, the
  /// last-address comparator and the issued address all see it — a
  /// stuck low bit makes the count oscillate below the terminal address
  /// forever (the classic BIST hang). Out-of-range results wrap modulo
  /// the word count, as a partial row decode would.
  void inject_stuck_bit(int bit, bool value);

 private:
  void apply_stuck() {
    if (stuck_mask_ == 0) return;
    addr_ = ((addr_ & ~stuck_mask_) | stuck_value_) % words_;
  }

  std::uint32_t words_;
  std::uint32_t addr_ = 0;
  bool up_ = true;
  bool done_ = false;
  std::uint32_t stuck_mask_ = 0;
  std::uint32_t stuck_value_ = 0;
};

/// Johnson-counter data background generator for bpw-bit words.
/// Steps through the bpw+1 backgrounds all-0, 10...0, ..., all-1.
class DataGen {
 public:
  explicit DataGen(int bpw);

  void reset();
  /// Shifts in the next background; returns false when already at the
  /// last one (all-1).
  bool step();
  /// True when positioned at the final background. The hardware decodes
  /// this from the register outputs, so a stuck bit fools it: stuck-at-0
  /// means all-1 never decodes (the controller loops forever stepping
  /// backgrounds); stuck-at-1 can fire it early (backgrounds skipped).
  bool at_last() const;
  int background_index() const { return ones_; }
  int background_count() const { return bpw_ + 1; }

  /// Current background pattern, bit i of the word.
  bool bit(int i) const;
  /// The full pattern, optionally complemented (r1/w1 ops).
  std::vector<bool> word(bool complemented) const;

  /// Comparator: true when `data` differs from the expected pattern
  /// (background or complement) in any bit — the XOR/OR network.
  bool mismatch(const std::vector<bool>& data, bool complemented) const;

  /// Infra-fault hook: register output `bit` is stuck at `value`. Writes
  /// and compare expectations both use the stuck value (they share the
  /// generator), so a clean RAM still passes — but cells the stuck
  /// pattern can no longer exercise become escape sites for real faults.
  void inject_stuck_bit(int bit, bool value);

 private:
  int bpw_;
  int ones_ = 0;  // Johnson fill count: background = 1^ones 0^(bpw-ones)
  // stuck_[i] < 0: bit i healthy; otherwise the forced value (0/1).
  std::vector<signed char> stuck_;
};

}  // namespace bisram::sim
