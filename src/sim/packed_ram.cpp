#include "sim/packed_ram.hpp"

#include <algorithm>

#include "util/simd.hpp"

namespace bisram::sim {

bool packed_supported(FaultKind kind) {
  switch (kind) {
    case FaultKind::StuckAt0:
    case FaultKind::StuckAt1:
    case FaultKind::TransitionUp:
    case FaultKind::TransitionDown:
    case FaultKind::CouplingIdem:
    case FaultKind::CouplingInv:
    case FaultKind::CouplingState:
      return true;
    case FaultKind::StuckOpen:   // reads the column's last sensed value
    case FaultKind::Retention:   // wall-clock decay
      return false;
  }
  return false;
}

bool packed_supported(const std::vector<Fault>& faults) {
  for (const Fault& f : faults)
    if (!packed_supported(f.kind)) return false;
  return true;
}

namespace {

bool is_coupling(FaultKind kind) {
  return kind == FaultKind::CouplingIdem || kind == FaultKind::CouplingInv ||
         kind == FaultKind::CouplingState;
}

}  // namespace

PackedPatternTable::PackedPatternTable(const RamGeometry& geo) : geo_(geo) {
  geo_.validate();
  pw_ = (geo_.total_rows() + 63) / 64;
  words_ = static_cast<std::size_t>(geo_.cols()) * static_cast<std::size_t>(pw_);
  // One slot per (ones, complemented) pair; ones ranges over 0..bpw.
  cache_.resize(2 * static_cast<std::size_t>(geo_.bpw + 1));
}

const std::uint64_t* PackedPatternTable::pattern(int ones,
                                                 bool complemented) const {
  require(ones >= 0 && ones <= geo_.bpw,
          "PackedPatternTable: Johnson fill count out of range");
  std::vector<std::uint64_t>& image =
      cache_[static_cast<std::size_t>(ones) * 2 + (complemented ? 1 : 0)];
  if (image.empty()) {
    image.assign(words_, 0);
    for (int col = 0; col < geo_.cols(); ++col) {
      const bool bit = (col / geo_.bpc < ones) != complemented;
      if (!bit) continue;
      const std::size_t base =
          static_cast<std::size_t>(col) * static_cast<std::size_t>(pw_);
      for (int w = 0; w < pw_; ++w) image[base + static_cast<std::size_t>(w)] =
          ~0ull;
    }
  }
  return image.data();
}

PackedRam::PackedRam(const RamGeometry& geo, const std::vector<Fault>& faults)
    : PackedRam(geo, faults, nullptr) {}

PackedRam::PackedRam(const RamGeometry& geo, const std::vector<Fault>& faults,
                     const PackedPatternTable* patterns)
    : geo_([&] {
        geo.validate();
        return geo;
      }()),
      pw_((geo_.total_rows() + 63) / 64),
      planes_(static_cast<std::size_t>(geo_.cols()) *
                  static_cast<std::size_t>(pw_),
              0),
      write_mask_(planes_.size(), 0),
      owned_patterns_(patterns ? nullptr : new PackedPatternTable(geo_)),
      patterns_(patterns ? patterns : owned_patterns_.get()),
      faults_(faults),
      tlb_(std::max(1, geo_.spare_words())) {
  require(patterns_->words_per_die() == planes_.size(),
          "PackedRam: pattern table geometry mismatch");
  const int rows = geo_.rows();
  const int total_rows = geo_.total_rows();
  const int cols = geo_.cols();

  // Index the overlays and derive the special word addresses: a regular
  // cell at (row, col) is bit col/bpc of the word row*bpc + col%bpc.
  std::vector<std::uint32_t> specials;
  auto add_cell = [&](const CellAddr& c) {
    require(c.row >= 0 && c.row < total_rows && c.col >= 0 && c.col < cols,
            "PackedRam: fault cell out of range");
    if (c.row < rows)
      specials.push_back(static_cast<std::uint32_t>(c.row) *
                             static_cast<std::uint32_t>(geo_.bpc) +
                         static_cast<std::uint32_t>(c.col % geo_.bpc));
  };
  for (std::size_t id = 0; id < faults_.size(); ++id) {
    const Fault& f = faults_[id];
    require(packed_supported(f.kind),
            "PackedRam: fault kind not expressible as a sparse overlay");
    add_cell(f.victim);
    by_victim_[cell_index(f.victim.row, f.victim.col)].push_back(id);
    if (is_coupling(f.kind)) {
      require(!(f.aggressor == f.victim),
              "PackedRam: coupling fault with aggressor == victim");
      add_cell(f.aggressor);
      by_aggressor_[cell_index(f.aggressor.row, f.aggressor.col)].push_back(
          id);
    }
  }
  std::sort(specials.begin(), specials.end());
  specials.erase(std::unique(specials.begin(), specials.end()),
                 specials.end());
  specials_ = std::move(specials);

  // Bulk masks: regular rows only, minus every cell of a special word.
  for (int col = 0; col < cols; ++col) {
    for (int w = 0; w < pw_; ++w) {
      const int lo = w * 64;
      std::uint64_t mask = ~0ull;
      if (rows - lo < 64)
        mask = rows <= lo ? 0ull : (1ull << (rows - lo)) - 1;
      write_mask_[plane_index(col, w)] = mask;
    }
  }
  for (std::uint32_t addr : specials_) {
    const int row = static_cast<int>(addr) / geo_.bpc;
    const int colgroup = static_cast<int>(addr) % geo_.bpc;
    for (int bit = 0; bit < geo_.bpw; ++bit) {
      const int col = bit * geo_.bpc + colgroup;
      write_mask_[plane_index(col, row / 64)] &=
          ~(1ull << (row % 64));
    }
  }
}

bool PackedRam::get_bit(int row, int col) const {
  return (planes_[plane_index(col, row / 64)] >> (row % 64)) & 1u;
}

void PackedRam::set_bit(int row, int col, bool v) {
  std::uint64_t& word = planes_[plane_index(col, row / 64)];
  const std::uint64_t bit = 1ull << (row % 64);
  if (v)
    word |= bit;
  else
    word &= ~bit;
}

void PackedRam::kernel_write(int ones, bool complemented) {
  // One masked stream assign over the whole plane buffer; the SIMD
  // dispatch (util/simd.hpp) is bit-identical to the historical
  // per-column scalar splat loop.
  simd::masked_assign(planes_.data(), patterns_->pattern(ones, complemented),
                      write_mask_.data(), planes_.size());
}

bool PackedRam::kernel_read_clean(int ones, bool complemented) const {
  return simd::masked_diff(planes_.data(),
                           patterns_->pattern(ones, complemented),
                           write_mask_.data(), planes_.size()) == 0;
}

void PackedRam::write_cell(int row, int col, bool v) {
  const bool old_v = get_bit(row, col);
  bool effective = v;
  auto it = by_victim_.find(cell_index(row, col));
  if (it != by_victim_.end()) {
    for (std::size_t id : it->second) {
      const Fault& f = faults_[id];
      switch (f.kind) {
        case FaultKind::StuckAt0: effective = false; break;
        case FaultKind::StuckAt1: effective = true; break;
        case FaultKind::TransitionUp:
          if (!old_v && v) effective = old_v;  // cannot rise
          break;
        case FaultKind::TransitionDown:
          if (old_v && !v) effective = old_v;  // cannot fall
          break;
        default:
          break;
      }
    }
  }
  set_bit(row, col, effective);
  const bool new_v = effective;
  if (new_v == old_v && v == old_v) return;
  auto ag = by_aggressor_.find(cell_index(row, col));
  if (ag == by_aggressor_.end()) return;
  for (std::size_t id : ag->second) {
    const Fault& f = faults_[id];
    switch (f.kind) {
      case FaultKind::CouplingIdem:
        if (old_v != new_v && new_v == f.dir_rising)
          set_bit(f.victim.row, f.victim.col, f.value);
        break;
      case FaultKind::CouplingInv:
        if (old_v != new_v && new_v == f.dir_rising)
          set_bit(f.victim.row, f.victim.col,
                  !get_bit(f.victim.row, f.victim.col));
        break;
      default:
        // CouplingState is a static condition evaluated at victim read
        // time, exactly as in FaultyArray.
        break;
    }
  }
}

bool PackedRam::read_cell(int row, int col) {
  bool value = get_bit(row, col);
  auto it = by_victim_.find(cell_index(row, col));
  if (it != by_victim_.end()) {
    for (std::size_t id : it->second) {
      const Fault& f = faults_[id];
      switch (f.kind) {
        case FaultKind::StuckAt0: value = false; break;
        case FaultKind::StuckAt1: value = true; break;
        case FaultKind::CouplingState:
          if (get_bit(f.aggressor.row, f.aggressor.col) == f.value) {
            set_bit(row, col, f.value2);
            value = f.value2;
          }
          break;
        default:
          break;
      }
    }
  }
  return value;
}

void PackedRam::write_word_exact(std::uint32_t addr, int ones,
                                 bool complemented) {
  if (repair_enabled_) {
    if (const auto spare = tlb_.lookup(addr)) {
      for (int bit = 0; bit < geo_.bpw; ++bit) {
        const CellAddr c = geo_.spare_cell_of(*spare, bit);
        write_cell(c.row, c.col, (bit < ones) != complemented);
      }
      return;
    }
  }
  for (int bit = 0; bit < geo_.bpw; ++bit) {
    const CellAddr c = geo_.cell_of(addr, bit);
    write_cell(c.row, c.col, (bit < ones) != complemented);
  }
}

bool PackedRam::read_word_matches(std::uint32_t addr, int ones,
                                  bool complemented) {
  bool ok = true;
  if (repair_enabled_) {
    if (const auto spare = tlb_.lookup(addr)) {
      for (int bit = 0; bit < geo_.bpw; ++bit) {
        const CellAddr c = geo_.spare_cell_of(*spare, bit);
        // Read every bit even after the first mismatch: reads carry side
        // effects (CouplingState rewrites the stored victim value).
        if (read_cell(c.row, c.col) != ((bit < ones) != complemented))
          ok = false;
      }
      return ok;
    }
  }
  for (int bit = 0; bit < geo_.bpw; ++bit) {
    const CellAddr c = geo_.cell_of(addr, bit);
    if (read_cell(c.row, c.col) != ((bit < ones) != complemented)) ok = false;
  }
  return ok;
}

PackedBistEngine::PackedBistEngine(PackedRam& ram, BistConfig config)
    : ram_(ram), config_(config) {
  require(config_.test != nullptr, "PackedBistEngine: null march test");
  require(config_.max_passes >= 2,
          "PackedBistEngine: needs at least two passes");
}

std::optional<bool> PackedBistEngine::run_pass(int pass, BistResult& result) {
  const march::MarchTest& test = *config_.test;
  const RamGeometry& geo = ram_.geometry();

  ram_.set_repair_enabled(pass >= 2);

  bool clean = true;
  int ones = 0;  // Johnson fill count (DataGen::reset)
  const int backgrounds = config_.johnson_backgrounds ? geo.bpw + 1 : 1;
  for (int bg = 0; bg < backgrounds; ++bg) {
    for (const auto& element : test.elements()) {
      // Delay elements only matter to Retention faults, which never run
      // on this kernel; the scalar engine's clock advance is a no-op
      // here (and costs no cycles there either).
      if (element.is_delay) continue;

      // Bulk cells, op-major: one masked splat/compare per plane word.
      // The cycle counter covers the *whole* sweep (special addresses
      // included) because the scalar engine counts one cycle per op per
      // address regardless of where the word lives.
      for (march::Op op : element.ops) {
        result.cycles += geo.words;
        const bool v = march::op_value(op);
        if (!march::is_read(op)) {
          ram_.kernel_write(ones, v);
        } else if (!ram_.kernel_read_clean(ones, v)) {
          return std::nullopt;  // bulk invariant broke: rerun scalar
        }
      }

      // Special addresses, address-major in sweep order — the order the
      // scalar engine encounters mismatches in, which fixes the TLB's
      // strictly increasing spare assignment. Bulk/special interleaving
      // is irrelevant: the two touch disjoint cells and only specials
      // record into the TLB.
      const auto& specials = ram_.special_addresses();
      const std::size_t n = specials.size();
      const bool up = march::ascending(element.order);
      for (std::size_t s = 0; s < n; ++s) {
        const std::uint32_t addr = specials[up ? s : n - 1 - s];
        for (march::Op op : element.ops) {
          const bool v = march::op_value(op);
          if (!march::is_read(op)) {
            ram_.write_word_exact(addr, ones, v);
            continue;
          }
          if (ram_.read_word_matches(addr, ones, v)) continue;
          clean = false;
          // Same recording rule as BistEngine::run_pass: every
          // mismatching read records; pass 1 dedups via the CAM compare,
          // pass >= 2 forces a fresh entry (the mapped spare proved bad).
          const auto spare = ram_.tlb().record(addr, /*force_new=*/pass >= 2);
          if (!spare) result.tlb_overflow = true;
        }
      }
    }
    if (config_.johnson_backgrounds && ones < geo.bpw) ++ones;
  }
  return clean;
}

std::optional<BistResult> PackedBistEngine::run() {
  BistResult result;
  for (int pass = 1; pass <= config_.max_passes; ++pass) {
    const std::optional<bool> clean = run_pass(pass, result);
    if (!clean) return std::nullopt;
    ++result.passes_run;
    if (pass == 1) result.pass1_clean = *clean;
    result.spares_used = ram_.tlb().used();

    if (*clean) {
      result.repair_successful = true;
      break;
    }
    if (result.tlb_overflow) break;
  }
  ram_.set_repair_enabled(true);
  return result;
}

BistResult run_bist(const RamGeometry& geo, const std::vector<Fault>& faults,
                    const BistConfig& config, SimKernel kernel,
                    SimKernel* kernel_used) {
  const bool expressible = packed_supported(faults);
  if (kernel == SimKernel::Packed)
    require(expressible,
            "run_bist: fault list contains kinds the packed kernel cannot "
            "express as overlays (StuckOpen/Retention) — use Auto or Scalar");
  if (kernel != SimKernel::Scalar && expressible) {
    PackedRam ram(geo, faults);
    if (const auto result = PackedBistEngine(ram, config).run()) {
      if (kernel_used) *kernel_used = SimKernel::Packed;
      return *result;
    }
  }
  RamModel ram(geo);
  for (const Fault& f : faults) ram.array().inject(f);
  if (kernel_used) *kernel_used = SimKernel::Scalar;
  return BistEngine(ram, config).run();
}

namespace {

/// The lockstep core of run_bist_batch: mirrors PackedBistEngine pass
/// for pass, but advances every live die through each march op before
/// moving on, so the bulk kernels stream all dies' plane segments back
/// to back. Per-die ordering is untouched (dies are independent), which
/// is why each die's outcome is bit-identical to its single-die run.
class BatchBistEngine {
 public:
  BatchBistEngine(std::vector<PackedRam>& dies, const BistConfig& config)
      : dies_(dies), config_(config) {
    require(config_.test != nullptr, "BatchBistEngine: null march test");
    require(config_.max_passes >= 2,
            "BatchBistEngine: needs at least two passes");
    results_.resize(dies_.size());
    done_.assign(dies_.size(), 0);
    aborted_.assign(dies_.size(), 0);
  }

  /// Runs the flow; aborted()[i] marks dies that must rerun scalar.
  void run() {
    for (int pass = 1; pass <= config_.max_passes; ++pass) {
      if (!live_dies()) break;
      run_pass(pass);
      for (std::size_t i = 0; i < dies_.size(); ++i) {
        if (done_[i] || aborted_[i]) continue;
        BistResult& r = results_[i];
        ++r.passes_run;
        if (pass == 1) r.pass1_clean = clean_[i] != 0;
        r.spares_used = dies_[i].tlb().used();
        if (clean_[i]) {
          r.repair_successful = true;
          done_[i] = 1;
        } else if (r.tlb_overflow) {
          done_[i] = 1;
        }
      }
    }
    for (PackedRam& die : dies_) die.set_repair_enabled(true);
  }

  const std::vector<BistResult>& results() const { return results_; }
  const std::vector<std::uint8_t>& aborted() const { return aborted_; }

 private:
  bool live_dies() const {
    for (std::size_t i = 0; i < dies_.size(); ++i)
      if (!done_[i] && !aborted_[i]) return true;
    return false;
  }

  void run_pass(int pass) {
    const march::MarchTest& test = *config_.test;
    const RamGeometry& geo = dies_.front().geometry();
    clean_.assign(dies_.size(), 1);
    for (std::size_t i = 0; i < dies_.size(); ++i)
      if (!done_[i] && !aborted_[i]) dies_[i].set_repair_enabled(pass >= 2);

    int ones = 0;
    const int backgrounds = config_.johnson_backgrounds ? geo.bpw + 1 : 1;
    for (int bg = 0; bg < backgrounds; ++bg) {
      for (const auto& element : test.elements()) {
        if (element.is_delay) continue;

        // Bulk cells, op-major across the whole batch: every live die's
        // masked splat/compare for this op runs before the next op.
        for (march::Op op : element.ops) {
          const bool v = march::op_value(op);
          for (std::size_t i = 0; i < dies_.size(); ++i) {
            if (done_[i] || aborted_[i]) continue;
            results_[i].cycles += geo.words;
            if (!march::is_read(op)) {
              dies_[i].kernel_write(ones, v);
            } else if (!dies_[i].kernel_read_clean(ones, v)) {
              aborted_[i] = 1;  // bulk invariant broke: rerun scalar
            }
          }
        }

        // Special addresses, die-major: each die's cell-exact sweep in
        // the exact order of the single-die engine.
        for (std::size_t i = 0; i < dies_.size(); ++i) {
          if (done_[i] || aborted_[i]) continue;
          PackedRam& die = dies_[i];
          const auto& specials = die.special_addresses();
          const std::size_t n = specials.size();
          const bool up = march::ascending(element.order);
          for (std::size_t s = 0; s < n; ++s) {
            const std::uint32_t addr = specials[up ? s : n - 1 - s];
            for (march::Op op : element.ops) {
              const bool v = march::op_value(op);
              if (!march::is_read(op)) {
                die.write_word_exact(addr, ones, v);
                continue;
              }
              if (die.read_word_matches(addr, ones, v)) continue;
              clean_[i] = 0;
              const auto spare =
                  die.tlb().record(addr, /*force_new=*/pass >= 2);
              if (!spare) results_[i].tlb_overflow = true;
            }
          }
        }
      }
      if (config_.johnson_backgrounds && ones < geo.bpw) ++ones;
    }
  }

  std::vector<PackedRam>& dies_;
  BistConfig config_;
  std::vector<BistResult> results_;
  std::vector<std::uint8_t> done_, aborted_;
  std::vector<std::uint8_t> clean_;
};

}  // namespace

std::vector<BistResult> run_bist_batch(
    const RamGeometry& geo, const std::vector<std::vector<Fault>>& fault_lists,
    const BistConfig& config, SimKernel kernel,
    std::vector<SimKernel>* kernels_used) {
  std::vector<BistResult> results(fault_lists.size());
  std::vector<SimKernel> used(fault_lists.size(), SimKernel::Scalar);
  if (fault_lists.empty()) {
    if (kernels_used) kernels_used->clear();
    return results;
  }

  // Partition the batch: overlay-expressible dies run lockstep on the
  // bit-plane engine, the rest go straight to the scalar model.
  std::vector<std::size_t> batched;
  for (std::size_t i = 0; i < fault_lists.size(); ++i) {
    const bool expressible = packed_supported(fault_lists[i]);
    if (kernel == SimKernel::Packed)
      require(expressible,
              "run_bist_batch: fault list contains kinds the packed kernel "
              "cannot express as overlays (StuckOpen/Retention) — use Auto "
              "or Scalar");
    if (kernel != SimKernel::Scalar && expressible) batched.push_back(i);
  }

  if (!batched.empty()) {
    const PackedPatternTable patterns(geo);
    std::vector<PackedRam> dies;
    dies.reserve(batched.size());
    for (std::size_t i : batched)
      dies.emplace_back(geo, fault_lists[i], &patterns);
    BatchBistEngine engine(dies, config);
    engine.run();
    for (std::size_t b = 0; b < batched.size(); ++b) {
      if (engine.aborted()[b]) continue;  // falls through to the scalar rerun
      results[batched[b]] = engine.results()[b];
      used[batched[b]] = SimKernel::Packed;
    }
  }

  for (std::size_t i = 0; i < fault_lists.size(); ++i) {
    if (used[i] == SimKernel::Packed) continue;
    RamModel ram(geo);
    for (const Fault& f : fault_lists[i]) ram.array().inject(f);
    results[i] = BistEngine(ram, config).run();
  }
  if (kernels_used) *kernels_used = std::move(used);
  return results;
}

}  // namespace bisram::sim
