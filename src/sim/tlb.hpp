#pragma once
// The BISR translation lookaside buffer.
//
// The paper's key repair structure: faulty word addresses found by BIST
// are associated with a unique, predetermined, strictly increasing
// sequence of redundant (spare-word) addresses. During normal operation
// the incoming address is compared *in parallel* with every stored
// address; a match diverts the access to the assigned spare word. The
// strictly increasing assignment guarantees that, given enough spares,
// any faulty row — spare or non-spare — can be replaced under the
// 2k-pass scheme (a faulty spare's address simply earns a newer entry
// mapping it to the next spare).
//
// Because the TLB itself occupies silicon, it can also be *defective*:
// the inject_* hooks model stuck-at defects in the CAM slots (entry
// bits, valid flip-flops, match lines) so the infra-fault campaigns
// (sim/infra_faults.hpp) can ask whether a broken repair engine fails
// safe or silently escapes. With no injected faults the lookup/record
// paths are bit-for-bit the original fault-free logic.

#include <cstdint>
#include <optional>
#include <vector>

namespace bisram::sim {

class Tlb {
 public:
  /// `capacity` is the number of spare words (spare_rows * bpc).
  explicit Tlb(int capacity);

  int capacity() const { return capacity_; }
  int used() const { return static_cast<int>(entries_.size()); }
  bool full() const { return used() >= capacity_; }

  /// Parallel compare: spare index assigned to `addr`, if mapped.
  /// When an address has been remapped (faulty spare), the newest entry
  /// wins — exactly what a priority encoder over entry age gives.
  std::optional<int> lookup(std::uint32_t addr) const;

  /// Records `addr`, assigning the next spare in the strictly increasing
  /// sequence. When the address is already mapped and `force_new` is
  /// false (pass-1 dedup) the existing spare is returned; with
  /// `force_new` (pass >= 2: the mapped spare itself proved faulty) a new
  /// entry supersedes the old one. Returns nullopt when out of spares.
  std::optional<int> record(std::uint32_t addr, bool force_new = false);

  /// Forgets all recorded entries (injected hardware faults persist —
  /// clearing the CAM does not heal silicon).
  void clear();

  struct Entry {
    std::uint32_t addr;
    int spare;
  };
  const std::vector<Entry>& entries() const { return entries_; }

  // --- infrastructure fault hooks (sim/infra_faults.hpp) -------------------
  // Physical slot s holds the s-th recorded entry and maps to spare s
  // (the strictly increasing assignment), so slot indices address the
  // hardware directly.

  /// Address bit `bit` of slot `slot`'s CAM word reads as `value` forever.
  void inject_entry_bit_stuck(int slot, int bit, bool value);
  /// Slot `slot`'s valid flip-flop is stuck: stuck-at-0 makes the entry
  /// invisible to the comparators (a recorded repair is silently lost);
  /// stuck-at-1 makes the slot match its powered-up CAM contents
  /// (modelled as address 0) before anything was recorded there.
  void inject_valid_stuck(int slot, bool value);
  /// Slot `slot`'s match line is stuck: stuck-at-1 diverts *every*
  /// access to that spare; stuck-at-0 never diverts.
  void inject_match_stuck(int slot, bool value);

  bool has_infra_faults() const { return !slot_faults_.empty(); }

 private:
  struct SlotFault {
    enum class Site : std::uint8_t { EntryBit, Valid, Match };
    Site site;
    int slot;
    int bit;     // EntryBit only
    bool value;  // stuck-at value
  };

  /// Slot-descending (newest-wins) CAM scan honouring injected faults.
  std::optional<int> faulted_lookup(std::uint32_t addr) const;
  void add_fault(SlotFault f);

  int capacity_;
  std::vector<Entry> entries_;
  std::vector<SlotFault> slot_faults_;
};

}  // namespace bisram::sim
