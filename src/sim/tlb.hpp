#pragma once
// The BISR translation lookaside buffer.
//
// The paper's key repair structure: faulty word addresses found by BIST
// are associated with a unique, predetermined, strictly increasing
// sequence of redundant (spare-word) addresses. During normal operation
// the incoming address is compared *in parallel* with every stored
// address; a match diverts the access to the assigned spare word. The
// strictly increasing assignment guarantees that, given enough spares,
// any faulty row — spare or non-spare — can be replaced under the
// 2k-pass scheme (a faulty spare's address simply earns a newer entry
// mapping it to the next spare).

#include <cstdint>
#include <optional>
#include <vector>

namespace bisram::sim {

class Tlb {
 public:
  /// `capacity` is the number of spare words (spare_rows * bpc).
  explicit Tlb(int capacity);

  int capacity() const { return capacity_; }
  int used() const { return static_cast<int>(entries_.size()); }
  bool full() const { return used() >= capacity_; }

  /// Parallel compare: spare index assigned to `addr`, if mapped.
  /// When an address has been remapped (faulty spare), the newest entry
  /// wins — exactly what a priority encoder over entry age gives.
  std::optional<int> lookup(std::uint32_t addr) const;

  /// Records `addr`, assigning the next spare in the strictly increasing
  /// sequence. When the address is already mapped and `force_new` is
  /// false (pass-1 dedup) the existing spare is returned; with
  /// `force_new` (pass >= 2: the mapped spare itself proved faulty) a new
  /// entry supersedes the old one. Returns nullopt when out of spares.
  std::optional<int> record(std::uint32_t addr, bool force_new = false);

  void clear();

  struct Entry {
    std::uint32_t addr;
    int spare;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  int capacity_;
  std::vector<Entry> entries_;
};

}  // namespace bisram::sim
