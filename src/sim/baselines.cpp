#include "sim/baselines.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace bisram::sim {

namespace {
std::vector<std::uint32_t> distinct(std::vector<std::uint32_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}
}  // namespace

RepairAnalysis bisramgen_repair(const RamGeometry& geo,
                                const std::vector<std::uint32_t>& faulty_words,
                                const std::vector<int>& faulty_spares) {
  const auto faults = distinct(faulty_words);
  RepairAnalysis r;
  r.repairs_used = static_cast<int>(faults.size());
  if (r.repairs_used > geo.spare_words()) return r;  // not repairable
  // Strict "goodness": the spares consumed by the strictly increasing
  // sequence must themselves be fault-free. (The 2k-pass extension can
  // tolerate faulty spares if enough remain; that stricter-capability
  // variant is exercised in the BIST engine itself.)
  for (int spare : faulty_spares) {
    if (spare < r.repairs_used) return r;
  }
  r.repairable = true;
  return r;
}

RepairAnalysis sawada_repair(const std::vector<std::uint32_t>& faulty_words,
                             bool spare_good) {
  const auto faults = distinct(faulty_words);
  RepairAnalysis r;
  r.repairs_used = static_cast<int>(faults.size());
  r.repairable = faults.size() <= 1 && (faults.empty() || spare_good);
  return r;
}

RepairAnalysis chen_sunada_repair(const RamGeometry& geo,
                                  const std::vector<std::uint32_t>& faulty_words,
                                  int subblocks, int captures_per_block,
                                  int spare_blocks) {
  require(subblocks >= 1, "chen_sunada_repair: need >= 1 subblock");
  require(geo.words % static_cast<std::uint32_t>(subblocks) == 0,
          "chen_sunada_repair: words must divide into subblocks");
  const std::uint32_t block_words = geo.words / static_cast<std::uint32_t>(subblocks);

  std::vector<int> per_block(static_cast<std::size_t>(subblocks), 0);
  for (std::uint32_t addr : distinct(faulty_words))
    per_block[addr / block_words]++;

  RepairAnalysis r;
  for (int count : per_block) {
    if (count == 0) continue;
    if (count <= captures_per_block) {
      r.repairs_used += count;
    } else {
      r.dead_subblocks++;  // beyond local repair; needs the fault assembler
    }
  }
  r.repairable = r.dead_subblocks <= spare_blocks;
  return r;
}

double parallel_compare_delay_s(int entries, double tau_s) {
  require(entries >= 1, "parallel_compare_delay_s: need >= 1 entry");
  // CAM match in parallel (1 tau), wired-OR/priority encode over entries
  // (log2 tree), output mux (1 tau).
  int levels = 0;
  for (int n = 1; n < entries; n *= 2) ++levels;
  return tau_s * (2.0 + levels);
}

double sequential_compare_delay_s(int entries, double tau_s) {
  require(entries >= 1, "sequential_compare_delay_s: need >= 1 entry");
  // Compare registers one after another: compare (1 tau) + select per
  // entry, plus the final mux.
  return tau_s * (2.0 * entries + 1.0);
}

SchemeComparison compare_schemes(const RamGeometry& geo, int defects,
                                 int trials, std::uint64_t seed,
                                 int cs_subblocks, int cs_spare_blocks,
                                 double spare_fault_prob) {
  require(trials >= 1, "compare_schemes: need >= 1 trial");
  struct Counts {
    int bisramgen = 0, chen_sunada = 0, sawada = 0;
  };
  const Counts counts = parallel_reduce<Counts>(
      trials, /*chunk=*/16, Counts{},
      [&](std::int64_t t) {
        Rng rng(stream_seed(seed, static_cast<std::uint64_t>(t)));
        std::vector<std::uint32_t> faulty;
        for (int d = 0; d < defects; ++d)
          faulty.push_back(static_cast<std::uint32_t>(rng.below(geo.words)));
        std::vector<int> faulty_spares;
        for (int s = 0; s < geo.spare_words(); ++s)
          if (rng.chance(spare_fault_prob)) faulty_spares.push_back(s);

        Counts c;
        if (bisramgen_repair(geo, faulty, faulty_spares).repairable)
          c.bisramgen = 1;
        if (chen_sunada_repair(geo, faulty, cs_subblocks, 2, cs_spare_blocks)
                .repairable)
          c.chen_sunada = 1;
        if (sawada_repair(faulty, faulty_spares.empty()).repairable)
          c.sawada = 1;
        return c;
      },
      [](Counts a, Counts b) {
        return Counts{a.bisramgen + b.bisramgen,
                      a.chen_sunada + b.chen_sunada, a.sawada + b.sawada};
      });
  SchemeComparison out;
  out.bisramgen = static_cast<double>(counts.bisramgen) / trials;
  out.chen_sunada = static_cast<double>(counts.chen_sunada) / trials;
  out.sawada = static_cast<double>(counts.sawada) / trials;
  return out;
}

}  // namespace bisram::sim
