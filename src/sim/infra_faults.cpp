#include "sim/infra_faults.hpp"

#include <algorithm>

#include "sim/controller.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"

namespace bisram::sim {

const char* infra_fault_name(InfraFaultKind kind) {
  switch (kind) {
    case InfraFaultKind::TlbEntryBitStuck: return "TLB-entry-SA";
    case InfraFaultKind::TlbValidStuck: return "TLB-valid-SA";
    case InfraFaultKind::TlbMatchStuck: return "TLB-match-SA";
    case InfraFaultKind::AddgenBitStuck: return "ADDGEN-SA";
    case InfraFaultKind::DatagenBitStuck: return "DATAGEN-SA";
    case InfraFaultKind::StregBitStuck: return "STREG-SA";
    case InfraFaultKind::PlaCrosspointMissing: return "PLA-xpt-missing";
    case InfraFaultKind::PlaCrosspointExtra: return "PLA-xpt-extra";
  }
  return "?";
}

const char* infra_outcome_name(InfraOutcome outcome) {
  switch (outcome) {
    case InfraOutcome::Benign: return "benign";
    case InfraOutcome::SafeFail: return "safe-fail";
    case InfraOutcome::Escape: return "escape";
    case InfraOutcome::Hung: return "hung";
  }
  return "?";
}

microcode::PlaPersonality apply_pla_fault(const microcode::PlaPersonality& pla,
                                          const InfraFault& fault) {
  require(fault.kind == InfraFaultKind::PlaCrosspointMissing ||
              fault.kind == InfraFaultKind::PlaCrosspointExtra,
          "apply_pla_fault: not a PLA fault");
  require(fault.index >= 0 && fault.index < pla.terms(),
          "apply_pla_fault: term out of range");
  const int width = fault.and_plane ? pla.inputs() : pla.outputs();
  require(fault.bit >= 0 && fault.bit < width,
          "apply_pla_fault: plane column out of range");

  microcode::PlaPersonality out(pla.inputs(), pla.outputs());
  for (int t = 0; t < pla.terms(); ++t) {
    auto term = pla.product_terms()[static_cast<std::size_t>(t)];
    if (t == fault.index) {
      const std::size_t col = static_cast<std::size_t>(fault.bit);
      if (fault.and_plane) {
        char& c = term.and_row[col];
        if (fault.kind == InfraFaultKind::PlaCrosspointMissing) {
          c = '-';  // literal transistor gone: the term ignores this input
        } else {
          const char lit = fault.value ? '1' : '0';
          if (c == '-') {
            c = lit;
          } else if (c != lit) {
            // Both the true and the complement transistor now pull the
            // term line down whatever the input: the term never fires.
            continue;
          }
        }
      } else {
        char& c = term.or_row[col];
        c = fault.kind == InfraFaultKind::PlaCrosspointMissing ? '0' : '1';
      }
    }
    out.add_term(term.and_row, term.or_row);
  }
  return out;
}

std::vector<InfraFault> enumerate_pla_crosspoint_faults(
    const microcode::PlaPersonality& pla) {
  std::vector<InfraFault> faults;
  auto push = [&](InfraFaultKind kind, int term, bool and_plane, int col,
                  bool value) {
    InfraFault f;
    f.kind = kind;
    f.index = term;
    f.bit = col;
    f.value = value;
    f.and_plane = and_plane;
    faults.push_back(f);
  };
  for (int t = 0; t < pla.terms(); ++t) {
    const auto& term = pla.product_terms()[static_cast<std::size_t>(t)];
    for (int i = 0; i < pla.inputs(); ++i) {
      const char c = term.and_row[static_cast<std::size_t>(i)];
      if (c == '-') {
        push(InfraFaultKind::PlaCrosspointExtra, t, true, i, false);
        push(InfraFaultKind::PlaCrosspointExtra, t, true, i, true);
      } else {
        push(InfraFaultKind::PlaCrosspointMissing, t, true, i, false);
        // The complementary transistor landing next to an existing
        // literal grounds the term line for every input.
        push(InfraFaultKind::PlaCrosspointExtra, t, true, i, c != '1');
      }
    }
    for (int j = 0; j < pla.outputs(); ++j) {
      const bool programmed = term.or_row[static_cast<std::size_t>(j)] == '1';
      push(programmed ? InfraFaultKind::PlaCrosspointMissing
                      : InfraFaultKind::PlaCrosspointExtra,
           t, false, j, false);
    }
  }
  return faults;
}

InfraFault random_infra_fault(const RamGeometry& geo,
                              const microcode::AssembledController& ctrl,
                              Rng& rng) {
  const int addr_bits = std::max(1, log2_ceil(geo.words));
  const int slots = std::max(1, geo.spare_words());
  InfraFault f;
  f.kind = static_cast<InfraFaultKind>(
      rng.below(static_cast<std::uint64_t>(kInfraFaultKindCount)));
  f.value = rng.chance(0.5);
  switch (f.kind) {
    case InfraFaultKind::TlbEntryBitStuck:
      f.index = static_cast<int>(rng.below(static_cast<std::uint64_t>(slots)));
      f.bit =
          static_cast<int>(rng.below(static_cast<std::uint64_t>(addr_bits)));
      break;
    case InfraFaultKind::TlbValidStuck:
    case InfraFaultKind::TlbMatchStuck:
      f.index = static_cast<int>(rng.below(static_cast<std::uint64_t>(slots)));
      break;
    case InfraFaultKind::AddgenBitStuck:
      f.bit =
          static_cast<int>(rng.below(static_cast<std::uint64_t>(addr_bits)));
      break;
    case InfraFaultKind::DatagenBitStuck:
      f.bit = static_cast<int>(rng.below(static_cast<std::uint64_t>(geo.bpw)));
      break;
    case InfraFaultKind::StregBitStuck:
      f.bit = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(ctrl.state_bits)));
      break;
    case InfraFaultKind::PlaCrosspointMissing:
    case InfraFaultKind::PlaCrosspointExtra: {
      f.index = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(ctrl.pla.terms())));
      const auto& term =
          ctrl.pla.product_terms()[static_cast<std::size_t>(f.index)];
      const bool missing = f.kind == InfraFaultKind::PlaCrosspointMissing;
      // Candidate sites: for a missing crosspoint, cells holding a
      // transistor; for an extra one, cells without. (and_plane, column).
      std::vector<std::pair<bool, int>> sites;
      for (int i = 0; i < ctrl.pla.inputs(); ++i)
        if ((term.and_row[static_cast<std::size_t>(i)] != '-') == missing)
          sites.emplace_back(true, i);
      for (int j = 0; j < ctrl.pla.outputs(); ++j)
        if ((term.or_row[static_cast<std::size_t>(j)] == '1') == missing)
          sites.emplace_back(false, j);
      if (sites.empty()) {
        // A term with every cell populated (or none free): degrade to
        // the opposite polarity, which always has candidates — the AND
        // row holds at least the state-bit literals.
        f.kind = missing ? InfraFaultKind::PlaCrosspointExtra
                         : InfraFaultKind::PlaCrosspointMissing;
        return f.kind == InfraFaultKind::PlaCrosspointMissing
                   ? random_infra_fault(geo, ctrl, rng)
                   : f;
      }
      const auto& site =
          sites[rng.below(static_cast<std::uint64_t>(sites.size()))];
      f.and_plane = site.first;
      f.bit = site.second;
      break;
    }
  }
  return f;
}

bool normal_mode_readback_clean(RamModel& ram) {
  const RamGeometry& geo = ram.geometry();
  ram.set_repair_enabled(true);  // normal mode uses the TLB diversion
  // Solid and address-dependent checkerboard sweeps (plus complements):
  // solid patterns expose stuck storage, the address-dependent ones
  // expose aliasing — e.g. a stuck match line sending many addresses to
  // one spare survives a solid sweep but not this one.
  auto expect = [&](std::uint32_t addr, int bit, int phase) {
    switch (phase) {
      case 0: return false;
      case 1: return true;
      case 2: return ((addr + static_cast<std::uint32_t>(bit)) & 1u) != 0;
      default: return ((addr + static_cast<std::uint32_t>(bit)) & 1u) == 0;
    }
  };
  Word w(static_cast<std::size_t>(geo.bpw));
  Word got;  // reused across the sweep: no per-read allocation
  for (int phase = 0; phase < 4; ++phase) {
    for (std::uint32_t a = 0; a < geo.words; ++a) {
      for (int bit = 0; bit < geo.bpw; ++bit)
        w[static_cast<std::size_t>(bit)] = expect(a, bit, phase);
      ram.write_word(a, w);
    }
    for (std::uint32_t a = 0; a < geo.words; ++a) {
      ram.read_word_into(a, got);
      for (int bit = 0; bit < geo.bpw; ++bit)
        if (got[static_cast<std::size_t>(bit)] != expect(a, bit, phase))
          return false;
    }
  }
  return true;
}

std::uint64_t auto_watchdog_cycles(const RamGeometry& geo,
                                   const microcode::AssembledController& ctrl,
                                   const InfraTrialConfig& config) {
  // A clean run is one full pass; a legitimate repair run is bounded by
  // max_passes of them. 4x(max_passes + 1) clean-runs of headroom plus a
  // constant floor keeps every honest flow far from the trip point while
  // a runaway controller (which re-marches forever) trips in bounded time.
  RamModel clean(geo);
  PlaBistMachine machine(clean, ctrl, config.bist.retention_wait_s,
                         config.bist.johnson_backgrounds);
  machine.run();
  return machine.controller_cycles() * 4ull *
             (static_cast<std::uint64_t>(config.bist.max_passes) + 1) +
         4096;
}

InfraTrial run_infra_trial(const RamGeometry& geo,
                           const microcode::AssembledController& ctrl,
                           const InfraFault& fault,
                           const std::vector<Fault>& array_faults,
                           const InfraTrialConfig& config) {
  std::uint64_t watchdog = config.watchdog_cycles;
  if (watchdog == 0) watchdog = auto_watchdog_cycles(geo, ctrl, config);

  RamModel ram(geo);
  for (const Fault& f : array_faults) ram.array().inject(f);
  PlaBistMachine machine(ram, ctrl, config.bist.retention_wait_s,
                         config.bist.johnson_backgrounds);
  machine.inject(fault);

  InfraTrial trial;
  trial.bist = machine.run(watchdog);
  if (trial.bist.hung)
    trial.outcome = InfraOutcome::Hung;
  else if (!trial.bist.repair_successful)
    trial.outcome = InfraOutcome::SafeFail;
  else
    trial.outcome = normal_mode_readback_clean(ram) ? InfraOutcome::Benign
                                                    : InfraOutcome::Escape;
  return trial;
}

std::int64_t InfraCampaignReport::total(InfraOutcome outcome) const {
  std::int64_t sum = 0;
  for (const auto& per_kind : counts)
    sum += per_kind[static_cast<std::size_t>(outcome)];
  return sum;
}

double InfraCampaignReport::rate(InfraOutcome outcome) const {
  return trials == 0
             ? 0.0
             : static_cast<double>(total(outcome)) /
                   static_cast<double>(trials);
}

CampaignResult<InfraCampaignReport> infra_fault_campaign(
    const RamGeometry& geo, const InfraTrialConfig& config,
    const CampaignSpec& spec) {
  require(spec.kernel != SimKernel::Packed,
          "infra_fault_campaign: infrastructure faults live in the "
          "TLB/controller machinery, which the packed kernel cannot express "
          "as overlays; use kernel=auto or kernel=scalar");
  require(config.bist.test != nullptr, "infra_fault_campaign: null march");
  require(config.array_faults >= 0,
          "infra_fault_campaign: negative array fault count");
  geo.validate();
  require(geo.spare_words() >= 1,
          "infra_fault_campaign: geometry needs >= 1 spare word");

  const auto ctrl =
      microcode::build_trpla(*config.bist.test, config.bist.max_passes);
  InfraTrialConfig cfg = config;
  if (cfg.watchdog_cycles == 0)
    cfg.watchdog_cycles = auto_watchdog_cycles(geo, ctrl, config);

  CampaignResult<InfraCampaignReport> out;
  out.value = run_campaign<InfraCampaignReport>(
      spec, /*chunk=*/4, InfraCampaignReport{},
      [&](Rng& rng, std::int64_t, KernelTally& tally) {
        tally.note(SimKernel::Scalar);
        const InfraFault fault = random_infra_fault(geo, ctrl, rng);
        std::vector<Fault> cell_faults;
        cell_faults.reserve(static_cast<std::size_t>(cfg.array_faults));
        for (int j = 0; j < cfg.array_faults; ++j) {
          Fault f;
          f.kind = rng.chance(0.5) ? FaultKind::StuckAt0 : FaultKind::StuckAt1;
          f.victim = {static_cast<int>(rng.below(
                          static_cast<std::uint64_t>(geo.total_rows()))),
                      static_cast<int>(rng.below(
                          static_cast<std::uint64_t>(geo.cols())))};
          cell_faults.push_back(f);
        }
        const InfraTrial trial =
            run_infra_trial(geo, ctrl, fault, cell_faults, cfg);
        InfraCampaignReport r;
        r.counts[static_cast<std::size_t>(fault.kind)]
                [static_cast<std::size_t>(trial.outcome)] = 1;
        r.trials = 1;
        return r;
      },
      [](InfraCampaignReport a, const InfraCampaignReport& b) {
        for (std::size_t k = 0; k < a.counts.size(); ++k)
          for (std::size_t o = 0; o < a.counts[k].size(); ++o)
            a.counts[k][o] += b.counts[k][o];
        a.trials += b.trials;
        return a;
      },
      &out.provenance);
  return out;
}

}  // namespace bisram::sim
