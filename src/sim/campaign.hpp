#pragma once
// The unified Monte-Carlo campaign API.
//
// Every campaign in the repo (march fault coverage, BISR yield,
// reliability, infra-fault robustness) used to carry its own ad-hoc
// (trials, seed[, threads]) parameter convention. This header gives them
// one front door:
//
//   * CampaignSpec — what to run: trial count, campaign seed, worker
//     threads (0 = the BISRAM_THREADS / hardware default) and the
//     simulation kernel (packed bit-plane, scalar reference, or auto
//     per-trial dispatch — see sim/packed_ram.hpp);
//   * CampaignProvenance — what actually ran: the resolved thread count
//     plus how the kernel dispatch split the trials, so a report is
//     reproducible from its own metadata;
//   * run_campaign — the deterministic parallel engine underneath
//     (util/parallel.hpp), handing each trial its own seed sub-stream.
//
// The determinism contract is inherited from parallel_reduce: for a
// fixed spec the result is bit-identical for any thread count, and the
// packed/scalar kernel choice is a pure function of the trial's drawn
// fault list — never of thread placement.

#include <cstdint>
#include <string>
#include <utility>

#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace bisram::sim {

/// Which simulation kernel a campaign's trials run on.
enum class SimKernel : std::uint8_t {
  Auto,    ///< per-trial: packed when the fault list is overlay-expressible
  Packed,  ///< force the bit-plane kernel (throws on inexpressible faults)
  Scalar,  ///< force the scalar reference model
};

/// "auto", "packed", "scalar".
const char* kernel_name(SimKernel kernel);

/// Inverse of kernel_name; throws SpecError on anything else.
SimKernel kernel_by_name(const std::string& name);

/// How a yield campaign samples the per-die defect count.
enum class SamplingMode : std::uint8_t {
  Plain,       ///< draw the count directly (the historical estimator)
  Stratified,  ///< stratified importance sampling over the defect count:
               ///< simulate each count stratum conditionally, reweight
               ///< with the exact negative-binomial probabilities, and
               ///< resolve the fault-free stratum analytically (see
               ///< sim/importance.hpp)
};

/// "plain" or "stratified".
const char* sampling_name(SamplingMode mode);

/// Inverse of sampling_name; throws SpecError on anything else.
SamplingMode sampling_by_name(const std::string& name);

/// Variance-reduction parameters for the yield campaigns. Both estimators
/// are unbiased for the same quantity (tests/test_yield_statistics.cpp
/// proves it statistically); Stratified buys its variance reduction by
/// never spending a die simulation on the zero-defect stratum.
struct SamplingSpec {
  SamplingMode mode = SamplingMode::Plain;
  /// Residual negative-binomial tail probability beyond the last
  /// simulated stratum. The tail is counted pessimistically (as
  /// unrepairable), bounding the estimator's deterministic bias by this
  /// mass — at the default it is far below double-precision visibility.
  double tail_mass = 1e-12;
  /// Trial floor per retained stratum, so rare strata still get a
  /// variance estimate.
  int min_stratum_trials = 2;
};

/// Checkpoint/resume parameters for the campaigns that support them
/// (models::wafer_yield_campaign, models::bisr_yield_mc_with_bist).
/// Checkpoints are written at deterministic fold boundaries, so a
/// resumed run is bit-identical to an uninterrupted one for every
/// cadence and thread count — see util/checkpoint.hpp for the file
/// format and tests/test_checkpoint_resume.cpp for the proof.
struct CheckpointSpec {
  std::string path;    ///< write checkpoints here ("" = checkpointing off)
  std::string resume;  ///< resume from this checkpoint ("" = fresh start)
  /// Trials per checkpoint segment (rounded up to a whole number of fold
  /// chunks; 0 = a campaign-chosen default). Purely a cadence knob: the
  /// final estimate is bit-identical for every value.
  std::int64_t interval = 0;
  /// Minimum wall-clock gap between checkpoint *writes* in ms (0 = write
  /// at every segment boundary). Time-gating which boundaries hit disk
  /// never affects the estimate, only the recovery granularity.
  double min_period_ms = 0;
  /// Cooperative pause: stop cleanly at the first segment boundary at or
  /// past this many trials processed *this run* (0 = never), write a
  /// checkpoint, and return with Termination::Cancelled. This is the
  /// deterministic "kill" a time-sliced service (and the resume test
  /// suite) uses: unlike an asynchronous CancelToken, the stop lands on
  /// an exact fold boundary for every thread count.
  std::int64_t pause_after = 0;

  bool enabled() const { return !path.empty(); }
  bool resuming() const { return !resume.empty(); }
};

/// The one campaign parameter block every entry point shares.
struct CampaignSpec {
  int trials = 1;            ///< Monte-Carlo trials (>= 1)
  std::uint64_t seed = 0;    ///< campaign seed (trial i uses sub-stream i)
  int threads = 0;           ///< worker threads; 0 = BISRAM_THREADS/default
  SimKernel kernel = SimKernel::Auto;
  /// Dies per SIMD batch for campaigns that support the batched
  /// bit-plane engine (sim/packed_ram.hpp's run_bist_batch). <= 1 runs
  /// the historical one-die-at-a-time path; results are bit-identical
  /// for every width (tests/test_simd_equivalence.cpp).
  int batch = 1;
  SamplingSpec sampling;  ///< defect-count sampling for yield campaigns
  /// Cooperative cancellation + deadline, polled at chunk boundaries
  /// (util/cancel.hpp). Null = never cancelled. A token that never fires
  /// perturbs nothing: the result stays bit-identical to a token-free
  /// run. When it fires, the campaign returns a *valid partial estimate*
  /// over the trials that completed, with its termination labelled.
  const CancelToken* cancel = nullptr;
  CheckpointSpec checkpoint;  ///< crash-safe checkpoint/resume (see above)
};

/// What actually ran — enough to reproduce and to audit the dispatch.
struct CampaignProvenance {
  std::uint64_t seed = 0;
  int threads = 0;  ///< resolved worker count the campaign executed with
  SimKernel kernel = SimKernel::Auto;  ///< the *requested* kernel
  std::int64_t trials = 0;
  std::int64_t packed_trials = 0;  ///< trials the bit-plane kernel ran
  std::int64_t scalar_trials = 0;  ///< trials the scalar model ran
  SamplingMode sampling = SamplingMode::Plain;  ///< the sampling mode run
  std::int64_t strata = 0;          ///< defect-count strata simulated (IS)
  int batch = 1;                    ///< requested SIMD die-batch width
  std::int64_t batched_trials = 0;  ///< trials run through the die batch
  /// Trials whose results are folded into the estimate. Equals `trials`
  /// on a completed run; smaller when a CancelToken or deadline stopped
  /// the campaign early (the estimate is still valid, normalized by this
  /// count). Includes trials restored from a resumed checkpoint.
  std::int64_t trials_done = 0;
  std::int64_t checkpoints_written = 0;  ///< checkpoint files published
};

/// A campaign's outcome plus the provenance needed to reproduce it. The
/// rewired campaign entry points (sim/fault_sim.hpp, models/yield.hpp,
/// models/reliability.hpp, sim/infra_faults.hpp) all return this shape.
template <typename T>
struct CampaignResult {
  T value{};
  CampaignProvenance provenance;
  /// How the campaign ended. Anything other than Completed/Resumed marks
  /// `value` as a partial (but statistically valid) estimate over
  /// provenance.trials_done trials.
  Termination termination = Termination::Completed;
};

/// The termination label for a campaign that processed `done` of
/// `requested` trials under `cancel` (null = no token), having started
/// from a resumed checkpoint or not. Cancellation wins over deadline
/// when both fired; a fully processed run is Completed (or Resumed when
/// it continued from a checkpoint) even if the token fired after the
/// last chunk was claimed.
inline Termination resolve_termination(std::int64_t done,
                                       std::int64_t requested,
                                       const CancelToken* cancel,
                                       bool resumed) {
  if (done >= requested)
    return resumed ? Termination::Resumed : Termination::Completed;
  if (cancel) return cancel->stop_reason();
  return Termination::Cancelled;
}

/// Per-trial kernel recorder handed to the trial body; its counts fold
/// deterministically into the provenance.
class KernelTally {
 public:
  void note(SimKernel used) {
    if (used == SimKernel::Packed)
      ++packed_;
    else
      ++scalar_;
  }
  std::int64_t packed() const { return packed_; }
  std::int64_t scalar() const { return scalar_; }

 private:
  std::int64_t packed_ = 0;
  std::int64_t scalar_ = 0;
};

/// The thread count a spec resolves to (spec.threads when positive, else
/// the BISRAM_THREADS / override / hardware default).
int resolve_campaign_threads(const CampaignSpec& spec);

/// Segment length (in trials) between checkpoint boundaries, rounded up
/// to a whole number of `chunk`-sized fold chunks so every boundary is
/// also a chunk boundary of the uninterrupted fold (the alignment the
/// bit-identical resume contract rests on). Returns `total` — one
/// segment, no interior boundaries — when neither checkpointing nor a
/// cooperative pause needs them; asynchronous cancellation alone is
/// handled inside parallel_reduce and needs no segmentation. ck.interval
/// = 0 defaults to total/16 (floored at one chunk).
std::int64_t checkpoint_segment_trials(const CheckpointSpec& ck,
                                       std::int64_t chunk,
                                       std::int64_t total);

/// Wall-clock gate for checkpoint writes (CheckpointSpec::min_period_ms):
/// due() says whether a boundary's write should hit disk, note_write()
/// stamps a completed write. Construction stamps the campaign start, so
/// min_period_ms also spaces the first write from it.
class CheckpointCadence {
 public:
  CheckpointCadence();
  /// True when ck wants a write now: forced boundaries (pause, final)
  /// always write; others wait out min_period_ms since the last write.
  bool due(const CheckpointSpec& ck, bool force) const;
  void note_write();

 private:
  double last_ms_ = 0;
};

/// Runs `per_trial(rng, i, tally)` for i in [0, spec.trials) on the
/// deterministic parallel engine and folds the results with `combine`.
/// Trial i draws from sub-stream `stream_offset + i` of spec.seed (the
/// offset lets multi-segment campaigns like fault_coverage keep their
/// historical stream layout). `chunk` fixes the fold association and is
/// part of each campaign's bit-exact output contract, so it stays a
/// per-campaign constant rather than a spec knob. When `provenance` is
/// non-null it is filled with the resolved thread count and the
/// packed/scalar trial split.
///
/// Cancellation: spec.cancel is polled at chunk boundaries. When it
/// fires, the fold covers exactly the chunks that finished; the number
/// of trials in that fold is added to `trials_done` (and to
/// provenance.trials_done). `initial` seeds the caller-side fold
/// (checkpoint resume) — it is folded in *before* chunk 0's partial,
/// continuing the exact left fold of an uninterrupted run.
template <typename T, typename PerTrial, typename Combine>
T run_campaign(const CampaignSpec& spec, std::int64_t chunk, T identity,
               PerTrial&& per_trial, Combine&& combine,
               CampaignProvenance* provenance = nullptr,
               std::uint64_t stream_offset = 0,
               std::int64_t* trials_done = nullptr,
               const T* initial = nullptr) {
  require(spec.trials >= 1, "CampaignSpec: needs at least one trial");
  struct Acc {
    T value;
    std::int64_t packed = 0;
    std::int64_t scalar = 0;
  };
  std::int64_t done = 0;
  const Acc start{initial ? *initial : identity, 0, 0};
  Acc folded = parallel_reduce<Acc>(
      spec.trials, chunk, Acc{identity, 0, 0},
      [&](std::int64_t i) {
        Rng rng(stream_seed(spec.seed,
                            stream_offset + static_cast<std::uint64_t>(i)));
        KernelTally tally;
        T value = per_trial(rng, i, tally);
        return Acc{std::move(value), tally.packed(), tally.scalar()};
      },
      [&](Acc a, Acc b) {
        return Acc{combine(std::move(a.value), std::move(b.value)),
                   a.packed + b.packed, a.scalar + b.scalar};
      },
      spec.threads > 0 ? spec.threads : 0, spec.cancel, &done,
      initial ? &start : nullptr);
  if (trials_done) *trials_done += done;
  if (provenance) {
    provenance->seed = spec.seed;
    provenance->threads = resolve_campaign_threads(spec);
    provenance->kernel = spec.kernel;
    provenance->trials += spec.trials;
    provenance->packed_trials += folded.packed;
    provenance->scalar_trials += folded.scalar;
    provenance->sampling = spec.sampling.mode;
    provenance->batch = spec.batch;
    provenance->trials_done += done;
  }
  return std::move(folded.value);
}

}  // namespace bisram::sim
