#include "sim/generators.hpp"

namespace bisram::sim {

void AddGen::inject_stuck_bit(int bit, bool value) {
  require(bit >= 0 && bit < 32, "AddGen: stuck bit out of range");
  stuck_mask_ |= 1u << bit;
  if (value)
    stuck_value_ |= 1u << bit;
  else
    stuck_value_ &= ~(1u << bit);
  apply_stuck();
}

DataGen::DataGen(int bpw) : bpw_(bpw) {
  require(bpw >= 1, "DataGen: bpw must be >= 1");
}

void DataGen::reset() { ones_ = 0; }

bool DataGen::step() {
  if (ones_ == bpw_) return false;  // shift register saturated at all-1
  ++ones_;
  return true;
}

bool DataGen::at_last() const {
  if (stuck_.empty()) return ones_ == bpw_;
  // The all-1 decode sees the register outputs, stuck bits included.
  for (int i = 0; i < bpw_; ++i)
    if (!bit(i)) return false;
  return true;
}

bool DataGen::bit(int i) const {
  ensure(i >= 0 && i < bpw_, "DataGen::bit out of range");
  if (!stuck_.empty() && stuck_[static_cast<std::size_t>(i)] >= 0)
    return stuck_[static_cast<std::size_t>(i)] != 0;
  return i < ones_;
}

std::vector<bool> DataGen::word(bool complemented) const {
  std::vector<bool> w(static_cast<std::size_t>(bpw_));
  for (int i = 0; i < bpw_; ++i)
    w[static_cast<std::size_t>(i)] = bit(i) != complemented;
  return w;
}

bool DataGen::mismatch(const std::vector<bool>& data, bool complemented) const {
  ensure(static_cast<int>(data.size()) == bpw_, "DataGen: word width mismatch");
  for (int i = 0; i < bpw_; ++i)
    if (data[static_cast<std::size_t>(i)] != (bit(i) != complemented))
      return true;
  return false;
}

void DataGen::inject_stuck_bit(int bit, bool value) {
  require(bit >= 0 && bit < bpw_, "DataGen: stuck bit out of range");
  if (stuck_.empty()) stuck_.assign(static_cast<std::size_t>(bpw_), -1);
  stuck_[static_cast<std::size_t>(bit)] = value ? 1 : 0;
}

}  // namespace bisram::sim
