#include "sim/generators.hpp"

namespace bisram::sim {

DataGen::DataGen(int bpw) : bpw_(bpw) {
  require(bpw >= 1, "DataGen: bpw must be >= 1");
}

void DataGen::reset() { ones_ = 0; }

bool DataGen::step() {
  if (at_last()) return false;
  ++ones_;
  return true;
}

bool DataGen::bit(int i) const {
  ensure(i >= 0 && i < bpw_, "DataGen::bit out of range");
  return i < ones_;
}

std::vector<bool> DataGen::word(bool complemented) const {
  std::vector<bool> w(static_cast<std::size_t>(bpw_));
  for (int i = 0; i < bpw_; ++i)
    w[static_cast<std::size_t>(i)] = bit(i) != complemented;
  return w;
}

bool DataGen::mismatch(const std::vector<bool>& data, bool complemented) const {
  ensure(static_cast<int>(data.size()) == bpw_, "DataGen: word width mismatch");
  for (int i = 0; i < bpw_; ++i)
    if (data[static_cast<std::size_t>(i)] != (bit(i) != complemented))
      return true;
  return false;
}

}  // namespace bisram::sim
