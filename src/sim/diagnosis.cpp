#include "sim/diagnosis.hpp"

#include <algorithm>
#include <map>

#include "sim/generators.hpp"
#include "util/strings.hpp"

namespace bisram::sim {

std::string DiagnosisReport::render() const {
  std::string out = strfmt("fault map: %zu failing bit(s), %zu faulty word(s), %s\n",
                           failing_bits.size(), faulty_words.size(),
                           repairable ? "repairable" : "NOT repairable");
  for (const auto& s : failing_bits) {
    out += strfmt("  addr %5u bit %3d (row %4d col %4d)  %d fails\n", s.addr,
                  s.bit, s.physical_row, s.physical_col, s.fail_count);
  }
  if (column_failure)
    out += strfmt("  COLUMN FAILURE suspected at physical column %d "
                  "(row redundancy cannot repair it)\n",
                  suspect_column);
  return out;
}

DiagnosisReport diagnose(RamModel& ram, const march::MarchTest& test) {
  const RamGeometry& geo = ram.geometry();
  ram.set_repair_enabled(false);

  std::map<std::pair<std::uint32_t, int>, int> fails;
  DiagnosisReport report;

  DataGen datagen(geo.bpw);
  datagen.reset();
  Word data;  // reused across the whole diagnosis: no per-read allocation
  for (int bg = 0; bg < datagen.background_count(); ++bg) {
    for (const auto& element : test.elements()) {
      if (element.is_delay) {
        ram.elapse(0.1);
        continue;
      }
      AddGen addgen(geo.words);
      addgen.reset(element.order != march::Order::Down);
      for (;;) {
        const std::uint32_t addr = addgen.address();
        for (march::Op op : element.ops) {
          if (!march::is_read(op)) {
            ram.write_word(addr, datagen.word(march::op_value(op)));
            continue;
          }
          ++report.reads;
          ram.read_word_into(addr, data);
          for (int bit = 0; bit < geo.bpw; ++bit) {
            const bool expect =
                datagen.bit(bit) != march::op_value(op);
            if (data[static_cast<std::size_t>(bit)] != expect)
              fails[{addr, bit}]++;
          }
        }
        if (addgen.at_last()) break;
        addgen.step();
      }
    }
    if (!datagen.at_last()) datagen.step();
  }

  std::map<int, int> per_column;
  for (const auto& [key, count] : fails) {
    const auto [addr, bit] = key;
    const CellAddr cell = geo.cell_of(addr, bit);
    report.failing_bits.push_back({addr, bit, cell.row, cell.col, count});
    per_column[cell.col]++;
    if (report.faulty_words.empty() || report.faulty_words.back() != addr)
      report.faulty_words.push_back(addr);
  }
  std::sort(report.faulty_words.begin(), report.faulty_words.end());
  report.faulty_words.erase(
      std::unique(report.faulty_words.begin(), report.faulty_words.end()),
      report.faulty_words.end());
  report.repairable =
      static_cast<int>(report.faulty_words.size()) <= geo.spare_words();

  // Column-failure heuristic: one physical column accounts for at least
  // half the regular rows' worth of failing bits.
  for (const auto& [col, count] : per_column) {
    if (count >= geo.rows() / 2) {
      report.column_failure = true;
      report.suspect_column = col;
      break;
    }
  }
  return report;
}

}  // namespace bisram::sim
