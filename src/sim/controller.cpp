#include "sim/controller.hpp"

namespace bisram::sim {

using microcode::Cond;
using microcode::Ctrl;

PlaBistMachine::PlaBistMachine(RamModel& ram,
                               const microcode::AssembledController& ctrl,
                               double retention_wait_s,
                               bool johnson_backgrounds, int timer_cycles)
    : ram_(ram), ctrl_(ctrl), addgen_(ram.geometry().words),
      datagen_(ram.geometry().bpw), retention_wait_s_(retention_wait_s),
      johnson_(johnson_backgrounds), timer_cycles_(timer_cycles),
      state_(ctrl.initial_state) {
  require(timer_cycles >= 1, "PlaBistMachine: timer needs >= 1 cycle");
  // Hardware reset: the same initialization the CHECK->next-pass arc
  // performs, applied before the first cycle.
  addgen_.reset(true);
  datagen_.reset();
  ram_.set_repair_enabled(false);
}

void PlaBistMachine::inject(const InfraFault& fault) {
  switch (fault.kind) {
    case InfraFaultKind::TlbEntryBitStuck:
      ram_.tlb().inject_entry_bit_stuck(fault.index, fault.bit, fault.value);
      break;
    case InfraFaultKind::TlbValidStuck:
      ram_.tlb().inject_valid_stuck(fault.index, fault.value);
      break;
    case InfraFaultKind::TlbMatchStuck:
      ram_.tlb().inject_match_stuck(fault.index, fault.value);
      break;
    case InfraFaultKind::AddgenBitStuck:
      addgen_.inject_stuck_bit(fault.bit, fault.value);
      break;
    case InfraFaultKind::DatagenBitStuck:
      datagen_.inject_stuck_bit(fault.bit, fault.value);
      break;
    case InfraFaultKind::StregBitStuck:
      require(fault.bit >= 0 && fault.bit < ctrl_.state_bits,
              "PlaBistMachine: STREG bit out of range");
      streg_stuck_mask_ |= 1 << fault.bit;
      if (fault.value)
        streg_stuck_value_ |= 1 << fault.bit;
      else
        streg_stuck_value_ &= ~(1 << fault.bit);
      state_ = apply_streg_stuck(state_);
      break;
    case InfraFaultKind::PlaCrosspointMissing:
    case InfraFaultKind::PlaCrosspointExtra:
      pla_override_ = apply_pla_fault(active_pla(), fault);
      break;
  }
}

std::vector<bool> PlaBistMachine::sample_conditions() const {
  std::vector<bool> c(static_cast<std::size_t>(microcode::kCondCount));
  c[static_cast<std::size_t>(Cond::AddrLast)] = addgen_.at_last();
  c[static_cast<std::size_t>(Cond::BgLast)] = !johnson_ || datagen_.at_last();
  c[static_cast<std::size_t>(Cond::TimerDone)] = timer_remaining_ == 0;
  c[static_cast<std::size_t>(Cond::PassDirty)] = dirty_;
  c[static_cast<std::size_t>(Cond::TlbOverflow)] = overflow_;
  return c;
}

bool PlaBistMachine::step() {
  if (finished_) return true;
  ++controller_cycles_;
  if (timer_remaining_ > 0) --timer_remaining_;

  // Assemble the PLA input vector: state bits then condition bits.
  std::vector<bool> in(static_cast<std::size_t>(active_pla().inputs()), false);
  for (int i = 0; i < ctrl_.state_bits; ++i)
    in[static_cast<std::size_t>(i)] = (state_ >> i) & 1;
  const auto conds = sample_conditions();
  for (int i = 0; i < microcode::kCondCount; ++i)
    in[static_cast<std::size_t>(ctrl_.state_bits + i)] =
        conds[static_cast<std::size_t>(i)];

  const auto out = active_pla().evaluate(in);
  auto ctrl_on = [&](Ctrl c) {
    return out[static_cast<std::size_t>(ctrl_.state_bits +
                                        static_cast<int>(c))];
  };

  // --- datapath execution, in hardware signal order -----------------------
  ram_.set_repair_enabled(ctrl_on(Ctrl::RepairOn));
  const bool invert = ctrl_on(Ctrl::Invert);
  const std::uint32_t addr = addgen_.address();

  if (ctrl_on(Ctrl::DoWrite)) {
    ++ram_ops_;
    ram_.write_word(addr, datagen_.word(invert));
  }
  if (ctrl_on(Ctrl::DoRead)) {
    ++ram_ops_;
    ram_.read_word_into(addr, readback_);
    if (datagen_.mismatch(readback_, invert)) {
      dirty_ = true;
      if (passes_started_ == 1) pass1_clean_seen_ = false;
      if (ctrl_on(Ctrl::TlbRecord)) {
        const auto spare =
            ram_.tlb().record(addr, ctrl_on(Ctrl::TlbForceNew));
        if (!spare) overflow_ = true;
      }
    }
  }

  if (ctrl_on(Ctrl::AddrStep)) addgen_.step();
  if (ctrl_on(Ctrl::AddrResetUp)) addgen_.reset(true);
  if (ctrl_on(Ctrl::AddrResetDown)) addgen_.reset(false);
  if (ctrl_on(Ctrl::DataStep) && johnson_) datagen_.step();
  if (ctrl_on(Ctrl::DataReset)) datagen_.reset();
  if (ctrl_on(Ctrl::ClearDirty)) {
    dirty_ = false;
    ++passes_started_;
  }
  if (ctrl_on(Ctrl::TimerStart)) {
    timer_remaining_ = timer_cycles_;
    // The embedded processor tristates the interface and waits; the RAM
    // keeps (or loses) its charge during this interval.
    ram_.elapse(retention_wait_s_);
  }

  // --- state register update ----------------------------------------------
  int next = 0;
  for (int i = 0; i < ctrl_.state_bits; ++i)
    if (out[static_cast<std::size_t>(i)]) next |= 1 << i;
  state_ = apply_streg_stuck(next);

  if (ctrl_on(Ctrl::SigDone)) {
    finished_ = true;
    success_ = true;
  } else if (ctrl_on(Ctrl::SigFail)) {
    finished_ = true;
    success_ = false;
  }
  return finished_;
}

BistResult PlaBistMachine::run(std::uint64_t max_cycles, bool strict_runaway) {
  while (!finished_ && controller_cycles_ < max_cycles) step();

  BistResult r;
  r.pass1_clean = pass1_clean_seen_;
  r.repair_successful = finished_ && success_;
  r.tlb_overflow = overflow_;
  r.spares_used = ram_.tlb().used();
  r.passes_run = passes_started_;
  r.cycles = ram_ops_;
  if (!finished_) {
    // Watchdog trip: the controller is running away. Historically this
    // threw; campaigns need a classified result instead, with BISR left
    // disabled — a hung engine must not be trusted to divert addresses.
    ensure(!strict_runaway, "PlaBistMachine: controller did not terminate");
    r.hung = true;
    ram_.set_repair_enabled(false);
    return r;
  }
  // Match the behavioural engine: leave the RAM usable in normal mode.
  ram_.set_repair_enabled(true);
  return r;
}

BistResult run_microcoded_bist(RamModel& ram, const BistConfig& config) {
  require(config.test != nullptr, "run_microcoded_bist: null march test");
  const auto trpla =
      microcode::build_trpla(*config.test, config.max_passes);
  PlaBistMachine machine(ram, trpla, config.retention_wait_s,
                         config.johnson_backgrounds);
  return machine.run();
}

}  // namespace bisram::sim
