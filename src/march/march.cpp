#include "march/march.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bisram::march {

bool is_read(Op op) { return op == Op::R0 || op == Op::R1; }

bool op_value(Op op) { return op == Op::R1 || op == Op::W1; }

std::string op_name(Op op) {
  switch (op) {
    case Op::R0: return "r0";
    case Op::R1: return "r1";
    case Op::W0: return "w0";
    case Op::W1: return "w1";
  }
  return "?";
}

MarchTest::MarchTest(std::string name, std::vector<Element> elements)
    : name_(std::move(name)), elements_(std::move(elements)) {
  require(!elements_.empty(), "MarchTest: no elements");
  for (const auto& e : elements_) {
    require(e.is_delay || !e.ops.empty(),
            "MarchTest: non-delay element with no ops");
    require(!e.is_delay || e.ops.empty(), "MarchTest: delay element has ops");
  }
}

std::size_t MarchTest::ops_per_address() const {
  std::size_t n = 0;
  for (const auto& e : elements_) n += e.ops.size();
  return n;
}

std::size_t MarchTest::delay_count() const {
  std::size_t n = 0;
  for (const auto& e : elements_)
    if (e.is_delay) ++n;
  return n;
}

std::string MarchTest::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const auto& e : elements_) {
    if (!first) out += ';';
    first = false;
    if (e.is_delay) {
      out += "del";
      continue;
    }
    switch (e.order) {
      case Order::Up: out += 'u'; break;
      case Order::Down: out += 'd'; break;
      case Order::Either: out += 'b'; break;
    }
    out += '(';
    for (std::size_t i = 0; i < e.ops.size(); ++i) {
      if (i) out += ',';
      out += op_name(e.ops[i]);
    }
    out += ')';
  }
  out += '}';
  return out;
}

MarchTest MarchTest::parse(const std::string& name, const std::string& text) {
  std::string s = trim(text);
  require(s.size() >= 2 && s.front() == '{' && s.back() == '}',
          "march parse: missing braces in '" + text + "'");
  s = s.substr(1, s.size() - 2);

  std::vector<Element> elements;
  for (const std::string& raw : split(s, ";")) {
    const std::string el = to_lower(trim(raw));
    if (el.empty()) continue;
    if (el == "del" || el == "delay") {
      elements.push_back(Element::delay());
      continue;
    }
    require(el.size() >= 4 && el[1] == '(' && el.back() == ')',
            "march parse: bad element '" + raw + "'");
    Element e;
    switch (el[0]) {
      case 'u': e.order = Order::Up; break;
      case 'd': e.order = Order::Down; break;
      case 'b': e.order = Order::Either; break;
      default:
        throw SpecError("march parse: bad order char in '" + raw + "'");
    }
    for (const std::string& opraw : split(el.substr(2, el.size() - 3), ", ")) {
      const std::string op = trim(opraw);
      if (op == "r0") e.ops.push_back(Op::R0);
      else if (op == "r1") e.ops.push_back(Op::R1);
      else if (op == "w0") e.ops.push_back(Op::W0);
      else if (op == "w1") e.ops.push_back(Op::W1);
      else throw SpecError("march parse: bad op '" + op + "'");
    }
    require(!e.ops.empty(), "march parse: empty op list in '" + raw + "'");
    elements.push_back(std::move(e));
  }
  return MarchTest(name, std::move(elements));
}

const MarchTest& ifa9() {
  static const MarchTest t = MarchTest::parse(
      "IFA-9",
      "{b(w0);u(r0,w1);u(r1,w0);d(r0,w1);d(r1,w0);del;b(r0,w1);del;b(r1)}");
  return t;
}

const MarchTest& ifa13() {
  static const MarchTest t = MarchTest::parse(
      "IFA-13",
      "{b(w0);u(r0,w1,r1);u(r1,w0,r0);d(r0,w1,r1);d(r1,w0,r0);del;b(r0,w1);"
      "del;b(r1)}");
  return t;
}

const MarchTest& mats_plus() {
  static const MarchTest t =
      MarchTest::parse("MATS+", "{b(w0);u(r0,w1);d(r1,w0)}");
  return t;
}

const MarchTest& march_c_minus() {
  static const MarchTest t = MarchTest::parse(
      "March C-", "{b(w0);u(r0,w1);u(r1,w0);d(r0,w1);d(r1,w0);b(r0)}");
  return t;
}

const MarchTest& march_x() {
  static const MarchTest t =
      MarchTest::parse("March X", "{b(w0);u(r0,w1);d(r1,w0);b(r0)}");
  return t;
}

const MarchTest& march_y() {
  static const MarchTest t =
      MarchTest::parse("March Y", "{b(w0);u(r0,w1,r1);d(r1,w0,r0);b(r0)}");
  return t;
}

const MarchTest& march_a() {
  static const MarchTest t = MarchTest::parse(
      "March A",
      "{b(w0);u(r0,w1,w0,w1);u(r1,w0,w1);d(r1,w0,w1,w0);d(r0,w1,w0)}");
  return t;
}

const MarchTest& march_b() {
  static const MarchTest t = MarchTest::parse(
      "March B",
      "{b(w0);u(r0,w1,r1,w0,r0,w1);u(r1,w0,w1);d(r1,w0,w1,w0);d(r0,w1,w0)}");
  return t;
}

const MarchTest& pmovi() {
  static const MarchTest t = MarchTest::parse(
      "PMOVI", "{d(w0);u(r0,w1,r1);u(r1,w0,r0);d(r0,w1,r1);d(r1,w0,r0)}");
  return t;
}

const MarchTest& march_lr() {
  static const MarchTest t = MarchTest::parse(
      "March LR",
      "{b(w0);d(r0,w1);u(r1,w0,r0,w1);u(r1,w0);u(r0,w1,r1,w0);u(r0)}");
  return t;
}

std::vector<std::vector<bool>> johnson_backgrounds(int bpw) {
  require(bpw >= 1, "johnson_backgrounds: bpw must be >= 1");
  std::vector<std::vector<bool>> out;
  // A bpw-bit Johnson counter visits all-0, then fills ones from the left
  // one bit per shift until all-1 (the first bpw+1 of its 2*bpw states;
  // the remaining states are complements already exercised by the march's
  // complement writes).
  for (int k = 0; k <= bpw; ++k) {
    std::vector<bool> bg(static_cast<std::size_t>(bpw), false);
    for (int i = 0; i < k; ++i) bg[static_cast<std::size_t>(i)] = true;
    out.push_back(std::move(bg));
  }
  return out;
}

std::vector<std::vector<bool>> log_backgrounds(int bpw) {
  require(bpw >= 1, "log_backgrounds: bpw must be >= 1");
  std::vector<std::vector<bool>> out;
  out.emplace_back(static_cast<std::size_t>(bpw), false);  // all-0
  // Alternating blocks of size 1, 2, 4, ... (0101..., 0011..., ...).
  for (int block = 1; block < bpw; block *= 2) {
    std::vector<bool> bg(static_cast<std::size_t>(bpw));
    for (int i = 0; i < bpw; ++i) bg[static_cast<std::size_t>(i)] = (i / block) % 2 != 0;
    out.push_back(std::move(bg));
  }
  out.emplace_back(static_cast<std::size_t>(bpw), true);  // all-1
  return out;
}

bool covers_all_pairs(const std::vector<std::vector<bool>>& backgrounds,
                      int bpw) {
  for (int i = 0; i < bpw; ++i) {
    for (int j = i + 1; j < bpw; ++j) {
      bool distinguished = false;
      for (const auto& bg : backgrounds) {
        if (bg[static_cast<std::size_t>(i)] != bg[static_cast<std::size_t>(j)]) {
          distinguished = true;
          break;
        }
      }
      if (!distinguished) return false;
    }
  }
  return true;
}

std::uint64_t test_cycles(const MarchTest& t, std::uint64_t words,
                          int backgrounds) {
  require(backgrounds >= 1, "test_cycles: needs >= 1 background");
  return static_cast<std::uint64_t>(t.ops_per_address()) * words *
         static_cast<std::uint64_t>(backgrounds);
}

}  // namespace bisram::march
