#pragma once
// Exact march-test coverage analysis. For the classic unlinked fault
// models (stuck-at, transition, state/idempotent/inversion coupling,
// stuck-open), a march test's coverage is decided by its behaviour on a
// two-cell memory with both relative address orders — the textbook van
// de Goor conditions fall out of exhaustively simulating every fault
// instance on that tiny memory. analyze() does exactly that, giving a
// *proof-grade* coverage verdict that the stochastic fault simulator
// (src/sim/fault_sim.hpp) is cross-validated against in tests.

#include "march/march.hpp"

namespace bisram::march {

struct MarchAnalysis {
  bool detects_saf = false;   ///< all stuck-at faults
  bool detects_tf = false;    ///< all transition faults
  bool detects_cfst = false;  ///< all state coupling faults (both orders)
  bool detects_cfid = false;  ///< all idempotent coupling faults
  bool detects_cfin = false;  ///< all inversion coupling faults
  bool detects_sof = false;   ///< all stuck-open faults (stale-read model)
  bool exercises_retention = false;  ///< a delay phase precedes some read

  /// Pretty one-line summary ("SAF TF CFst -CFid ...").
  std::string summary() const;
};

/// Exhaustive 2-cell analysis of `test`.
MarchAnalysis analyze(const MarchTest& test);

}  // namespace bisram::march
