#pragma once
// Transparent BIST transformation (Kebichi & Nicolaidis 1992, the
// paper's reference [8]): turns a march test into one that leaves the
// RAM's normal-mode contents unmodified. Initializing writes are
// dropped; every remaining operation is reinterpreted *relative to the
// initial cell data d* — r0 becomes "read, expect d", r1 "read, expect
// ~d", w1 "write ~d", and so on. Detection uses signature comparison
// (src/sim/transparent.hpp) because absolute expected values are
// unknown.

#include "march/march.hpp"

namespace bisram::march {

/// One transparent operation: value = initial_data XOR invert.
struct TransparentOp {
  bool read = false;
  bool invert = false;  ///< complement of the initial data
};

struct TransparentElement {
  Order order = Order::Either;
  std::vector<TransparentOp> ops;
  bool is_delay = false;
};

/// A transparent march test.
class TransparentTest {
 public:
  TransparentTest(std::string name, std::vector<TransparentElement> elements);

  const std::string& name() const { return name_; }
  const std::vector<TransparentElement>& elements() const { return elements_; }

  /// True when a fault-free run returns every cell to its initial value
  /// (the transformation guarantees it for tests whose per-address write
  /// parity is even).
  bool restores_contents() const;

  /// Number of write inversions applied per address over the whole test.
  int write_inversions() const;

  std::size_t ops_per_address() const;

 private:
  std::string name_;
  std::vector<TransparentElement> elements_;
};

/// Derives the transparent version of `test`:
///  * leading initializing elements (write-only, Either order) are
///    dropped — the memory's own contents play the role of the
///    background;
///  * each op's data sense is re-based so the first (dropped) write
///    polarity maps to "initial data".
/// Throws SpecError when the test has no initializing element to anchor
/// the polarity.
TransparentTest make_transparent(const MarchTest& test);

}  // namespace bisram::march
