#pragma once
// March-test algebra: the notation used by the paper for IFA-9
//   {⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); Delay; ⇕(r0,w1);
//    Delay; ⇕(r1)}
// plus a small library of classic tests for the coverage benchmarks.
//
// ASCII grammar accepted by parse():
//   test    := '{' element (';' element)* '}'
//   element := ('b'|'u'|'d') '(' op (',' op)* ')' | 'del'
//   op      := 'r0' | 'r1' | 'w0' | 'w1'
// where 'u' is ascending address order (⇑), 'd' descending (⇓) and
// 'b' either order (⇕).

#include <cstdint>
#include <string>
#include <vector>

namespace bisram::march {

/// One read or write of the current background (0) or its complement (1).
enum class Op : std::uint8_t { R0, R1, W0, W1 };

/// Address order of a march element.
enum class Order : std::uint8_t { Up, Down, Either };

bool is_read(Op op);
/// The data sense of the op: false for r0/w0 (background), true for r1/w1
/// (complemented background).
bool op_value(Op op);
std::string op_name(Op op);

/// True when the element sweeps addresses upward. Order::Either resolves
/// to up — the choice both simulation engines and the microcode
/// generator share, so it lives here rather than in each of them.
inline bool ascending(Order order) { return order != Order::Down; }

/// One march element: an address sweep applying `ops` at every address,
/// or a delay element (for data-retention testing).
struct Element {
  Order order = Order::Either;
  std::vector<Op> ops;
  bool is_delay = false;

  static Element delay() { return Element{Order::Either, {}, true}; }
};

/// A complete march test.
class MarchTest {
 public:
  MarchTest(std::string name, std::vector<Element> elements);

  const std::string& name() const { return name_; }
  const std::vector<Element>& elements() const { return elements_; }

  /// Number of per-address operations summed over non-delay elements;
  /// a test of complexity k*n returns k.
  std::size_t ops_per_address() const;

  /// Number of delay (data-retention wait) elements.
  std::size_t delay_count() const;

  /// Renders in the ASCII grammar, e.g. "{b(w0);u(r0,w1);del;b(r1)}".
  std::string to_string() const;

  /// Parses the ASCII grammar; throws bisram::SpecError on syntax errors
  /// and on semantically empty tests.
  static MarchTest parse(const std::string& name, const std::string& text);

 private:
  std::string name_;
  std::vector<Element> elements_;
};

// --- Library of standard tests ---------------------------------------------

/// IFA-9 [Shen/Maly/Ferguson]: the test BISRAMGEN microprograms into the
/// TRPLA. Detects SAF, TF, CFst plus data-retention faults.
const MarchTest& ifa9();
/// IFA-13: IFA-9 with a verifying read after every write (used by the
/// Chen-Sunada baseline per the paper).
const MarchTest& ifa13();
/// MATS+ (4n, SAF only).
const MarchTest& mats_plus();
/// March C- (10n; SAF, TF, unlinked CFs).
const MarchTest& march_c_minus();
/// March X (6n).
const MarchTest& march_x();
/// March Y (8n; adds transition coverage).
const MarchTest& march_y();
/// March A (15n; linked coupling faults).
const MarchTest& march_a();
/// March B (17n; March A plus verifying reads).
const MarchTest& march_b();
/// PMOVI (13n; read-after-write everywhere — strong on stuck-open).
const MarchTest& pmovi();
/// March LR (14n; realistic linked faults).
const MarchTest& march_lr();

// --- Data backgrounds -------------------------------------------------------

/// The bpw+1 data backgrounds a bpw-bit Johnson counter steps through:
/// all-0, 10..0, 110..0, ..., all-1. The paper proves ([2]) these cover
/// every intra-word cell pair; see johnson_covers_all_pairs().
std::vector<std::vector<bool>> johnson_backgrounds(int bpw);

/// The log2(bpw)+1 "binary" backgrounds (all-0, 0101.., 0011.., ..,
/// all-1) the paper mentions as the alternative needing more hardware.
std::vector<std::vector<bool>> log_backgrounds(int bpw);

/// True when `backgrounds` distinguishes every pair of bit positions,
/// i.e. for every i < j some background has bit i != bit j. Together
/// with the march's complement writes this yields all four (bi, bj)
/// combinations on every pair.
bool covers_all_pairs(const std::vector<std::vector<bool>>& backgrounds,
                      int bpw);

/// Test length in RAM cycles for `t` applied once per background:
/// backgrounds * ops_per_address * words (delays excluded, they cost
/// wall-clock, not cycles).
std::uint64_t test_cycles(const MarchTest& t, std::uint64_t words,
                          int backgrounds);

}  // namespace bisram::march
