#include "march/transparent.hpp"

#include "util/error.hpp"

namespace bisram::march {

TransparentTest::TransparentTest(std::string name,
                                 std::vector<TransparentElement> elements)
    : name_(std::move(name)), elements_(std::move(elements)) {
  require(!elements_.empty(), "TransparentTest: no elements");
}

int TransparentTest::write_inversions() const {
  // Writes alternate the cell between d and ~d; track the net parity of
  // one full pass over an address.
  int inversions = 0;
  for (const auto& e : elements_)
    for (const auto& op : e.ops)
      if (!op.read) ++inversions;
  return inversions;
}

bool TransparentTest::restores_contents() const {
  // The final written polarity must be "not inverted" (i.e. the last
  // write restores d). Scan for the last write.
  for (auto e = elements_.rbegin(); e != elements_.rend(); ++e) {
    for (auto op = e->ops.rbegin(); op != e->ops.rend(); ++op) {
      if (!op->read) return !op->invert;
    }
  }
  return true;  // read-only transparent test
}

std::size_t TransparentTest::ops_per_address() const {
  std::size_t n = 0;
  for (const auto& e : elements_) n += e.ops.size();
  return n;
}

TransparentTest make_transparent(const MarchTest& test) {
  const auto& elements = test.elements();
  // Find the leading initializing element: write-only.
  std::size_t first = 0;
  bool found_init = false;
  bool init_value = false;
  while (first < elements.size()) {
    const Element& e = elements[first];
    if (e.is_delay) {
      ++first;
      continue;
    }
    bool write_only = true;
    for (Op op : e.ops)
      if (is_read(op)) write_only = false;
    if (!write_only) break;
    // The polarity the march establishes; later ops are re-based on it.
    found_init = true;
    init_value = op_value(e.ops.back());
    ++first;
  }
  require(found_init,
          "make_transparent: march has no initializing write element");

  std::vector<TransparentElement> out;
  for (std::size_t i = first; i < elements.size(); ++i) {
    const Element& e = elements[i];
    TransparentElement te;
    te.order = e.order;
    te.is_delay = e.is_delay;
    for (Op op : e.ops) {
      // A march op with value v (0/1) addresses a cell the initializer
      // set to init_value; transparently the cell holds d, so the op's
      // effective inversion is v XOR init_value.
      te.ops.push_back({is_read(op), op_value(op) != init_value});
    }
    out.push_back(std::move(te));
  }
  TransparentTest derived(test.name() + " (transparent)", std::move(out));
  if (!derived.restores_contents()) {
    // Standard transparent practice: append a restoring sweep writing
    // the initial data back, so normal-mode contents survive the test.
    auto elements = derived.elements();
    TransparentElement restore;
    restore.order = Order::Either;
    restore.ops.push_back({false, false});  // write d
    elements.push_back(std::move(restore));
    return TransparentTest(derived.name(), std::move(elements));
  }
  return derived;
}

}  // namespace bisram::march
