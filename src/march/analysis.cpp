#include "march/analysis.hpp"

#include <vector>

#include "util/error.hpp"

namespace bisram::march {

namespace {

// Fault semantics on a 2-cell memory. Cell indices 0 and 1; the fault
// structs mirror src/sim/faults.hpp at miniature scale.
struct MiniFault {
  enum class Kind { None, Sa, Tf, CfSt, CfId, CfIn, Sof } kind = Kind::None;
  int victim = 0;
  int aggressor = 1;
  bool v0 = false;  // SA value / TF direction(rising) / CFst trigger state
  bool v1 = false;  // CFst forced value / CFid forced value
  bool rising = false;  // CFid/CFin trigger direction
};

class MiniMemory {
 public:
  MiniMemory(const MiniFault& fault, int cells)
      : fault_(fault), cells_(static_cast<std::size_t>(cells), false) {}

  void write(int cell, bool value) {
    const bool old_v = cells_[static_cast<std::size_t>(cell)];
    bool effective = value;
    bool stored = true;
    if (cell == fault_.victim) {
      switch (fault_.kind) {
        case MiniFault::Kind::Sa: effective = fault_.v0; break;
        case MiniFault::Kind::Tf:
          // v0=true: cannot rise; v0=false: cannot fall.
          if (fault_.v0 && !old_v && value) effective = old_v;
          if (!fault_.v0 && old_v && !value) effective = old_v;
          break;
        case MiniFault::Kind::Sof: stored = false; break;
        default: break;
      }
    }
    if (stored) cells_[static_cast<std::size_t>(cell)] = effective;
    // Aggressor-triggered effects.
    if (cell == fault_.aggressor) {
      const bool new_v = cells_[static_cast<std::size_t>(cell)];
      const std::size_t vi = static_cast<std::size_t>(fault_.victim);
      switch (fault_.kind) {
        case MiniFault::Kind::CfId:
          if (old_v != new_v && new_v == fault_.rising) cells_[vi] = fault_.v1;
          break;
        case MiniFault::Kind::CfIn:
          if (old_v != new_v && new_v == fault_.rising) cells_[vi] = !cells_[vi];
          break;
        default:
          break;
      }
    }
  }

  bool read(int cell) {
    bool value = cells_[static_cast<std::size_t>(cell)];
    if (cell == fault_.victim) {
      switch (fault_.kind) {
        case MiniFault::Kind::Sa: value = fault_.v0; break;
        case MiniFault::Kind::CfSt:
          if (cells_[static_cast<std::size_t>(fault_.aggressor)] == fault_.v0) {
            cells_[static_cast<std::size_t>(cell)] = fault_.v1;
            value = fault_.v1;
          }
          break;
        case MiniFault::Kind::Sof:
          // Both mini-cells share a bit line: the sense amp re-latches
          // the last value read from either.
          value = last_line_;
          break;
        default:
          break;
      }
    }
    last_line_ = value;
    return value;
  }

 private:
  MiniFault fault_;
  std::vector<bool> cells_;
  bool last_line_ = false;
};

/// Runs `test` on an n-cell memory with the fault; true when some read
/// mismatches its expectation. Two cells decide the coupling classes;
/// stuck-open needs three (the stale bit line is only refreshed by
/// same-column neighbours, so interior cells behave differently).
bool detects(const MarchTest& test, const MiniFault& fault, int cells) {
  MiniMemory mem(fault, cells);
  for (const auto& element : test.elements()) {
    if (element.is_delay) continue;  // retention handled separately
    const bool up = element.order != Order::Down;
    for (int step = 0; step < cells; ++step) {
      const int cell = up ? step : cells - 1 - step;
      for (Op op : element.ops) {
        const bool v = op_value(op);
        if (is_read(op)) {
          if (mem.read(cell) != v) return true;
        } else {
          mem.write(cell, v);
        }
      }
    }
  }
  return false;
}

bool all_detected(const MarchTest& test, const std::vector<MiniFault>& faults,
                  int cells = 2) {
  for (const auto& f : faults)
    if (!detects(test, f, cells)) return false;
  return true;
}

}  // namespace

MarchAnalysis analyze(const MarchTest& test) {
  MarchAnalysis a;

  std::vector<MiniFault> saf, tf, cfst, cfid, cfin, sof;
  for (int cell : {0, 1}) {
    for (bool v : {false, true}) {
      MiniFault f;
      f.kind = MiniFault::Kind::Sa;
      f.victim = cell;
      f.v0 = v;
      saf.push_back(f);
      f.kind = MiniFault::Kind::Tf;
      tf.push_back(f);
    }
  }
  for (int cell : {0, 1, 2}) {
    MiniFault s;
    s.kind = MiniFault::Kind::Sof;
    s.victim = cell;
    s.aggressor = cell == 0 ? 1 : 0;
    sof.push_back(s);
  }
  for (int victim : {0, 1}) {
    const int aggressor = 1 - victim;
    for (bool trigger : {false, true}) {
      for (bool forced : {false, true}) {
        MiniFault f;
        f.kind = MiniFault::Kind::CfSt;
        f.victim = victim;
        f.aggressor = aggressor;
        f.v0 = trigger;
        f.v1 = forced;
        cfst.push_back(f);

        MiniFault g;
        g.kind = MiniFault::Kind::CfId;
        g.victim = victim;
        g.aggressor = aggressor;
        g.rising = trigger;
        g.v1 = forced;
        cfid.push_back(g);
      }
      MiniFault h;
      h.kind = MiniFault::Kind::CfIn;
      h.victim = victim;
      h.aggressor = aggressor;
      h.rising = trigger;
      cfin.push_back(h);
    }
  }

  a.detects_saf = all_detected(test, saf);
  a.detects_tf = all_detected(test, tf);
  a.detects_cfst = all_detected(test, cfst);
  a.detects_cfid = all_detected(test, cfid);
  a.detects_cfin = all_detected(test, cfin);
  a.detects_sof = all_detected(test, sof, 3);

  // Retention: a delay element with at least one read somewhere after it.
  bool seen_delay = false;
  for (const auto& e : test.elements()) {
    if (e.is_delay) {
      seen_delay = true;
      continue;
    }
    if (!seen_delay) continue;
    for (Op op : e.ops)
      if (is_read(op)) a.exercises_retention = true;
  }
  return a;
}

std::string MarchAnalysis::summary() const {
  auto tag = [](bool on, const char* name) {
    return std::string(on ? "" : "-") + name;
  };
  return tag(detects_saf, "SAF") + " " + tag(detects_tf, "TF") + " " +
         tag(detects_cfst, "CFst") + " " + tag(detects_cfid, "CFid") + " " +
         tag(detects_cfin, "CFin") + " " + tag(detects_sof, "SOF") + " " +
         tag(exercises_retention, "DRF");
}

}  // namespace bisram::march
