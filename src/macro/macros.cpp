#include "macro/macros.hpp"

#include "util/error.hpp"
#include "util/math.hpp"
#include "util/strings.hpp"

namespace bisram::macro {

using cells::kCellPitchLambda;
using geom::Coord;
using geom::dbu;
using geom::Orient;
using geom::Transform;

namespace {

Coord pitch() { return dbu(kCellPitchLambda); }

/// Creates (or returns) a cached macro by name.
std::shared_ptr<geom::Cell> fresh(Library& lib, const std::string& name,
                                  bool& existed) {
  existed = lib.contains(name);
  return existed ? nullptr : lib.create(name);
}

}  // namespace

CellPtr ram_array(Library& lib, const Tech& t, const sim::RamGeometry& geo,
                  const MacroOptions& opt) {
  geo.validate();
  require(opt.strap_interval >= 0, "ram_array: negative strap interval");
  const std::string name =
      strfmt("ramarray_r%d_c%d_s%d_st%d", geo.rows(), geo.cols(),
             geo.spare_rows, opt.strap_interval);
  bool existed = false;
  auto array = fresh(lib, name, existed);
  if (existed) return lib.get(name);

  const CellPtr bit = cells::sram_cell_6t(lib, t);
  const Coord p = pitch();
  const int cols = geo.cols();

  // Row template: cells plus a strap every strap_interval columns.
  const std::string row_name = name + "_row";
  auto row = lib.create(row_name);
  Coord x = 0;
  CellPtr strap =
      opt.strap_interval > 0
          ? cells::strap_cell(lib, t, opt.strap_width_lambda)
          : nullptr;
  for (int c = 0; c < cols; ++c) {
    if (strap && c > 0 && c % opt.strap_interval == 0) {
      row->add_instance(strfmt("strap%d", c), strap, Transform::translate(x, 0));
      x += strap->bbox().width();
    }
    row->add_instance(strfmt("b%d", c), bit, Transform::translate(x, 0));
    x += p;
  }
  const Coord row_w = x;
  row->add_port("gnd", geom::Layer::Metal1,
                geom::Rect::ltrb(0, 0, row_w, dbu(3)));
  row->add_port("vdd", geom::Layer::Metal1,
                geom::Rect::ltrb(0, dbu(53), row_w, p));
  row->add_port("wl", geom::Layer::Poly,
                geom::Rect::ltrb(0, dbu(4), row_w, dbu(6)));

  // Stack rows, mirroring odd rows so adjacent rows share rails.
  const int total_rows = geo.total_rows();
  for (int r = 0; r < total_rows; ++r) {
    const bool mirrored = r % 2 == 1;
    const Coord y = mirrored ? (r + 1) * p : r * p;
    array->add_instance(strfmt("row%d", r), lib.get(row_name),
                        Transform(mirrored ? Orient::MX : Orient::R0, {0, y}));
  }
  // Floorplan interface ports: word lines enter on the left edge, bit
  // lines leave through the bottom edge.
  const Coord total_h = total_rows * p;
  array->add_port("decoder_side", geom::Layer::Poly,
                  geom::Rect::ltrb(0, 0, dbu(2), total_h));
  array->add_port("column_side", geom::Layer::Metal2,
                  geom::Rect::ltrb(0, 0, row_w, dbu(2)));
  return array;
}

CellPtr row_decoder_column(Library& lib, const Tech& t, int rows,
                           const MacroOptions& opt) {
  require(rows >= 2, "row_decoder_column: needs >= 2 rows");
  const int bits = log2_ceil(static_cast<std::uint64_t>(rows));
  const std::string name = strfmt("rowdeccol_r%d_x%g", rows, opt.gate_size);
  bool existed = false;
  auto col = fresh(lib, name, existed);
  if (existed) return lib.get(name);

  const CellPtr dec = cells::row_decoder_cell(lib, t, bits, opt.gate_size);
  const Coord p = pitch();
  for (int r = 0; r < rows; ++r) {
    const bool mirrored = r % 2 == 1;
    const Coord y = mirrored ? (r + 1) * p : r * p;
    col->add_instance(strfmt("dec%d", r), dec,
                      Transform(mirrored ? Orient::MX : Orient::R0, {0, y}));
  }
  const Coord w = dec->bbox().width();
  col->add_port("wl_out", geom::Layer::Poly,
                geom::Rect::ltrb(w - dbu(2), 0, w, rows * p));
  col->add_port("addr_in", geom::Layer::Poly,
                geom::Rect::ltrb(0, 0, w, dbu(2)));
  return col;
}

CellPtr column_periphery(Library& lib, const Tech& t,
                         const sim::RamGeometry& geo,
                         const MacroOptions& opt) {
  geo.validate();
  const std::string name =
      strfmt("colperiph_c%d_bpc%d_st%d_x%g", geo.cols(), geo.bpc,
             opt.strap_interval, opt.gate_size);
  bool existed = false;
  auto periph = fresh(lib, name, existed);
  if (existed) return lib.get(name);

  const CellPtr pc = cells::precharge_cell(lib, t, opt.gate_size);
  const CellPtr mux = cells::column_mux_cell(lib, t, opt.gate_size);
  const CellPtr sa = cells::sense_amp_cell(lib, t, opt.gate_size);
  const CellPtr wd = cells::write_driver_cell(lib, t, opt.gate_size);
  const Coord p = pitch();
  const Coord strap_w = opt.strap_interval > 0
                            ? dbu(opt.strap_width_lambda)
                            : 0;

  // x position of array column c: a strap precedes every column whose
  // index is a positive multiple of the strap interval (matching
  // ram_array's row template).
  auto col_x = [&](int c) {
    const int straps = opt.strap_interval > 0 ? c / opt.strap_interval : 0;
    return c * p + straps * strap_w;
  };

  // Row 0 (top, abutting the array): precharge per column.
  // Row 1: column mux per column. Row 2: one SA + WD pair per I/O group.
  const Coord h_pc = pc->bbox().height();
  const Coord h_mux = mux->bbox().height();
  const Coord y_mux = -h_mux;           // mux below origin
  const Coord y_pc = 0;                 // precharge at origin upward
  const Coord h_sa = std::max(sa->bbox().height(), wd->bbox().height());
  const Coord y_sa = y_mux - h_sa - dbu(8);
  (void)h_pc;
  for (int c = 0; c < geo.cols(); ++c) {
    const Coord x = col_x(c);
    periph->add_instance(strfmt("pc%d", c), pc, Transform::translate(x, y_pc));
    periph->add_instance(strfmt("mux%d", c), mux,
                         Transform(Orient::MX, {x, y_mux + h_mux}));
  }
  for (int g = 0; g < geo.bpw; ++g) {
    const Coord x = col_x(g * geo.bpc);
    periph->add_instance(strfmt("sa%d", g), sa, Transform::translate(x, y_sa));
    if (geo.bpc > 1) {
      const Coord xw = col_x(g * geo.bpc + 1);
      periph->add_instance(strfmt("wd%d", g), wd,
                           Transform::translate(xw, y_sa));
    }
  }
  const Coord total_w = col_x(geo.cols() - 1) + p;
  periph->add_port("bitline_top", geom::Layer::Metal2,
                   geom::Rect::ltrb(0, pc->bbox().height() - dbu(2), total_w,
                                    pc->bbox().height()));
  periph->add_port("data_out", geom::Layer::Metal1,
                   geom::Rect::ltrb(0, y_sa, total_w, y_sa + dbu(2)));
  periph->add_port("control", geom::Layer::Poly,
                   geom::Rect::ltrb(0, y_mux, dbu(2), 0));
  return periph;
}

namespace {
CellPtr slice_row(Library& lib, const std::string& name, const CellPtr& slice,
                  int count) {
  bool existed = false;
  auto row = fresh(lib, name, existed);
  if (existed) return lib.get(name);
  const Coord w = slice->bbox().width();
  for (int i = 0; i < count; ++i)
    row->add_instance("s" + std::to_string(i), slice,
                      Transform::translate(i * w, 0));
  const Coord h = slice->bbox().height();
  row->add_port("bus", geom::Layer::Metal1,
                geom::Rect::ltrb(0, h - dbu(2), count * w, h));
  row->add_port("control", geom::Layer::Poly,
                geom::Rect::ltrb(0, 0, count * w, dbu(2)));
  return row;
}
}  // namespace

CellPtr addgen_macro(Library& lib, const Tech& t, int bits) {
  require(bits >= 1 && bits <= 32, "addgen_macro: bits out of range");
  return slice_row(lib, strfmt("addgen_b%d", bits),
                   cells::counter_slice_cell(lib, t), bits);
}

CellPtr datagen_macro(Library& lib, const Tech& t, int bpw) {
  require(bpw >= 1 && bpw <= 512, "datagen_macro: bpw out of range");
  return slice_row(lib, strfmt("datagen_b%d", bpw),
                   cells::johnson_slice_cell(lib, t), bpw);
}

CellPtr streg_macro(Library& lib, const Tech& t, int bits) {
  require(bits >= 1 && bits <= 16, "streg_macro: bits out of range");
  return slice_row(lib, strfmt("streg_b%d", bits), cells::dff_cell(lib, t),
                   bits);
}

CellPtr tlb_macro(Library& lib, const Tech& t, int entries, int key_bits) {
  require(entries >= 1 && entries <= 256, "tlb_macro: entries out of range");
  require(key_bits >= 1 && key_bits <= 32, "tlb_macro: key bits out of range");
  const std::string name = strfmt("tlb_e%d_k%d", entries, key_bits);
  bool existed = false;
  auto tlb = fresh(lib, name, existed);
  if (existed) return lib.get(name);

  const CellPtr cam = cells::cam_cell(lib, t);
  const CellPtr valid = cells::dff_cell(lib, t);
  const Coord cw = cam->bbox().width();
  const Coord ch = cam->bbox().height();
  for (int e = 0; e < entries; ++e) {
    for (int k = 0; k < key_bits; ++k)
      tlb->add_instance(strfmt("c%d_%d", e, k), cam,
                        Transform::translate(k * cw, e * ch));
    tlb->add_instance(strfmt("v%d", e), valid,
                      Transform::translate(key_bits * cw + dbu(8), e * ch));
  }
  tlb->add_port("addr_in", geom::Layer::Metal2,
                geom::Rect::ltrb(0, 0, key_bits * cw, dbu(2)));
  tlb->add_port("spare_out", geom::Layer::Metal1,
                geom::Rect::ltrb(0, entries * ch - dbu(2), key_bits * cw,
                                 entries * ch));
  return tlb;
}

CellPtr trpla_macro(Library& lib, const Tech& t,
                    const microcode::PlaPersonality& pla) {
  const std::string name =
      strfmt("trpla_i%d_o%d_t%d", pla.inputs(), pla.outputs(), pla.terms());
  bool existed = false;
  auto macro = fresh(lib, name, existed);
  if (existed) return lib.get(name);

  const CellPtr dot = cells::pla_cell(lib, t, true);
  const CellPtr blank = cells::pla_cell(lib, t, false);
  const CellPtr pullup = cells::pla_pullup_cell(lib, t);
  const Coord gw = dot->bbox().width();
  const Coord gh = dot->bbox().height();

  const auto& terms = pla.product_terms();
  for (int r = 0; r < pla.terms(); ++r) {
    const auto& term = terms[static_cast<std::size_t>(r)];
    Coord x = 0;
    // AND-plane pull-up for the product term line.
    macro->add_instance(strfmt("pu%d", r), pullup,
                        Transform::translate(x, r * gh));
    x += gw;
    // AND plane: true and complement column per input.
    for (int i = 0; i < pla.inputs(); ++i) {
      const char c = term.and_row[static_cast<std::size_t>(i)];
      macro->add_instance(strfmt("a%d_%dt", r, i), c == '0' ? dot : blank,
                          Transform::translate(x, r * gh));
      x += gw;
      macro->add_instance(strfmt("a%d_%dc", r, i), c == '1' ? dot : blank,
                          Transform::translate(x, r * gh));
      x += gw;
    }
    // OR plane: one column per output.
    for (int o = 0; o < pla.outputs(); ++o) {
      const char c = term.or_row[static_cast<std::size_t>(o)];
      macro->add_instance(strfmt("o%d_%d", r, o), c == '1' ? dot : blank,
                          Transform::translate(x, r * gh));
      x += gw;
    }
  }
  const Coord total_w = macro->bbox().width();
  const Coord total_h = macro->bbox().height();
  macro->add_port("inputs", geom::Layer::Poly,
                  geom::Rect::ltrb(gw, 0, gw + 2 * pla.inputs() * gw, dbu(2)));
  macro->add_port("outputs", geom::Layer::Metal1,
                  geom::Rect::ltrb(total_w - pla.outputs() * gw,
                                   total_h - dbu(2), total_w, total_h));
  return macro;
}

double macro_area_mm2(const Tech& t, const geom::Cell& cell) {
  return t.mm2(cell.bbox().area());
}

}  // namespace bisram::macro
