#pragma once
// Macrocell assembly: the structured-custom stage of BISRAMGEN. Each
// macro is tiled from leaf cells by pure abutment ("the signals in
// adjacent modules are perfectly aligned and connected by abutments") —
// RAMARRAY, the row-decoder column, the column periphery, DATAGEN,
// ADDGEN, STREG, the TLB and the TRPLA.
//
// Arrays are built with two-level hierarchy (a row cell instantiated per
// row) so multi-megabit macros stay cheap to traverse.

#include "cells/leaf_cells.hpp"
#include "microcode/pla.hpp"
#include "sim/ram_model.hpp"

namespace bisram::macro {

using cells::Library;
using cells::Tech;
using geom::CellPtr;

/// Generation knobs shared by the macros (the user parameters of Fig. 1).
struct MacroOptions {
  double gate_size = 2.0;      ///< critical-gate multiplier ("buffer size")
  int strap_interval = 32;     ///< cells between straps; 0 disables straps
  double strap_width_lambda = 32.0;
};

/// The storage array: (rows + spare_rows) x cols 6T cells, rows mirrored
/// in pairs to share supply rails, with strap columns every
/// `strap_interval` cells.
CellPtr ram_array(Library& lib, const Tech& t, const sim::RamGeometry& geo,
                  const MacroOptions& opt);

/// Row decoders + word-line drivers, one per row (regular rows only;
/// spare rows are driven from the TLB side).
CellPtr row_decoder_column(Library& lib, const Tech& t, int rows,
                           const MacroOptions& opt);

/// Column periphery under the array: a precharge row, a column-mux row,
/// and one sense amplifier + write driver per I/O group (bpc columns).
CellPtr column_periphery(Library& lib, const Tech& t,
                         const sim::RamGeometry& geo, const MacroOptions& opt);

/// Test address generator: binary up/down counter, one slice per bit.
CellPtr addgen_macro(Library& lib, const Tech& t, int bits);

/// Test data-background generator: Johnson counter, one slice per word bit.
CellPtr datagen_macro(Library& lib, const Tech& t, int bpw);

/// BIST state register (six flip-flops in the paper's controller).
CellPtr streg_macro(Library& lib, const Tech& t, int bits);

/// The BISR TLB: a CAM array of `entries` rows by `key_bits` columns
/// plus a valid flip-flop per entry.
CellPtr tlb_macro(Library& lib, const Tech& t, int entries, int key_bits);

/// The TRPLA: pseudo-NMOS NOR-NOR PLA carrying the control program.
/// Grid: one row per product term; columns for each input (true and
/// complement), each output, plus a pull-up column per plane.
CellPtr trpla_macro(Library& lib, const Tech& t,
                    const microcode::PlaPersonality& pla);

/// Area of a macro in square millimetres.
double macro_area_mm2(const Tech& t, const geom::Cell& cell);

}  // namespace bisram::macro
