#pragma once
// The persistent DSE result cache: one small checkpoint-format file per
// evaluated lattice point, named by the point's fingerprint, holding
// its DesignMetrics. Re-running a sweep (or widening it) turns every
// already-evaluated point into a file read instead of a full compile —
// that is the warm-cache path the bench and the acceptance criteria
// measure.
//
// The format and its failure behavior are inherited wholesale from
// util/checkpoint.hpp: entries are written atomically (tmp + fsync +
// rename) and validated on load (magic, version, CRC32, fingerprint).
// A corrupt, truncated, version-skewed or wrong-fingerprint entry is a
// *miss*, never an error: load() swallows the reader's typed exception,
// counts a rejection, and the engine recomputes and rewrites the entry.
// The DSE schema version is mixed into every fingerprint
// (dse::point_fingerprint), so bumping kDseSchemaVersion orphans stale
// entries through the same fingerprint check.

#include <atomic>
#include <cstdint>
#include <string>

#include "models/batch.hpp"

namespace bisram::dse {

/// A directory of per-point result entries. Thread-safe: load() and
/// store() on distinct fingerprints are independent files, and the
/// engine never issues two stores of the same fingerprint in one run.
class ResultCache {
 public:
  /// Opens (and creates, including one parent level) the cache
  /// directory. An empty path means "no persistent cache": every load
  /// misses and store() is a no-op, so the engine code has one path.
  explicit ResultCache(std::string dir);

  /// True when the cache persists to disk (a directory was given).
  bool persistent() const { return !dir_.empty(); }

  /// Reads the entry for `fingerprint` into `*out`. Returns false —
  /// never throws — for a missing entry or one that fails any
  /// validation (counted in stats().rejected).
  bool load(std::uint64_t fingerprint, models::DesignMetrics* out);

  /// Atomically publishes the entry for `fingerprint`. I/O failures
  /// propagate (bisram::Error): a cache directory that cannot be
  /// written is a real environment problem, unlike a stale entry.
  void store(std::uint64_t fingerprint, const models::DesignMetrics& m);

  struct Stats {
    std::uint64_t hits = 0;      ///< load() returned a valid entry
    std::uint64_t misses = 0;    ///< no entry on disk
    std::uint64_t rejected = 0;  ///< entry present but failed validation
    std::uint64_t stores = 0;
  };
  Stats stats() const;

  /// The entry path for a fingerprint (tests corrupt entries in place).
  std::string entry_path(std::uint64_t fingerprint) const;

 private:
  std::string dir_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> stores_{0};
};

}  // namespace bisram::dse
