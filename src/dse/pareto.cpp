#include "dse/pareto.hpp"

namespace bisram::dse {

bool dominates(const models::DesignMetrics& a, const models::DesignMetrics& b) {
  // Objective directions: area and cost down, yield and MTTF up.
  const bool no_worse = a.area_mm2 <= b.area_mm2 && a.yield >= b.yield &&
                        a.mttf_hours >= b.mttf_hours &&
                        a.cost_usd <= b.cost_usd;
  if (!no_worse) return false;
  return a.area_mm2 < b.area_mm2 || a.yield > b.yield ||
         a.mttf_hours > b.mttf_hours || a.cost_usd < b.cost_usd;
}

std::vector<std::size_t> pareto_frontier(
    const std::vector<models::DesignMetrics>& points) {
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j)
      dominated = j != i && dominates(points[j], points[i]);
    if (!dominated) frontier.push_back(i);
  }
  return frontier;
}

}  // namespace bisram::dse
