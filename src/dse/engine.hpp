#pragma once
// The design-space exploration engine: evaluates every point of a
// SweepSpec lattice and reports the Pareto frontier over area / yield /
// MTTF / cost.
//
// Execution layers three caches, cheapest first:
//
//   1. the persistent ResultCache — a warm rerun of a sweep is pure
//      file reads: zero compiles, zero characterizations;
//   2. the shared core::CompileCache — within a cold run, the deck-pure
//      leaf library (SPICE sizing + extraction + netlist STA) is
//      computed once per (deck, gate size, decoder width) and shared by
//      every in-flight point, not once per point;
//   3. the full staged compile (core::Compiler) for genuinely new
//      points, whose results are published back to layer 1.
//
// Points run on the deterministic campaign pool (util/parallel.hpp,
// chunk size 1): each point's metrics are a pure function of its spec,
// every point lands at its own lattice index, and the frontier scan
// walks indices in order — so the report (and its JSON) is
// bit-identical for any BISRAM_THREADS value, cold or warm.
//
// Cancellation follows the campaign convention: a CancelToken deadline
// stops the run at a point boundary and the result is a *valid partial*
// — evaluated points keep their metrics, the frontier is computed over
// exactly the evaluated subset, and stats.termination records why.

#include <cstdint>
#include <string>
#include <vector>

#include "core/spec.hpp"
#include "dse/space.hpp"
#include "models/batch.hpp"
#include "util/cancel.hpp"

namespace bisram::dse {

/// One lattice point's outcome.
struct PointResult {
  std::size_t index = 0;          ///< lattice index (SweepSpec::point)
  core::RamSpec spec;             ///< the resolved point spec
  std::uint64_t fingerprint = 0;  ///< its persistent-cache key
  models::DesignMetrics metrics;
  bool evaluated = false;   ///< metrics are meaningful
  bool from_cache = false;  ///< served by the persistent cache
  std::string error;        ///< validation failure (point skipped) when
                            ///< non-empty
};

struct SweepStats {
  std::uint64_t points = 0;     ///< lattice size
  std::uint64_t evaluated = 0;  ///< points with metrics (<= points when
                                ///< cancelled)
  std::uint64_t invalid = 0;    ///< lattice combinations RamSpec rejects
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_rejected = 0;  ///< entries failing validation
  std::uint64_t full_compiles = 0;   ///< staged compiles actually run
  std::uint64_t characterizations = 0;  ///< sta characterization runs
  std::uint64_t leaf_lookups = 0;    ///< CompileCache leaf requests
  std::uint64_t leaf_misses = 0;
  /// LayoutDB snapshot-cache traffic (only non-zero when the sweep's
  /// base spec has run_drc set and a cache_dir is configured): hits are
  /// DRC-grade flattens served from disk, stores are cold flattens
  /// published for the next run.
  std::uint64_t layout_snapshot_hits = 0;
  std::uint64_t layout_snapshot_stores = 0;
  Termination termination = Termination::Completed;
};

struct SweepResult {
  std::vector<PointResult> points;     ///< all lattice points, index order
  std::vector<std::size_t> frontier;   ///< indices into `points`, ascending
  SweepStats stats;

  /// The machine-readable report: sweep stats, the frontier (with each
  /// member's spec knobs and metrics), and optionally every evaluated
  /// point. The stats section reflects *this run* (a warm rerun has
  /// different hit counts than a cold one, by design); everything else
  /// is deterministic.
  std::string json(bool include_all_points = false) const;

  /// Just the frontier array — no run stats. This is the bit-identity
  /// contract: byte-identical for any BISRAM_THREADS value and across
  /// cold/warm reruns of the same completed sweep.
  std::string frontier_json() const;
};

struct RunOptions {
  /// Persistent cache root; empty = in-memory only. Holds the
  /// DesignMetrics ResultCache entries, plus (under `<dir>/layouts`)
  /// the LayoutDB snapshot cache that serves DRC-grade flattens for
  /// sweeps whose base spec enables run_drc.
  std::string cache_dir;
  int threads = 0;        ///< 0 = BISRAM_THREADS / hardware
  const CancelToken* cancel = nullptr;
};

/// Evaluates the sweep. Throws bisram::Error only for environment
/// failures (unwritable cache directory); bad lattice points are
/// recorded per-point, and cancellation returns a valid partial result.
SweepResult run_sweep(const SweepSpec& sweep, const RunOptions& opt = {});

}  // namespace bisram::dse
