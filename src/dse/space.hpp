#pragma once
// The design-space lattice: which parameter combinations a DSE sweep
// visits. A SweepSpec is a base RamSpec plus one value list per swept
// axis (words, bpw, bpc, spare_rows, gate_size, technology deck) and
// the sweep-level evaluation constants; the lattice is the Cartesian
// product of the axes, addressed by a single mixed-radix index so the
// parallel engine can hand out points as plain integers.
//
// Identity is fingerprint-based all the way down (util/checkpoint.hpp's
// Fingerprint): each lattice point hashes every input its metrics
// depend on — the resolved spec fields, the *content* fingerprint of
// its rule deck (tech::fingerprint, so renamed-but-identical decks hit
// and same-named-but-edited decks miss), the march test, the eval
// constants, and a schema version — and that hash is the persistent
// result cache's key. Widening a sweep therefore re-uses every point
// that already ran, and bumping the schema version orphans (rather than
// misreads) every stale entry.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/spec.hpp"
#include "models/batch.hpp"
#include "tech/tech.hpp"
#include "util/diag.hpp"

namespace bisram::dse {

/// One entry of the technology axis: a registry process by name, or a
/// user deck (owned here; specs built from it share the pointer).
struct TechChoice {
  std::string name;
  std::shared_ptr<const tech::Tech> deck;  ///< null = registry lookup

  const tech::Tech& resolved() const {
    return deck ? *deck : tech::technology(name);
  }
};

/// Bump when the cached metrics payload or its meaning changes: every
/// existing cache entry then fails its fingerprint check and recomputes.
inline constexpr std::uint64_t kDseSchemaVersion = 1;

struct SweepSpec {
  /// Defaults for every field the axes do not sweep (test, passes,
  /// straps, ... — and the starting value of the swept fields).
  core::RamSpec base;

  // Axis value lists; an empty axis means "the base value only".
  std::vector<std::uint32_t> words;
  std::vector<int> bpw;
  std::vector<int> bpc;
  std::vector<int> spare_rows;
  std::vector<double> gate_size;
  std::vector<TechChoice> tech;

  models::EvalParams eval;

  /// Lattice cardinality (product of the axis sizes, empty axes = 1).
  std::size_t size() const;

  /// The i-th lattice point (mixed-radix decode; words varies fastest,
  /// then bpw, bpc, spare_rows, gate_size, technology). The returned
  /// spec owns its deck via custom_tech when the axis entry is a user
  /// deck. `i` must be < size().
  core::RamSpec point(std::size_t i) const;

  /// Sweep identity: schema version + every axis value + base spec +
  /// eval constants. Named sweep runs with equal fingerprints are
  /// reruns of the same sweep.
  std::uint64_t fingerprint() const;

  /// The persistent-cache key of point `i`: a pure function of the
  /// resolved point spec (deck by content), the eval constants and the
  /// schema version — independent of the sweep that contains it, so a
  /// widened sweep hits the entries its predecessor stored.
  std::uint64_t point_fingerprint(std::size_t i) const;

  // --- JSON -------------------------------------------------------------
  //
  // { "base": { <RamSpec fields, core/spec.hpp schema> },
  //   "axes": { "words": [..], "bpw": [..], "bpc": [..],
  //             "spare_rows": [..], "gate_size": [..],
  //             "technology": ["cda.7u3m1p", ...],
  //             "tech_decks": ["<inline deck text>", ...] },
  //   "eval": { "defects_per_cm2": X, "cluster_alpha": X,
  //             "lambda_per_hour": X, "wafer_mm": X,
  //             "wafer_cost_usd": X } }
  //
  // Diagnostics use stable codes: sweep-bad-type, sweep-unknown-field,
  // sweep-empty-axis, sweep-too-large, plus the spec-* and json-*
  // codes of the shared parsers.

  /// Parses a sweep file. Same convention as every front-end parser
  /// (util/diag.hpp): with a DiagEngine it never throws; without, it
  /// throws DiagError on the first error.
  static SweepSpec from_json(const std::string& text,
                             DiagEngine* diag = nullptr,
                             const std::string& source = "<sweep>");

  /// Lattice points are capped so a typo'ed axis cannot demand a
  /// billion compiles; from_json reports "sweep-too-large" above this.
  static constexpr std::size_t kMaxPoints = 1u << 20;
};

/// The per-point cache key as a free function (the engine uses it with
/// already-built specs). Mixes kDseSchemaVersion, every metric-relevant
/// spec field, tech::fingerprint of the resolved deck, and `eval`.
std::uint64_t point_fingerprint(const core::RamSpec& spec,
                                const models::EvalParams& eval);

}  // namespace bisram::dse
