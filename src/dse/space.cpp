#include "dse/space.hpp"

#include <limits>

#include "tech/tech_file.hpp"
#include "util/checkpoint.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace bisram::dse {

namespace {

/// Axis cardinality with the "empty = base value" convention.
std::size_t card(std::size_t n) { return n == 0 ? 1 : n; }

}  // namespace

std::size_t SweepSpec::size() const {
  // The parser caps the product at kMaxPoints, but size() is also called
  // on hand-built sweeps (tests), so saturate instead of overflowing.
  std::size_t n = 1;
  for (std::size_t c : {card(words.size()), card(bpw.size()), card(bpc.size()),
                        card(spare_rows.size()), card(gate_size.size()),
                        card(tech.size())}) {
    if (n > std::numeric_limits<std::size_t>::max() / c)
      return std::numeric_limits<std::size_t>::max();
    n *= c;
  }
  return n;
}

core::RamSpec SweepSpec::point(std::size_t i) const {
  require(i < size(), "SweepSpec::point: index out of range");
  core::RamSpec s = base;
  // Mixed-radix decode, words fastest: the innermost digit is the axis
  // listed first in the header comment.
  auto digit = [&i](std::size_t n) {
    const std::size_t c = card(n);
    const std::size_t d = i % c;
    i /= c;
    return d;
  };
  const std::size_t iw = digit(words.size());
  const std::size_t ib = digit(bpw.size());
  const std::size_t ic = digit(bpc.size());
  const std::size_t is = digit(spare_rows.size());
  const std::size_t ig = digit(gate_size.size());
  const std::size_t it = digit(tech.size());
  if (!words.empty()) s.words = words[iw];
  if (!bpw.empty()) s.bpw = bpw[ib];
  if (!bpc.empty()) s.bpc = bpc[ic];
  if (!spare_rows.empty()) s.spare_rows = spare_rows[is];
  if (!gate_size.empty()) s.gate_size = gate_size[ig];
  if (!tech.empty()) {
    s.technology = tech[it].name;
    s.custom_tech = tech[it].deck;  // null for registry decks
  }
  return s;
}

std::uint64_t point_fingerprint(const core::RamSpec& spec,
                                const models::EvalParams& eval) {
  Fingerprint fp;
  fp.mix(kDseSchemaVersion);
  fp.mix(spec.words);
  fp.mix_i64(spec.bpw);
  fp.mix_i64(spec.bpc);
  fp.mix_i64(spec.spare_rows);
  fp.mix_f64(spec.gate_size);
  fp.mix_i64(spec.strap_interval);
  fp.mix_f64(spec.strap_width_lambda);
  // The deck by *content*, never by name: two decks that share a name
  // but differ in a rule must not alias in the persistent cache.
  fp.mix(tech::fingerprint(spec.resolved_technology()));
  fp.mix_str(core::march_test_key(spec.test));
  fp.mix_i64(spec.max_passes);
  fp.mix(spec.johnson_backgrounds ? 1 : 0);
  fp.mix_f64(eval.defects_per_cm2);
  fp.mix_f64(eval.cluster_alpha);
  fp.mix_f64(eval.lambda_per_hour);
  fp.mix_f64(eval.wafer_mm);
  fp.mix_f64(eval.wafer_cost_usd);
  return fp.value();
}

std::uint64_t SweepSpec::point_fingerprint(std::size_t i) const {
  return dse::point_fingerprint(point(i), eval);
}

std::uint64_t SweepSpec::fingerprint() const {
  Fingerprint fp;
  fp.mix(kDseSchemaVersion);
  fp.mix(dse::point_fingerprint(base, eval));
  auto mix_axis = [&fp](const auto& axis, auto&& each) {
    fp.mix(static_cast<std::uint64_t>(axis.size()));
    for (const auto& v : axis) each(v);
  };
  mix_axis(words, [&](std::uint32_t v) { fp.mix(v); });
  mix_axis(bpw, [&](int v) { fp.mix_i64(v); });
  mix_axis(bpc, [&](int v) { fp.mix_i64(v); });
  mix_axis(spare_rows, [&](int v) { fp.mix_i64(v); });
  mix_axis(gate_size, [&](double v) { fp.mix_f64(v); });
  mix_axis(tech, [&](const TechChoice& v) {
    fp.mix(tech::fingerprint(v.resolved()));
  });
  return fp.value();
}

namespace {

void bad_type(DiagEngine& diag, const std::string& key, const JsonValue& v,
              const char* want) {
  diag.error("sweep-bad-type",
             strfmt("\"%s\" must be a %s, got %s", key.c_str(), want,
                    v.kind_name()),
             v.line(), v.column());
}

/// Reads one numeric axis: a JSON array of numbers, each converted and
/// range-checked by `accept` (which reports its own diagnostics).
template <typename T, typename Accept>
void read_axis(DiagEngine& diag, const std::string& key, const JsonValue& v,
               std::vector<T>* out, Accept&& accept) {
  if (!v.is_array()) {
    bad_type(diag, key, v, "array of numbers");
    return;
  }
  if (v.items().empty()) {
    diag.error("sweep-empty-axis",
               strfmt("axis \"%s\" is empty; omit it to sweep the base "
                      "value only",
                      key.c_str()),
               v.line(), v.column());
    return;
  }
  for (const JsonValue& item : v.items()) {
    T value{};
    if (accept(item, &value)) out->push_back(value);
  }
}

template <typename T>
auto int_in(DiagEngine& diag, const std::string& key, std::int64_t lo,
            std::int64_t hi) {
  return [&diag, key, lo, hi](const JsonValue& item, T* out) {
    if (!item.is_number()) {
      bad_type(diag, key, item, "number");
      return false;
    }
    std::int64_t i = 0;
    try {
      i = item.as_i64();
    } catch (const SpecError&) {
      diag.error("sweep-bad-type",
                 strfmt("axis \"%s\" entries must be integers", key.c_str()),
                 item.line(), item.column());
      return false;
    }
    if (i < lo || i > hi) {
      diag.error("spec-bad-value",
                 strfmt("axis \"%s\" entry %lld is outside [%lld, %lld]",
                        key.c_str(), static_cast<long long>(i),
                        static_cast<long long>(lo),
                        static_cast<long long>(hi)),
                 item.line(), item.column());
      return false;
    }
    *out = static_cast<T>(i);
    return true;
  };
}

void read_axes(DiagEngine& diag, const JsonValue& v, SweepSpec* sweep) {
  if (!v.is_object()) {
    bad_type(diag, "axes", v, "object");
    return;
  }
  for (const auto& [key, val] : v.members()) {
    if (key == "words") {
      read_axis(diag, key, val, &sweep->words,
                int_in<std::uint32_t>(diag, key, 1, 1u << 28));
    } else if (key == "bpw") {
      read_axis(diag, key, val, &sweep->bpw, int_in<int>(diag, key, 1, 1024));
    } else if (key == "bpc") {
      read_axis(diag, key, val, &sweep->bpc, int_in<int>(diag, key, 1, 256));
    } else if (key == "spare_rows") {
      read_axis(diag, key, val, &sweep->spare_rows,
                int_in<int>(diag, key, 0, 64));
    } else if (key == "gate_size") {
      read_axis(diag, key, val, &sweep->gate_size,
                [&diag, &key](const JsonValue& item, double* out) {
                  if (!item.is_number()) {
                    bad_type(diag, key, item, "number");
                    return false;
                  }
                  *out = item.as_double();
                  return true;
                });
    } else if (key == "technology") {
      read_axis(diag, key, val, &sweep->tech,
                [&diag, &key](const JsonValue& item, TechChoice* out) {
                  if (!item.is_string()) {
                    bad_type(diag, key, item, "string");
                    return false;
                  }
                  try {
                    tech::technology(item.as_string());
                  } catch (const SpecError& e) {
                    diag.error("spec-bad-value", e.what(), item.line(),
                               item.column());
                    return false;
                  }
                  out->name = item.as_string();
                  return true;
                });
    } else if (key == "tech_decks") {
      read_axis(diag, key, val, &sweep->tech,
                [&diag](const JsonValue& item, TechChoice* out) {
                  if (!item.is_string()) {
                    bad_type(diag, "tech_decks", item, "string");
                    return false;
                  }
                  DiagEngine deck_diag(diag.file() + ":tech_decks");
                  tech::Tech t =
                      tech::read_tech_string(item.as_string(), &deck_diag);
                  if (!deck_diag.ok()) {
                    for (const Diagnostic& d : deck_diag.diagnostics())
                      if (d.severity == Severity::Error)
                        diag.error("spec-bad-tech-deck",
                                   strfmt("tech deck line %d: %s", d.line,
                                          d.message.c_str()),
                                   item.line(), item.column());
                    return false;
                  }
                  out->name = t.name;
                  out->deck = std::make_shared<const tech::Tech>(std::move(t));
                  return true;
                });
    } else {
      diag.error("sweep-unknown-field",
                 strfmt("unknown axis \"%s\" (known: words, bpw, bpc, "
                        "spare_rows, gate_size, technology, tech_decks)",
                        key.c_str()),
                 val.line(), val.column());
    }
  }
}

void read_eval(DiagEngine& diag, const JsonValue& v, models::EvalParams* p) {
  if (!v.is_object()) {
    bad_type(diag, "eval", v, "object");
    return;
  }
  for (const auto& [key, val] : v.members()) {
    double* field = nullptr;
    if (key == "defects_per_cm2") field = &p->defects_per_cm2;
    else if (key == "cluster_alpha") field = &p->cluster_alpha;
    else if (key == "lambda_per_hour") field = &p->lambda_per_hour;
    else if (key == "wafer_mm") field = &p->wafer_mm;
    else if (key == "wafer_cost_usd") field = &p->wafer_cost_usd;
    if (field == nullptr) {
      diag.error("sweep-unknown-field",
                 strfmt("unknown eval parameter \"%s\"", key.c_str()),
                 val.line(), val.column());
      continue;
    }
    if (!val.is_number()) {
      bad_type(diag, key, val, "number");
      continue;
    }
    const double d = val.as_double();
    if (d <= 0) {
      diag.error("spec-bad-value",
                 strfmt("\"%s\" must be positive", key.c_str()), val.line(),
                 val.column());
      continue;
    }
    *field = d;
  }
}

}  // namespace

SweepSpec SweepSpec::from_json(const std::string& text, DiagEngine* diag,
                               const std::string& source) {
  DiagEngine local(source);
  DiagEngine& eng = diag ? *diag : local;
  SweepSpec sweep;
  const JsonValue v = parse_json(text, &eng, source);
  if (eng.ok()) {
    if (!v.is_object()) {
      eng.error("sweep-bad-type",
                strfmt("a sweep spec must be a JSON object, got %s",
                       v.kind_name()),
                v.line(), v.column());
    } else {
      for (const auto& [key, val] : v.members()) {
        if (key == "base") {
          sweep.base = core::RamSpec::from_json_value(val, eng);
        } else if (key == "axes") {
          read_axes(eng, val, &sweep);
        } else if (key == "eval") {
          read_eval(eng, val, &sweep.eval);
        } else {
          eng.error("sweep-unknown-field",
                    strfmt("unknown sweep field \"%s\" (known: base, axes, "
                           "eval)",
                           key.c_str()),
                    val.line(), val.column());
        }
      }
      if (eng.ok() && sweep.size() > kMaxPoints)
        eng.error("sweep-too-large",
                  strfmt("lattice has %zu points; the cap is %zu",
                         sweep.size(), kMaxPoints),
                  v.line(), v.column());
    }
  }
  if (!diag) local.throw_if_errors();
  return sweep;
}

}  // namespace bisram::dse
