#include "dse/cache.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>

#include "util/checkpoint.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace bisram::dse {

namespace {

/// mkdir -p for the (at most two-level) cache path; EEXIST is success.
void ensure_dir(const std::string& dir) {
  const std::size_t slash = dir.find_last_of('/');
  if (slash != std::string::npos && slash > 0)
    ::mkdir(dir.substr(0, slash).c_str(), 0755);
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
    throw Error(strfmt("dse cache: cannot create '%s': %s", dir.c_str(),
                       std::strerror(errno)));
}

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) ensure_dir(dir_);
}

std::string ResultCache::entry_path(std::uint64_t fingerprint) const {
  return strfmt("%s/%016llx.dsepoint", dir_.c_str(),
                static_cast<unsigned long long>(fingerprint));
}

bool ResultCache::load(std::uint64_t fingerprint, models::DesignMetrics* out) {
  if (dir_.empty()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::string path = entry_path(fingerprint);
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  try {
    // CheckpointReader does the heavy lifting: magic, version, CRC32
    // and fingerprint are all validated before a single payload word
    // is handed out. Any failure lands in the catch below.
    CheckpointReader r(path, fingerprint);
    models::DesignMetrics m;
    m.area_mm2 = r.f64();
    m.yield = r.f64();
    m.mttf_hours = r.f64();
    m.cost_usd = r.f64();
    m.access_ns = r.f64();
    m.overhead_pct = r.f64();
    if (r.remaining() != 0)
      throw SpecError(strfmt("dse cache: '%s' has trailing payload",
                             path.c_str()));
    *out = m;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  } catch (const Error&) {
    // Stale schema, torn write, bit rot, wrong file — all of them just
    // mean "recompute this point"; the rewrite will repair the entry.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
}

void ResultCache::store(std::uint64_t fingerprint,
                        const models::DesignMetrics& m) {
  if (dir_.empty()) return;
  CheckpointWriter w(fingerprint);
  w.f64(m.area_mm2)
      .f64(m.yield)
      .f64(m.mttf_hours)
      .f64(m.cost_usd)
      .f64(m.access_ns)
      .f64(m.overhead_pct);
  w.save(entry_path(fingerprint));
  stores_.fetch_add(1, std::memory_order_relaxed);
}

ResultCache::Stats ResultCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace bisram::dse
