#include "dse/engine.hpp"

#include <atomic>
#include <memory>

#include "core/compiler.hpp"
#include "dse/cache.hpp"
#include "geom/layout_snapshot.hpp"
#include "dse/pareto.hpp"
#include "sta/leaf.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace bisram::dse {

namespace {

/// The datasheet quantities the models consume. base area is the
/// paper's Table-I denominator: array + decoders + periphery, spares
/// and BIST/BISR logic excluded.
models::EvalInputs eval_inputs(const core::Datasheet& ds) {
  models::EvalInputs in;
  in.geo = ds.geo;
  in.area_mm2 = ds.area_mm2;
  in.base_area_mm2 = ds.array_mm2 + ds.decoder_mm2 + ds.periphery_mm2;
  in.access_s = ds.timing.access_s;
  in.overhead_pct = ds.overhead_pct;
  return in;
}

void point_json(JsonWriter& j, const PointResult& p) {
  j.begin_object();
  j.key("index").value(static_cast<std::uint64_t>(p.index));
  j.key("fingerprint")
      .value(strfmt("%016llx",
                    static_cast<unsigned long long>(p.fingerprint)));
  j.key("words").value(static_cast<std::uint64_t>(p.spec.words));
  j.key("bpw").value(p.spec.bpw);
  j.key("bpc").value(p.spec.bpc);
  j.key("spare_rows").value(p.spec.spare_rows);
  j.key("gate_size").value(p.spec.gate_size);
  j.key("technology").value(p.spec.technology);
  if (!p.error.empty()) {
    j.key("error").value(p.error);
    j.end_object();
    return;
  }
  j.key("area_mm2").value(p.metrics.area_mm2);
  j.key("yield").value(p.metrics.yield);
  j.key("mttf_hours").value(p.metrics.mttf_hours);
  j.key("cost_usd").value(p.metrics.cost_usd);
  j.key("access_ns").value(p.metrics.access_ns);
  j.key("overhead_pct").value(p.metrics.overhead_pct);
  j.end_object();
}

}  // namespace

SweepResult run_sweep(const SweepSpec& sweep, const RunOptions& opt) {
  SweepResult res;
  const std::size_t n = sweep.size();
  res.points.resize(n);
  res.stats.points = n;

  ResultCache cache(opt.cache_dir);
  // One shared deck-pure cache; each point opens its own single-threaded
  // session on it (sessions are cheap, the cache is where reuse lives).
  auto compile_cache = std::make_shared<core::CompileCache>();
  std::atomic<std::uint64_t> full_compiles{0};
  std::atomic<std::uint64_t> invalid{0};
  std::atomic<std::uint64_t> layout_hits{0};
  std::atomic<std::uint64_t> layout_stores{0};
  const std::uint64_t chars_before = sta::characterization_count();

  // chunk = 1: a lattice point is a full compile — coarse enough that
  // per-chunk scheduling overhead is noise, and it gives cancellation
  // its tightest latency (one point).
  parallel_for(
      static_cast<std::int64_t>(n), /*chunk=*/1,
      [&](std::int64_t idx) {
        PointResult& pr = res.points[static_cast<std::size_t>(idx)];
        pr.index = static_cast<std::size_t>(idx);
        pr.spec = sweep.point(pr.index);
        try {
          pr.spec.validate();
        } catch (const SpecError& e) {
          // A lattice corner the generator rejects (words not divisible
          // by bpc, unsupported spare count...) is data, not an error:
          // record it and move on to the next point.
          pr.error = e.what();
          invalid.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        pr.fingerprint = point_fingerprint(pr.spec, sweep.eval);
        if (cache.load(pr.fingerprint, &pr.metrics)) {
          pr.evaluated = true;
          pr.from_cache = true;
          return;
        }
        try {
          core::Compiler session(compile_cache);
          if (!opt.cache_dir.empty())
            session.set_layout_cache(opt.cache_dir + "/layouts");
          const tech::Tech& t = session.resolve_tech(pr.spec);
          const core::Assembled a = session.assemble(pr.spec, t);
          const core::Datasheet ds = session.datasheet(pr.spec, t, a);
          full_compiles.fetch_add(1, std::memory_order_relaxed);
          if (const geom::SnapshotCache* sc = session.layout_cache()) {
            const geom::SnapshotCache::Stats ss = sc->stats();
            layout_hits.fetch_add(ss.hits, std::memory_order_relaxed);
            layout_stores.fetch_add(ss.stores, std::memory_order_relaxed);
          }
          pr.metrics = models::evaluate_design(eval_inputs(ds), sweep.eval);
        } catch (const Error& e) {
          // A corner that passes validate() but trips the generator or
          // timing engine deeper in (extraction shorts, STA port checks)
          // is still just one bad point; the rest of the sweep proceeds.
          pr.error = e.what();
          invalid.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        cache.store(pr.fingerprint, pr.metrics);
        pr.evaluated = true;
      },
      opt.threads, opt.cancel);

  // Frontier over exactly the evaluated subset, in index order — the
  // compaction keeps the scan deterministic and makes a cancelled run's
  // frontier valid for the points it did evaluate.
  std::vector<std::size_t> eval_idx;
  std::vector<models::DesignMetrics> eval_metrics;
  for (const PointResult& p : res.points) {
    if (!p.evaluated) continue;
    eval_idx.push_back(p.index);
    eval_metrics.push_back(p.metrics);
  }
  for (std::size_t k : pareto_frontier(eval_metrics))
    res.frontier.push_back(eval_idx[k]);

  res.stats.evaluated = eval_idx.size();
  res.stats.invalid = invalid.load();
  const ResultCache::Stats cs = cache.stats();
  res.stats.cache_hits = cs.hits;
  res.stats.cache_misses = cs.misses;
  res.stats.cache_rejected = cs.rejected;
  res.stats.full_compiles = full_compiles.load();
  res.stats.layout_snapshot_hits = layout_hits.load();
  res.stats.layout_snapshot_stores = layout_stores.load();
  res.stats.characterizations = sta::characterization_count() - chars_before;
  const core::CompileCache::Stats ls = compile_cache->stats();
  res.stats.leaf_lookups = ls.leaf_lookups;
  res.stats.leaf_misses = ls.leaf_misses;
  res.stats.termination = opt.cancel && opt.cancel->stop_requested()
                              ? opt.cancel->stop_reason()
                              : Termination::Completed;
  return res;
}

std::string SweepResult::frontier_json() const {
  JsonWriter j;
  j.begin_object();
  j.key("schema").value(static_cast<std::uint64_t>(kDseSchemaVersion));
  j.key("frontier").begin_array();
  for (std::size_t i : frontier) point_json(j, points[i]);
  j.end_array();
  j.end_object();
  return j.str();
}

std::string SweepResult::json(bool include_all_points) const {
  JsonWriter j;
  j.begin_object();
  j.key("schema").value(static_cast<std::uint64_t>(kDseSchemaVersion));
  j.key("termination").value(termination_name(stats.termination));
  j.key("stats").begin_object();
  j.key("points").value(stats.points);
  j.key("evaluated").value(stats.evaluated);
  j.key("invalid").value(stats.invalid);
  j.key("cache_hits").value(stats.cache_hits);
  j.key("cache_misses").value(stats.cache_misses);
  j.key("cache_rejected").value(stats.cache_rejected);
  j.key("full_compiles").value(stats.full_compiles);
  j.key("characterizations").value(stats.characterizations);
  j.key("leaf_lookups").value(stats.leaf_lookups);
  j.key("leaf_misses").value(stats.leaf_misses);
  j.key("layout_snapshot_hits").value(stats.layout_snapshot_hits);
  j.key("layout_snapshot_stores").value(stats.layout_snapshot_stores);
  j.end_object();
  j.key("frontier").begin_array();
  for (std::size_t i : frontier) point_json(j, points[i]);
  j.end_array();
  if (include_all_points) {
    j.key("points").begin_array();
    for (const PointResult& p : points)
      if (p.evaluated || !p.error.empty()) point_json(j, p);
    j.end_array();
  }
  j.end_object();
  return j.str();
}

}  // namespace bisram::dse
