#pragma once
// Pareto-frontier extraction over the four DSE objectives: minimize
// area, maximize yield, maximize MTTF, minimize cost. A point is
// dominated when another point is at least as good on every objective
// and strictly better on one; the frontier is the non-dominated subset.
//
// Everything here is deterministic: the frontier is reported in
// ascending lattice-index order regardless of how many threads
// evaluated the points, which is what lets the engine promise
// bit-identical frontier JSON for any BISRAM_THREADS.

#include <cstddef>
#include <vector>

#include "models/batch.hpp"

namespace bisram::dse {

/// True when `a` dominates `b`: a is no worse on all four objectives
/// and strictly better on at least one. Ties on every objective
/// dominate in neither direction (duplicates both stay).
bool dominates(const models::DesignMetrics& a, const models::DesignMetrics& b);

/// Indices into `points` of the non-dominated subset, ascending. O(n^2)
/// pairwise scan — the lattice cap (SweepSpec::kMaxPoints) and the cost
/// of compiling a point keep n far below where that matters.
std::vector<std::size_t> pareto_frontier(
    const std::vector<models::DesignMetrics>& points);

}  // namespace bisram::dse
